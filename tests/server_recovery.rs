//! Kill/recover the experiment server across real process boundaries:
//! SIGKILL the `excovery serve` daemon mid-campaign, restart it over the
//! same repository, and require the campaign to finish with a digest
//! bit-equal to an uninterrupted reference execution.
//!
//! The serve processes inherit `EXCOVERY_WORKERS` from the environment,
//! so the CI server matrix exercises this suite at several pool widths.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use excovery::desc::process::{EventSelector, ProcessAction};
use excovery::desc::{xmlio, ExperimentDescription};
use excovery::engine::ExperiMaster;
use excovery::rpc::{JobState, SubmitRequest};
use excovery::server::{preset_config, ServerClient};

const REPS: u64 = 6;
const SEED: u64 = 1914;

/// The paper's two-party SD experiment, trimmed for test speed (the
/// same abbreviation the engine's chaos-equivalence suite uses).
fn test_description() -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(REPS);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = SEED;
    d
}

fn unique_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("excovery-server-kill-{tag}-{}", std::process::id()))
}

fn spawn_serve(root: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_excovery"))
        .args(["serve", root.to_str().unwrap(), "--slice-runs", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns")
}

/// Polls `f` until it returns `Some`, failing after `secs` seconds.
fn poll<T>(what: &str, secs: u64, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connect(root: &Path) -> ServerClient {
    poll("server endpoint", 30, || {
        ServerClient::connect_root(root).ok()
    })
}

#[test]
fn sigkill_mid_campaign_resumes_to_the_reference_digest() {
    let root = unique_root("resume");
    let _ = std::fs::remove_dir_all(&root);

    // Uninterrupted in-process reference on the same preset.
    let reference = {
        let cfg = preset_config("grid_default").unwrap();
        let mut master = ExperiMaster::new(test_description(), cfg).unwrap();
        master.execute().expect("reference execution").digest()
    };

    let mut serve = spawn_serve(&root);
    let client = connect(&root);
    let request = SubmitRequest {
        tenant: "alice".into(),
        preset: "grid_default".into(),
        description_xml: xmlio::to_xml(&test_description()),
        submit_key: "kill-key".into(),
    };
    let (job_id, created) = client.submit(&request).expect("submit");
    assert!(created);
    // A duplicate submission dedups against the journal, not the session.
    let (dup, dup_created) = client.submit(&request).expect("resubmit");
    assert_eq!((dup, dup_created), (job_id, false));

    // Let at least one run complete, then SIGKILL the daemon.
    poll("first run completion", 120, || {
        let s = client.status(job_id).ok()?;
        (s.runs_completed >= 1).then_some(())
    });
    serve.kill().expect("SIGKILL serve");
    serve.wait().expect("reap serve");

    // Restart over the same repository. The stale endpoint file of the
    // killed daemon is removed so the client can only reach the new one.
    let _ = std::fs::remove_file(root.join("endpoint"));
    let mut serve = spawn_serve(&root);
    let client = connect(&root);

    // The resubmitted key still resolves to the original job.
    let (dup, dup_created) = client.submit(&request).expect("resubmit after restart");
    assert_eq!((dup, dup_created), (job_id, false));

    let status = poll("campaign completion after restart", 300, || {
        let s = client.status(job_id).ok()?;
        match s.state {
            JobState::Completed => Some(s),
            JobState::Failed => panic!("campaign failed after restart: {:?}", s.error),
            _ => None,
        }
    });
    assert_eq!(status.runs_completed, REPS);
    assert_eq!(
        status.digest,
        Some(reference),
        "resumed campaign must be bit-equal to the uninterrupted reference"
    );

    serve.kill().expect("stop serve");
    serve.wait().expect("reap serve");
    let _ = std::fs::remove_dir_all(&root);
}
