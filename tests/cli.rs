//! End-to-end tests of the `excovery` CLI binary: the full
//! describe → validate → run → inspect → analyze loop a downstream user
//! drives from the shell.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_excovery"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("excovery-cli-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_description(dir: &std::path::Path) -> PathBuf {
    let desc = excovery::desc::ExperimentDescription::paper_two_party_sd(1);
    let path = dir.join("desc.xml");
    std::fs::write(&path, excovery::desc::xmlio::to_xml(&desc)).unwrap();
    path
}

#[test]
fn help_lists_all_commands() {
    let out = cli(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "validate",
        "plan",
        "outline",
        "dot",
        "run",
        "inspect",
        "events",
        "timeline",
        "responsiveness",
        "report",
        "repo",
    ] {
        assert!(text.contains(cmd), "usage lacks {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = cli(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn validate_accepts_paper_description() {
    let dir = workdir("validate");
    let desc = write_description(&dir);
    let out = cli(&["validate", desc.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("OK: 'sd-two-party'"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_rejects_broken_description() {
    let dir = workdir("invalid");
    let path = dir.join("bad.xml");
    // Duplicate factor ids are a fatal validation finding.
    std::fs::write(
        &path,
        r#"<experiment name="bad"><factorlist>
            <factor id="f" type="int" usage="constant"><levels><level>1</level></levels></factor>
            <factor id="f" type="int" usage="constant"><levels><level>2</level></levels></factor>
        </factorlist></experiment>"#,
    )
    .unwrap();
    let out = cli(&["validate", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("FATAL"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_run_inspect_analyze_cycle() {
    let dir = workdir("cycle");
    let desc = write_description(&dir);
    let db = dir.join("results.expdb");
    let out = cli(&[
        "run",
        desc.to_str().unwrap(),
        "--max-runs",
        "1",
        "--out",
        db.to_str().unwrap(),
        "--l2",
        dir.join("l2").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("1 completed"));

    let out = cli(&["inspect", db.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("experiment: sd-two-party"));
    assert!(text.contains("Events"));

    let out = cli(&["events", db.to_str().unwrap(), "--run", "0"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("sd_service_add"));

    let out = cli(&["responsiveness", db.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("deadline_s"));

    let svg = dir.join("t.svg");
    let out = cli(&[
        "timeline",
        db.to_str().unwrap(),
        "--run",
        "0",
        "--svg",
        svg.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("t_R"));
    assert!(svg.exists());

    let report = dir.join("report.md");
    let out = cli(&[
        "report",
        db.to_str().unwrap(),
        "--out",
        report.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let report_text = std::fs::read_to_string(&report).unwrap();
    assert!(report_text.contains("# Experiment report: sd-two-party"));

    // Level-4 repository round trip.
    let repo = dir.join("repo");
    let out = cli(&[
        "repo",
        repo.to_str().unwrap(),
        "add",
        "exp1",
        db.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = cli(&["repo", repo.to_str().unwrap(), "list"]);
    assert!(stdout(&out).contains("exp1"));
    let out = cli(&["repo", repo.to_str().unwrap(), "compare"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("R(1s)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dot_output_is_graphviz() {
    let dir = workdir("dot");
    let desc = write_description(&dir);
    let out = cli(&["dot", desc.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph experiment {"));
    assert!(text.contains("subgraph cluster_"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_respects_limit() {
    let dir = workdir("plan");
    let desc = write_description(&dir);
    let out = cli(&["plan", desc.to_str().unwrap(), "--limit", "2"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(
        text.lines()
            .filter(|l| l.trim_start().starts_with("run "))
            .count(),
        2
    );
    assert!(text.contains("more (raise with --limit)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_command_emits_wellformed_xsd() {
    let out = cli(&["schema"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let doc = excovery::xml::parse(&text).expect("XSD parses");
    assert_eq!(doc.root().name, "xs:schema");
}

#[test]
fn model_command_prints_predictions() {
    let out = cli(&["model", "--hops", "3", "--loss", "0.2"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("3 hops"));
    assert!(text.contains("predicted R(d):"));
    assert!(text.contains("announce") && text.contains("query"));
}

#[test]
fn missing_files_produce_clean_errors() {
    let out = cli(&["validate", "/nonexistent/desc.xml"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error:"));
    let out = cli(&["inspect", "/nonexistent/db.expdb"]);
    assert!(!out.status.success());
}

/// The trimmed two-party description the server suites use: one run per
/// replication, fast enough for a bounded round-trip.
fn write_server_description(dir: &std::path::Path) -> PathBuf {
    use excovery::desc::process::{EventSelector, ProcessAction};
    let mut desc = excovery::desc::ExperimentDescription::paper_two_party_sd(2);
    desc.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    desc.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    desc.seed = 2014;
    let path = dir.join("server-desc.xml");
    std::fs::write(&path, excovery::desc::xmlio::to_xml(&desc)).unwrap();
    path
}

#[test]
fn serve_submit_status_results_round_trip() {
    use std::time::{Duration, Instant};

    let dir = workdir("server-round-trip");
    let root = dir.join("l4");
    let desc = write_server_description(&dir);
    let root_str = root.to_str().unwrap();

    let mut serve = std::process::Command::new(env!("CARGO_BIN_EXE_excovery"))
        .args(["serve", root_str, "--workers", "1", "--slice-runs", "1"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");

    let deadline = Instant::now() + Duration::from_secs(120);
    let wait_for = |what: &str, deadline: Instant, f: &mut dyn FnMut() -> bool| {
        while !f() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(20));
        }
    };

    // Submit through the CLI once the daemon has published its endpoint.
    wait_for("endpoint file", deadline, &mut || {
        root.join("endpoint").exists()
    });
    let out = cli(&[
        "submit",
        root_str,
        desc.to_str().unwrap(),
        "--tenant",
        "alice",
        "--key",
        "cli-key",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("job 1 submitted"), "{}", stdout(&out));

    // A duplicate CLI submission reports the original job.
    let out = cli(&[
        "submit",
        root_str,
        desc.to_str().unwrap(),
        "--tenant",
        "alice",
        "--key",
        "cli-key",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("job 1 (existing"), "{}", stdout(&out));

    // Status flips to completed within the bound.
    wait_for("campaign completion", deadline, &mut || {
        let out = cli(&["status", root_str, "--job", "1"]);
        out.status.success() && stdout(&out).contains("completed")
    });
    let out = cli(&["status", root_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    let listing = stdout(&out);
    assert!(
        listing.contains("alice") && listing.contains("2/2"),
        "{listing}"
    );

    // Results: table listing, a remote group-by plan, package download.
    let out = cli(&["results", root_str, "--job", "1", "--tables"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("Events"), "{}", stdout(&out));

    let out = cli(&[
        "results",
        root_str,
        "--job",
        "1",
        "--table",
        "RunInfos",
        "--group-by",
        "RunID",
        "--count",
        "--sort-by",
        "RunID",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let frame = stdout(&out);
    assert_eq!(
        frame.lines().count(),
        3,
        "header + one row per run: {frame}"
    );

    let pkg = dir.join("downloaded.expdb");
    let out = cli(&[
        "results",
        root_str,
        "--job",
        "1",
        "--out",
        pkg.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let db = excovery::store::Database::load(&pkg).expect("downloaded package loads");
    assert!(db.table_names().contains(&"RunInfos"));

    serve.kill().expect("stop serve");
    serve.wait().expect("reap serve");
    std::fs::remove_dir_all(&dir).ok();
}
