//! Parity suite for the columnar query redesign.
//!
//! Every analysis/warehouse aggregate rewritten on top of
//! `excovery_query::Dataset` must be **bit-identical** to its
//! pre-redesign, hand-rolled row-scan implementation — on real
//! engine-produced packages from the golden-outcome platform presets, not
//! just synthetic tables. The pre-redesign implementations are inlined
//! here verbatim as the reference.
//!
//! The CI chaos matrix runs this binary under `EXCOVERY_WORKERS=1` and
//! `EXCOVERY_WORKERS=4`, so every assertion doubles as a
//! serial-vs-parallel equivalence check.

use excovery::analysis::responsiveness::{responsiveness_curve, ResponsivenessPoint};
use excovery::desc::process::{EventSelector, ProcessAction};
use excovery::prelude::*;
use excovery::store::records::{EventRow, RunInfoRow};
use excovery::store::warehouse::build_warehouse;
use excovery::store::{Aggregate, Predicate};
use std::collections::BTreeMap;

/// The golden-outcome experiment: the paper's two-party SD description
/// trimmed to a single factor (same trim as the engine's golden digest
/// suite), 2 replications per treatment.
fn desc(seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(2);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

type Preset = (&'static str, fn() -> EngineConfig);

fn presets() -> Vec<Preset> {
    vec![
        ("grid_default", EngineConfig::grid_default),
        ("wired_lan", EngineConfig::wired_lan),
        ("lossy_mesh", EngineConfig::lossy_mesh),
    ]
}

fn outcome_of(preset: fn() -> EngineConfig, seed: u64) -> ExperimentOutcome {
    let mut master = ExperiMaster::new(desc(seed), preset()).unwrap();
    master.execute().unwrap()
}

fn assert_curves_bit_identical(
    name: &str,
    old: &BTreeMap<String, Vec<ResponsivenessPoint>>,
    new: &BTreeMap<String, Vec<ResponsivenessPoint>>,
) {
    assert_eq!(
        old.keys().collect::<Vec<_>>(),
        new.keys().collect::<Vec<_>>(),
        "{name}: treatment keys"
    );
    for (key, old_curve) in old {
        let new_curve = &new[key];
        assert_eq!(old_curve.len(), new_curve.len(), "{name}/{key}: points");
        for (o, n) in old_curve.iter().zip(new_curve) {
            assert_eq!(
                o.deadline_s.to_bits(),
                n.deadline_s.to_bits(),
                "{name}/{key}"
            );
            assert_eq!(
                o.probability.to_bits(),
                n.probability.to_bits(),
                "{name}/{key} @ {}",
                o.deadline_s
            );
            assert_eq!(o.ci_low.to_bits(), n.ci_low.to_bits(), "{name}/{key}");
            assert_eq!(o.ci_high.to_bits(), n.ci_high.to_bits(), "{name}/{key}");
            assert_eq!(o.episodes, n.episodes, "{name}/{key}");
        }
    }
}

// ---- pre-redesign reference implementations (inlined verbatim) -------------

fn old_run_ids(db: &Database) -> Vec<u64> {
    let mut ids: Vec<u64> = EventRow::read_all(db)
        .unwrap()
        .into_iter()
        .map(|e| e.run_id)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

fn old_packets_per_run(db: &Database) -> BTreeMap<u64, usize> {
    let table = db.table("Packets").unwrap();
    let mut out = BTreeMap::new();
    for row in table.rows() {
        let run = row[0].as_int().unwrap_or(-1);
        if run >= 0 {
            *out.entry(run as u64).or_insert(0) += 1;
        }
    }
    out
}

fn old_responsiveness_by_treatment(
    db: &Database,
    treatment_of_run: &dyn Fn(u64) -> String,
    k: usize,
    deadlines_s: &[f64],
) -> BTreeMap<String, Vec<ResponsivenessPoint>> {
    let mut grouped: BTreeMap<String, Vec<DiscoveryEpisode>> = BTreeMap::new();
    for run_id in RunInfoRow::run_ids(db).unwrap() {
        let eps = RunView::load(db, run_id).unwrap().episodes();
        grouped
            .entry(treatment_of_run(run_id))
            .or_default()
            .extend(eps);
    }
    grouped
        .into_iter()
        .map(|(key, eps)| (key, responsiveness_curve(&eps, k, deadlines_s)))
        .collect()
}

fn old_mean_response_time_by_experiment(wh: &Database) -> BTreeMap<i64, f64> {
    let facts = wh.table("FactDiscovery").unwrap();
    let mut out = BTreeMap::new();
    for exp in facts.distinct("ExpKey", &Predicate::True).unwrap() {
        let Some(key) = exp.as_int() else { continue };
        if let Some(mean) = facts
            .aggregate(
                "ResponseTimeNs",
                &Predicate::Eq("ExpKey".into(), exp.clone()),
                Aggregate::Avg,
            )
            .unwrap()
        {
            out.insert(key, mean / 1e9);
        }
    }
    out
}

// ---- parity assertions over the golden presets -----------------------------

#[test]
fn run_inventories_and_episodes_match_pre_redesign() {
    for (name, preset) in presets() {
        let db = outcome_of(preset, 7).database;
        let ds = ExperimentDataset::new(&db).unwrap();
        assert_eq!(ds.run_ids().unwrap(), old_run_ids(&db), "{name}");
        assert_eq!(
            ds.run_ids_with_info().unwrap(),
            RunInfoRow::run_ids(&db).unwrap(),
            "{name}"
        );
        // Episodes: derived t_R values are exact i64 arithmetic, so plain
        // equality here is bit-equality.
        assert_eq!(
            ds.episodes().unwrap(),
            RunView::all_episodes(&db).unwrap(),
            "{name}"
        );
        let by_run = ds.episodes_by_run().unwrap();
        for run in old_run_ids(&db) {
            let old = RunView::load(&db, run).unwrap().episodes();
            let new = by_run.get(&run).cloned().unwrap_or_default();
            assert_eq!(new, old, "{name} run {run}");
        }
    }
}

#[test]
fn packet_volumes_match_pre_redesign() {
    for (name, preset) in presets() {
        let db = outcome_of(preset, 7).database;
        assert_eq!(
            excovery::analysis::packetstats::packets_per_run(&db).unwrap(),
            old_packets_per_run(&db),
            "{name}"
        );
    }
}

#[test]
fn responsiveness_by_treatment_matches_pre_redesign() {
    let deadlines = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0];
    for (name, preset) in presets() {
        let outcome = outcome_of(preset, 7);
        let by_run: BTreeMap<u64, String> = outcome
            .runs
            .iter()
            .map(|r| (r.run_id, r.treatment_key.clone()))
            .collect();
        let treatment = |run: u64| by_run.get(&run).cloned().unwrap_or_default();
        let old = old_responsiveness_by_treatment(&outcome.database, &treatment, 1, &deadlines);
        let new = excovery::analysis::responsiveness::responsiveness_by_treatment(
            &outcome.database,
            &treatment,
            1,
            &deadlines,
        )
        .unwrap();
        assert_curves_bit_identical(name, &old, &new);
    }
}

#[test]
fn warehouse_mean_matches_pre_redesign_across_presets() {
    // One warehouse spanning all three presets — a ≥3-experiment scan.
    let outcomes: Vec<(&str, Database)> = presets()
        .into_iter()
        .map(|(name, preset)| (name, outcome_of(preset, 7).database))
        .collect();
    let packages: Vec<(&str, &Database)> = outcomes.iter().map(|(n, db)| (*n, db)).collect();
    let wh = build_warehouse(&packages).unwrap();
    let old = old_mean_response_time_by_experiment(&wh);
    let new = excovery::query::warehouse::mean_response_time_by_experiment(&wh).unwrap();
    assert_eq!(
        old.keys().collect::<Vec<_>>(),
        new.keys().collect::<Vec<_>>()
    );
    for (key, mean) in &old {
        assert_eq!(
            mean.to_bits(),
            new[key].to_bits(),
            "experiment {key}: {} vs {}",
            mean,
            new[key]
        );
    }
}

#[test]
fn report_render_is_deterministic_and_complete() {
    let db = outcome_of(EngineConfig::grid_default, 7).database;
    let opts = ReportOptions::default();
    let a = excovery::analysis::report::render(&db, &opts).unwrap();
    let b = excovery::analysis::report::render(&db, &opts).unwrap();
    assert_eq!(a, b, "render must be a pure function of the package");
    for needle in [
        "# Experiment report:",
        "## Responsiveness (k = 1)",
        "## Response time t_R",
        "## Packet captures",
        "## Event/packet consistency",
        "## Runs",
    ] {
        assert!(a.contains(needle), "missing {needle}");
    }
}
