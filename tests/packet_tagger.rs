//! End-to-end packet-tagger analysis (paper §VI-A): real CBR background
//! flows are injected by the traffic process (`inject=1`), every packet is
//! stamped by the sending node's 16-bit tagger, and the analysis
//! reconstructs per-path loss from tag gaps in the stored Packets table.

use excovery::analysis::packetstats::{split_tag, tag_loss_stats};
use excovery::desc::process::{ProcessAction, ValueRef};
use excovery::engine::scenarios::load_sweep;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::netsim::topology::Topology;
use excovery::store::records::PacketRow;

fn description_with_injection(bw: i64) -> excovery::desc::ExperimentDescription {
    let mut desc = load_sweep(&[2], &[bw], 1, 31);
    // Turn on real packet injection in the Fig. 7 traffic action.
    for env in &mut desc.env_processes {
        for action in &mut env.actions {
            if let ProcessAction::Invoke { name, params } = action {
                if name == "env_traffic_start" {
                    params.push(("inject".to_string(), ValueRef::int(1)));
                    params.push(("packet_size".to_string(), ValueRef::int(400)));
                }
            }
        }
    }
    desc
}

#[test]
fn injected_flows_appear_in_the_packets_table() {
    let desc = description_with_injection(200);
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = Topology::grid(3, 2);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    assert!(outcome.runs[0].completed, "{:?}", outcome.runs[0].failures);
    let packets = PacketRow::read_run(&outcome.database, 0).unwrap();
    // Background CBR payloads are 0xCB-filled after the sequence number.
    let background = packets
        .iter()
        .filter(|p| split_tag(&p.data).is_some_and(|(_, pl)| pl.ends_with(&[0xCB])))
        .count();
    assert!(background > 10, "CBR packets stored: {background}");
    // Every stored packet carries a tag prefix.
    assert!(packets.iter().all(|p| split_tag(&p.data).is_some()));
}

#[test]
fn tag_gap_analysis_detects_fault_injected_loss() {
    // Add a heavy message-loss fault on the SM node and route the CBR
    // flow between the acting nodes (choice=1), so the flow is guaranteed
    // to cross the faulted node's filter regardless of which pair the
    // traffic seed would draw; the tag-gap estimate for streams through
    // that node must reflect substantial loss. Smaller packets give a
    // denser tag stream while discovery is being delayed by the fault.
    let mut desc = description_with_injection(100);
    for env in &mut desc.env_processes {
        for action in &mut env.actions {
            if let ProcessAction::Invoke { name, params } = action {
                if name == "env_traffic_start" {
                    for (key, value) in params.iter_mut() {
                        if key == "choice" {
                            *value = ValueRef::int(1);
                        }
                        if key == "packet_size" {
                            *value = ValueRef::int(100);
                        }
                    }
                }
            }
        }
    }
    let sm = desc
        .node_processes
        .iter_mut()
        .find(|p| p.actor_id == "actor0")
        .unwrap();
    sm.actions.insert(
        0,
        ProcessAction::invoke_with(
            "fault_message_loss_start",
            [(
                "probability".to_string(),
                ValueRef::Lit(excovery::desc::LevelValue::Float(0.8)),
            )],
        ),
    );
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = Topology::grid(3, 2);
    cfg.run_timeout = excovery::netsim::SimDuration::from_secs(45);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    let stats = tag_loss_stats(&outcome.database, 0).unwrap();
    assert!(!stats.is_empty(), "tag streams observed");
    // At least one observed stream shows measurable loss.
    let max_loss = stats
        .values()
        .filter(|s| s.received >= 20)
        .map(|s| s.loss_ratio())
        .fold(0.0f64, f64::max);
    assert!(
        max_loss > 0.1,
        "tag gaps must expose injected loss, max was {max_loss}"
    );
}

#[test]
fn without_injection_only_protocol_packets_are_stored() {
    let desc = load_sweep(&[2], &[50], 1, 32);
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = Topology::grid(3, 2);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    let packets = PacketRow::read_run(&outcome.database, 0).unwrap();
    for p in &packets {
        let (_, payload) = split_tag(&p.data).unwrap();
        assert!(
            excovery::sd::SdMessage::decode(payload).is_some(),
            "non-SD packet stored without injection"
        );
    }
}
