//! Reproduces **Fig. 12** — the execution components: ExperiMaster,
//! XML-RPC channel, NodeManager with its sub-components (SD actions, fault
//! injection, event generator), exercised over the real wire format.

use excovery::engine::binding::PlatformBinding;
use excovery::engine::nodemanager::NodeManager;
use excovery::netsim::sim::SimulatorConfig;
use excovery::netsim::topology::Topology;
use excovery::netsim::{NodeId, SimDuration, Simulator};
use excovery::rpc::{MethodCall, MethodResponse, Value};
use excovery::sd::SdConfig;
use parking_lot::Mutex;
use std::sync::Arc;

fn platform() -> excovery::desc::PlatformSpec {
    excovery::desc::ExperimentDescription::paper_two_party_sd(1).platform
}

#[test]
fn nodemanager_exposes_the_fig12_procedure_families() {
    // Build the registry directly and inspect its procedure inventory.
    let binding = Arc::new(PlatformBinding::new(&platform(), 6).unwrap());
    let sim = Arc::new(Mutex::new(Simulator::new(
        Topology::grid(3, 2),
        SimulatorConfig::perfect_clocks(1),
    )));
    let proxy = NodeManager::spawn(NodeId(0), "t9-157", sim, binding, SdConfig::two_party());
    // Management actions.
    for m in [
        "experiment_init",
        "experiment_exit",
        "run_init",
        "run_exit",
        "measure_sync",
    ] {
        assert!(proxy.call(m, vec![]).is_ok(), "management procedure {m}");
    }
    // Unknown methods are reported as XML-RPC faults, not panics.
    let err = proxy.call("definitely_not_a_method", vec![]).unwrap_err();
    assert!(err.to_string().contains("definitely_not_a_method"));
}

#[test]
fn wire_format_is_real_xmlrpc() {
    // A call serialized by our client parses as the spec's XML shape.
    let call = MethodCall::new("sd_init", vec![Value::str("SU")]);
    let xml = call.to_xml();
    let doc = excovery::xml::parse(&xml).unwrap();
    assert_eq!(doc.root().name, "methodCall");
    assert_eq!(doc.root().find_text("methodName"), Some("sd_init".into()));
    assert_eq!(
        doc.root().find_text("params/param/value/string"),
        Some("SU".into())
    );
    // And a fault response likewise.
    let fault = MethodResponse::Fault(excovery::rpc::Fault::new(400, "missing role"));
    let doc = excovery::xml::parse(&fault.to_xml()).unwrap();
    assert!(doc.root().find("fault/value/struct").is_some());
}

#[test]
fn concurrent_master_threads_serialize_on_the_node_lock() {
    // The prototype creates an experiment process thread and a fault
    // thread per node; the node object must serialize access (§VI-A).
    let binding = Arc::new(PlatformBinding::new(&platform(), 6).unwrap());
    let sim = Arc::new(Mutex::new(Simulator::new(
        Topology::grid(3, 2),
        SimulatorConfig::perfect_clocks(2),
    )));
    let proxy = Arc::new(NodeManager::spawn(
        NodeId(0),
        "t9-157",
        Arc::clone(&sim),
        binding,
        SdConfig::two_party(),
    ));
    proxy.call("experiment_init", vec![]).unwrap();
    let mut handles = Vec::new();
    for i in 0..8 {
        let p = Arc::clone(&proxy);
        handles.push(std::thread::spawn(move || {
            // Mix of process actions and event flags from two "threads".
            if i % 2 == 0 {
                p.call("event_flag", vec![Value::str(format!("flag-{i}"))])
                    .unwrap();
            } else {
                p.call("measure_sync", vec![]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events = sim.lock().drain_protocol_events();
    assert_eq!(
        events
            .iter()
            .filter(|e| e.name.starts_with("flag-"))
            .count(),
        4
    );
}

#[test]
fn sd_actions_drive_the_protocol_through_rpc() {
    let binding = Arc::new(PlatformBinding::new(&platform(), 6).unwrap());
    let sim = Arc::new(Mutex::new(Simulator::new(
        Topology::grid(3, 2),
        SimulatorConfig::perfect_clocks(3),
    )));
    let sm = NodeManager::spawn(
        NodeId(0),
        "t9-157",
        Arc::clone(&sim),
        Arc::clone(&binding),
        SdConfig::two_party(),
    );
    let su = NodeManager::spawn(
        NodeId(1),
        "t9-105",
        Arc::clone(&sim),
        Arc::clone(&binding),
        SdConfig::two_party(),
    );
    for p in [&sm, &su] {
        p.call("experiment_init", vec![]).unwrap();
    }
    sm.call("sd_init", vec![Value::str("SM")]).unwrap();
    su.call("sd_init", vec![Value::str("SU")]).unwrap();
    sm.call("sd_start_publish", vec![Value::str("_demo._tcp")])
        .unwrap();
    su.call("sd_start_search", vec![Value::str("_demo._tcp")])
        .unwrap();
    sim.lock().run_for(SimDuration::from_secs(3));
    let events = sim.lock().drain_protocol_events();
    assert!(events.iter().any(|e| e.name == "sd_service_add"));
}
