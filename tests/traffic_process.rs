//! Reproduces **Figs. 5 and 7** — the traffic-generation environment
//! process driven by the factor list, and its observable effect on the
//! experiment process.

use excovery::analysis::runs::RunView;
use excovery::engine::scenarios::load_sweep;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::netsim::topology::Topology;
use excovery::store::records::EventRow;

#[test]
fn traffic_process_starts_and_stops_with_the_run() {
    let desc = load_sweep(&[5], &[50], 2, 3);
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(2);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    for run in 0..2u64 {
        let events = EventRow::read_run(&outcome.database, run).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.event_type.as_str()).collect();
        assert!(
            names.contains(&"env_traffic_started"),
            "run {run}: {names:?}"
        );
        assert!(
            names.contains(&"env_traffic_stopped"),
            "run {run}: {names:?}"
        );
    }
    // Clean-up removed the load: nothing lingers on the links.
    let sim = master.simulator();
    let s = sim.lock();
    let residual: f64 = s
        .topology()
        .edges()
        .iter()
        .map(|&(a, b)| s.link_load(a, b))
        .sum();
    assert_eq!(residual, 0.0, "traffic must be fully removed at run_exit");
}

#[test]
fn heavy_load_degrades_discovery_over_a_long_path() {
    // Same experiment on a 5-hop chain at two load levels. Heavy
    // cross-traffic on the only path must slow or defeat discovery —
    // the qualitative effect the paper's case study measures.
    fn mean_t_r(bw: i64, pairs: i64) -> (f64, usize, usize) {
        let mut desc = load_sweep(&[pairs], &[bw], 12, 11);
        // A and B at the ends of a 6-node chain; traffic among all nodes.
        desc.platform = excovery::desc::PlatformSpec::new()
            .with_actor_node("t9-157", "10.0.0.157", "A")
            .with_actor_node("t9-105", "10.0.0.105", "B")
            .with_env_node("t9-001", "10.0.0.1")
            .with_env_node("t9-002", "10.0.0.2")
            .with_env_node("t9-003", "10.0.0.3")
            .with_env_node("t9-004", "10.0.0.4");
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = Topology::chain(6);
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let outcome = master.execute().unwrap();
        let episodes = RunView::all_episodes(&outcome.database).unwrap();
        let t_rs: Vec<f64> = episodes
            .iter()
            .filter_map(|e| e.first_t_r_ns())
            .map(|t| t as f64 / 1e9)
            .collect();
        let found = t_rs.len();
        let mean = if found == 0 {
            f64::INFINITY
        } else {
            t_rs.iter().sum::<f64>() / found as f64
        };
        (mean, found, episodes.len())
    }
    let (t_idle, found_idle, n_idle) = mean_t_r(10, 2);
    let (t_loaded, found_loaded, n_loaded) = mean_t_r(2000, 8);
    assert_eq!(n_idle, 12);
    assert_eq!(n_loaded, 12);
    assert!(
        found_idle >= 11,
        "idle chain discovers reliably ({found_idle}/12)"
    );
    // Load must hurt: fewer discoveries or clearly slower ones.
    assert!(
        found_loaded < found_idle || t_loaded > 2.0 * t_idle,
        "idle: {t_idle:.4}s ({found_idle}), loaded: {t_loaded:.4}s ({found_loaded})"
    );
}

#[test]
fn hop_distance_in_chain_affects_response_time() {
    // CS-3 shape check at two hop counts.
    fn median_t_r(hops: usize) -> f64 {
        let desc = excovery::engine::scenarios::hop_distance(10, 5);
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = excovery::engine::scenarios::chain_between_actors(hops);
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let outcome = master.execute().unwrap();
        let mut t_rs: Vec<f64> = RunView::all_episodes(&outcome.database)
            .unwrap()
            .iter()
            .filter_map(|e| e.first_t_r_ns())
            .map(|t| t as f64 / 1e9)
            .collect();
        assert!(!t_rs.is_empty(), "at {hops} hops nothing was discovered");
        t_rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t_rs[t_rs.len() / 2]
    }
    let near = median_t_r(1);
    let far = median_t_r(5);
    assert!(
        far > near,
        "5 hops ({far:.4}s) must be slower than 1 hop ({near:.4}s)"
    );
}

#[test]
fn replication_seed_binding_reproduces_pair_switching() {
    // Fig. 7 binds random_switch_seed to the replication factor: the same
    // replicate index must see the same traffic pairs in every treatment
    // block — observable as identical event tables across two executions.
    fn run_events() -> Vec<(u64, String, i64)> {
        let desc = load_sweep(&[4], &[100], 2, 77);
        let mut master = ExperiMaster::new(desc, EngineConfig::grid_default()).unwrap();
        let outcome = master.execute().unwrap();
        EventRow::read_all(&outcome.database)
            .unwrap()
            .into_iter()
            .map(|e| (e.run_id, e.event_type, e.common_time_ns))
            .collect()
    }
    assert_eq!(run_events(), run_events());
}
