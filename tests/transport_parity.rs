//! The control-channel backend must be invisible to the experiment: the
//! same description on the same platform seed yields the same
//! [`ExperimentOutcome`] whether the master reaches its NodeManagers over
//! the in-memory channel or over real TCP sockets.

use excovery::desc::ExperimentDescription;
use excovery::engine::{EngineConfig, ExperiMaster, ExperimentOutcome, TransportKind};
use excovery::netsim::topology::Topology;
use excovery::store::records::{EventRow, PacketRow, RunInfoRow};

fn description() -> ExperimentDescription {
    use excovery::desc::process::{EventSelector, ProcessAction};
    let mut d = ExperimentDescription::paper_two_party_sd(2);
    // Same slimming as the engine's unit tests: drop the load factors so a
    // run is two replicates of plain discovery.
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d
}

fn execute_with(transport: TransportKind) -> ExperimentOutcome {
    let cfg = EngineConfig::builder()
        .topology(Topology::grid(3, 2))
        .transport(transport)
        .l2_root(std::env::temp_dir().join(format!(
            "excovery-parity-{transport}-{}",
            std::process::id()
        )))
        .build();
    let mut master = ExperiMaster::new(description(), cfg).unwrap();
    master.execute().unwrap()
}

#[test]
fn memory_and_tcp_transports_produce_identical_outcomes() {
    let memory = execute_with(TransportKind::Memory);
    let tcp = execute_with(TransportKind::Tcp);

    // Run-level outcomes line up exactly.
    assert_eq!(memory.runs, tcp.runs);
    assert!(memory.runs.iter().all(|r| r.completed), "{:?}", memory.runs);

    // The conditioned level-3 tables are identical row for row.
    let m_events = EventRow::read_all(&memory.database).unwrap();
    let t_events = EventRow::read_all(&tcp.database).unwrap();
    assert!(!m_events.is_empty());
    assert_eq!(
        m_events
            .iter()
            .map(|e| (
                e.run_id,
                e.node_id.clone(),
                e.common_time_ns,
                e.event_type.clone()
            ))
            .collect::<Vec<_>>(),
        t_events
            .iter()
            .map(|e| (
                e.run_id,
                e.node_id.clone(),
                e.common_time_ns,
                e.event_type.clone()
            ))
            .collect::<Vec<_>>(),
    );

    let m_packets = PacketRow::read_run(&memory.database, 0).unwrap();
    let t_packets = PacketRow::read_run(&tcp.database, 0).unwrap();
    assert!(!m_packets.is_empty());
    assert_eq!(m_packets.len(), t_packets.len());
    for (m, t) in m_packets.iter().zip(&t_packets) {
        assert_eq!(
            (&m.node_id, m.common_time_ns, &m.data),
            (&t.node_id, t.common_time_ns, &t.data)
        );
    }

    // Sync measurements (per-node RNG streams) agree as well.
    let m_infos = RunInfoRow::read_all(&memory.database).unwrap();
    let t_infos = RunInfoRow::read_all(&tcp.database).unwrap();
    assert_eq!(
        m_infos
            .iter()
            .map(|i| (i.run_id, i.node_id.clone(), i.time_diff_ns))
            .collect::<Vec<_>>(),
        t_infos
            .iter()
            .map(|i| (i.run_id, i.node_id.clone(), i.time_diff_ns))
            .collect::<Vec<_>>(),
    );
}

#[test]
fn tcp_transport_reports_real_socket_endpoints() {
    let cfg = EngineConfig::builder()
        .topology(Topology::grid(3, 2))
        .transport(TransportKind::Tcp)
        .build();
    let master = ExperiMaster::new(description(), cfg).unwrap();
    let endpoints = master.endpoints();
    assert_eq!(endpoints.len(), 6);
    for (node, ep) in &endpoints {
        assert!(ep.starts_with("tcp://127.0.0.1:"), "{node}: {ep}");
    }
}

#[test]
fn memory_transport_reports_memory_endpoints() {
    let master = ExperiMaster::new(
        description(),
        EngineConfig::builder()
            .topology(Topology::grid(3, 2))
            .build(),
    )
    .unwrap();
    assert!(master.endpoints().iter().all(|(_, ep)| ep == "memory"));
}
