//! The control-plane dispatcher must be invisible to the experiment: the
//! same description on the same platform preset and seed yields a
//! bit-equal [`ExperimentOutcome::digest`] whether the lifecycle fan-out
//! runs on one scoped thread per node ([`DispatcherKind::Threaded`]) or
//! multiplexed on the master's thread ([`DispatcherKind::Reactor`]),
//! flat or through a sub-master fan-out tree, over either transport.

use excovery::desc::process::{EventSelector, ProcessAction};
use excovery::desc::ExperimentDescription;
use excovery::engine::{
    DispatcherKind, EngineConfig, ExperiMaster, ExperimentOutcome, TransportKind,
};

const SEEDS: [u64; 3] = [1, 7, 1914];

type Preset = (&'static str, fn() -> EngineConfig);

fn presets() -> Vec<Preset> {
    vec![
        ("grid_default", EngineConfig::grid_default),
        ("wired_lan", EngineConfig::wired_lan),
        ("lossy_mesh", EngineConfig::lossy_mesh),
    ]
}

/// Same trimmed two-party SD experiment the golden-digest suite pins, so a
/// dispatcher that drifts would also be caught against the golden table.
fn desc(seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(2);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn execute(
    preset: fn() -> EngineConfig,
    seed: u64,
    transport: TransportKind,
    dispatcher: DispatcherKind,
    fanout: Option<usize>,
    tag: &str,
) -> ExperimentOutcome {
    let mut cfg = preset();
    cfg.transport = transport;
    cfg.dispatcher = dispatcher;
    cfg.fanout_tree = fanout;
    cfg.l2_root = Some(std::env::temp_dir().join(format!(
        "excovery-dispatch-eq-{tag}-{seed}-{transport}-{dispatcher}-p{}",
        std::process::id()
    )));
    let mut master = ExperiMaster::new(desc(seed), cfg).unwrap();
    master.execute().unwrap()
}

fn assert_equivalent(threaded: &ExperimentOutcome, reactor: &ExperimentOutcome, what: &str) {
    assert_eq!(
        threaded.digest(),
        reactor.digest(),
        "{what}: digests diverged between dispatchers"
    );
    assert_eq!(threaded.runs, reactor.runs, "{what}");
    assert!(threaded.runs.iter().all(|r| r.completed), "{what}");
    // Fault-free: neither dispatcher has anything to retry, so the retry
    // accounting agrees exactly.
    assert_eq!(
        threaded.control_retries, reactor.control_retries,
        "{what}: retry accounting diverged"
    );
    assert_eq!(threaded.control_retries, 0, "{what}");
    assert_eq!(threaded.dispatcher, DispatcherKind::Threaded);
    assert_eq!(reactor.dispatcher, DispatcherKind::Reactor);
}

#[test]
fn reactor_matches_threaded_on_every_preset_and_seed_over_memory() {
    for (name, preset) in presets() {
        for seed in SEEDS {
            let threaded = execute(
                preset,
                seed,
                TransportKind::Memory,
                DispatcherKind::Threaded,
                None,
                name,
            );
            let reactor = execute(
                preset,
                seed,
                TransportKind::Memory,
                DispatcherKind::Reactor,
                None,
                name,
            );
            assert_equivalent(&threaded, &reactor, &format!("{name}/seed {seed}/memory"));
        }
    }
}

#[test]
fn reactor_matches_threaded_on_every_preset_and_seed_over_tcp() {
    for (name, preset) in presets() {
        for seed in SEEDS {
            let threaded = execute(
                preset,
                seed,
                TransportKind::Tcp,
                DispatcherKind::Threaded,
                None,
                name,
            );
            let reactor = execute(
                preset,
                seed,
                TransportKind::Tcp,
                DispatcherKind::Reactor,
                None,
                name,
            );
            assert_equivalent(&threaded, &reactor, &format!("{name}/seed {seed}/tcp"));
        }
    }
}

/// The hierarchical fan-out tree (batched frames through sub-master
/// relays) is equally invisible, at widths that exercise both multi-node
/// relays and a ragged last group — over both transports.
#[test]
fn fanout_tree_matches_the_flat_threaded_path() {
    let seed = SEEDS[0];
    for transport in [TransportKind::Memory, TransportKind::Tcp] {
        let threaded = execute(
            EngineConfig::grid_default,
            seed,
            transport,
            DispatcherKind::Threaded,
            None,
            "tree-base",
        );
        for width in [2usize, 4] {
            let tree = execute(
                EngineConfig::grid_default,
                seed,
                transport,
                DispatcherKind::Reactor,
                Some(width),
                &format!("tree-w{width}"),
            );
            assert_equivalent(
                &threaded,
                &tree,
                &format!("fan-out tree width {width} over {transport}"),
            );
        }
    }
}

#[test]
fn fanout_tree_requires_the_reactor_dispatcher() {
    let mut cfg = EngineConfig::grid_default();
    cfg.fanout_tree = Some(4);
    let err = match ExperiMaster::new(desc(SEEDS[0]), cfg) {
        Ok(_) => panic!("fanout_tree without the reactor dispatcher must be rejected"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("reactor"),
        "unexpected error: {err}"
    );

    let mut cfg = EngineConfig::grid_default();
    cfg.dispatcher = DispatcherKind::Reactor;
    cfg.fanout_tree = Some(0);
    let err = match ExperiMaster::new(desc(SEEDS[0]), cfg) {
        Ok(_) => panic!("fanout_tree width 0 must be rejected"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("at least 1"),
        "unexpected error: {err}"
    );
}
