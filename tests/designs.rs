//! End-to-end coverage of the experiment designs: blocking via the
//! actor-node-map factor (the paper's Fig. 5 `usage="blocking"`), the
//! completely randomized design, and the randomized-complete-block design.

use excovery::desc::factors::{ActorAssignment, LevelValue};
use excovery::desc::plan::Design;
use excovery::desc::ExperimentDescription;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::store::records::EventRow;

/// The paper description, extended with a second actor-map level that
/// swaps the SM and SU nodes — two blocks, as a blocking factor produces.
fn swapped_blocks_description(reps: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(reps);
    // Simplify: drop load factors, keep the sync-only env process.
    d.factors.factors.retain(|f| f.id == "fact_nodes");
    d.env_processes[0].actions = vec![
        excovery::desc::ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        excovery::desc::ProcessAction::WaitForEvent(excovery::desc::process::EventSelector::named(
            "done",
        )),
    ];
    let nodes = d
        .factors
        .factors
        .iter_mut()
        .find(|f| f.id == "fact_nodes")
        .unwrap();
    nodes.levels.push(LevelValue::ActorMap(vec![
        ActorAssignment {
            actor_id: "actor0".into(),
            instances: vec!["B".into()],
        },
        ActorAssignment {
            actor_id: "actor1".into(),
            instances: vec!["A".into()],
        },
    ]));
    d
}

#[test]
fn blocking_factor_swaps_roles_between_blocks() {
    let desc = swapped_blocks_description(2);
    assert_eq!(desc.plan().len(), 4, "2 blocks × 2 replications");
    let mut master = ExperiMaster::new(desc, EngineConfig::grid_default()).unwrap();
    let outcome = master.execute().unwrap();
    assert!(outcome.runs.iter().all(|r| r.completed));

    // Block 1 (runs 0-1): A = t9-157 publishes; block 2 (runs 2-3): B
    // publishes — visible in which node emits sd_start_publish.
    let publisher_of = |run: u64| {
        EventRow::read_run(&outcome.database, run)
            .unwrap()
            .into_iter()
            .find(|e| e.event_type == "sd_start_publish")
            .map(|e| e.node_id)
            .expect("publish event")
    };
    assert_eq!(publisher_of(0), "t9-157");
    assert_eq!(publisher_of(1), "t9-157");
    assert_eq!(publisher_of(2), "t9-105");
    assert_eq!(publisher_of(3), "t9-105");
    // And discovery still works in both blocks, naming the right SM.
    for (run, sm) in [(0u64, "t9-157"), (3, "t9-105")] {
        let add = EventRow::read_run(&outcome.database, run)
            .unwrap()
            .into_iter()
            .find(|e| e.event_type == "sd_service_add")
            .unwrap_or_else(|| panic!("run {run} discovered nothing"));
        let params = EventRow::decode_params(&add.parameter);
        assert!(
            params.iter().any(|(k, v)| k == "service" && v == sm),
            "run {run}: {params:?}"
        );
    }
}

#[test]
fn completely_randomized_design_executes_and_interleaves_blocks() {
    let mut desc = swapped_blocks_description(3);
    desc.design = Design::CompletelyRandomized;
    desc.seed = 5;
    let plan = desc.plan();
    // The shuffle interleaves the two blocks (6 runs; identity order is
    // one of 720 permutations — seed 5 does not produce it).
    let keys: Vec<String> = plan.runs.iter().map(|r| r.treatment.key()).collect();
    let sorted_blocks: Vec<String> = {
        let mut k = keys.clone();
        k.sort();
        k
    };
    assert_ne!(keys, sorted_blocks, "CRD must interleave: {keys:?}");

    let mut master = ExperiMaster::new(desc, EngineConfig::grid_default()).unwrap();
    let outcome = master.execute().unwrap();
    assert_eq!(outcome.runs.len(), 6);
    assert!(
        outcome.runs.iter().all(|r| r.completed),
        "{:?}",
        outcome.runs
    );
    // Run ids in the database follow the randomized plan order.
    let treatments: Vec<&str> = outcome
        .runs
        .iter()
        .map(|r| r.treatment_key.as_str())
        .collect();
    assert_eq!(
        treatments,
        keys.iter().map(String::as_str).collect::<Vec<_>>(),
        "executed order matches the generated plan"
    );
}

#[test]
fn rcbd_keeps_blocks_contiguous_end_to_end() {
    let mut desc = swapped_blocks_description(3);
    desc.design = Design::RandomizedWithinBlocks;
    desc.seed = 9;
    let plan = desc.plan();
    let first_block_key = plan.runs[0].treatment.key();
    // First three runs share a block, last three the other.
    assert!(plan.runs[..3]
        .iter()
        .all(|r| r.treatment.key() == first_block_key));
    assert!(plan.runs[3..]
        .iter()
        .all(|r| r.treatment.key() != first_block_key));

    let mut master = ExperiMaster::new(desc, EngineConfig::grid_default()).unwrap();
    let outcome = master.execute().unwrap();
    assert!(outcome.runs.iter().all(|r| r.completed));
}
