//! Reproduces **Fig. 3** — the ExCovery concepts and experiment workflow:
//! description → treatment plans → execution (master + nodes) →
//! collection/conditioning → storage, plus the repeatability guarantee of
//! §IV-C1 ("perfect repeatability of random sequences ... when initialized
//! with the same seed").

use excovery::desc::ExperimentDescription;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::store::records::{EventRow, ExperimentInfo, PacketRow, RunInfoRow};
use excovery::store::repository::Repository;

fn run_paper_experiment(seed: u64, reps: u64) -> excovery::engine::ExperimentOutcome {
    let mut desc = ExperimentDescription::paper_two_party_sd(reps);
    desc.seed = seed;
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(reps.min(6));
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    master.execute().unwrap()
}

#[test]
fn full_workflow_produces_conditioned_package() {
    let outcome = run_paper_experiment(1, 2);
    assert_eq!(outcome.runs.len(), 2);
    assert!(outcome.runs.iter().all(|r| r.completed));

    // Level 1: the description is stored and loadable.
    let info = ExperimentInfo::read(&outcome.database).unwrap();
    let desc = excovery::desc::xmlio::from_xml(&info.exp_xml).unwrap();
    assert_eq!(desc.name, "sd-two-party");

    // Level 3: every run has run infos with measured clock offsets.
    let infos = RunInfoRow::read_all(&outcome.database).unwrap();
    assert_eq!(RunInfoRow::run_ids(&outcome.database).unwrap(), vec![0, 1]);
    // 6 managed platform nodes per run.
    assert_eq!(infos.len(), 12);
    assert!(
        infos.iter().any(|i| i.time_diff_ns != 0),
        "drifting clocks must produce nonzero measured offsets"
    );

    // Conditioning: event times are on a common base — the SU's discovery
    // happens after its search start despite clock offsets.
    for run in 0..2u64 {
        let events = EventRow::read_run(&outcome.database, run).unwrap();
        let start = events
            .iter()
            .find(|e| e.event_type == "sd_start_search")
            .unwrap_or_else(|| panic!("run {run} lacks search start"));
        let add = events
            .iter()
            .find(|e| e.event_type == "sd_service_add")
            .unwrap_or_else(|| panic!("run {run} lacks discovery"));
        assert!(
            add.common_time_ns > start.common_time_ns,
            "causality on the common time base (run {run})"
        );
    }

    // Packets were captured and conditioned.
    assert!(!PacketRow::read_run(&outcome.database, 0)
        .unwrap()
        .is_empty());
}

#[test]
fn same_seed_reproduces_identical_measurements() {
    let a = run_paper_experiment(42, 2);
    let b = run_paper_experiment(42, 2);
    let ea = EventRow::read_all(&a.database).unwrap();
    let eb = EventRow::read_all(&b.database).unwrap();
    assert_eq!(ea, eb, "same seed must yield byte-identical event tables");
    assert_eq!(
        a.database.table("Packets").unwrap(),
        b.database.table("Packets").unwrap(),
        "and identical packet tables"
    );
}

#[test]
fn different_seed_changes_measurements() {
    let a = run_paper_experiment(1, 1);
    let b = run_paper_experiment(2, 1);
    let ea = EventRow::read_all(&a.database).unwrap();
    let eb = EventRow::read_all(&b.database).unwrap();
    assert_ne!(ea, eb, "different seeds draw different random sequences");
}

#[test]
fn level4_repository_integrates_multiple_experiments() {
    let root = std::env::temp_dir().join(format!("excovery-l4-test-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let repo = Repository::open(&root).unwrap();
    for seed in [1, 2] {
        let outcome = run_paper_experiment(seed, 1);
        repo.store(&format!("sd-two-party-s{seed}"), &outcome.database)
            .unwrap();
    }
    let index = repo.index().unwrap();
    assert_eq!(index.len(), 2);
    // Cross-experiment query: total events per experiment.
    let counts = repo
        .map_experiments(|id, db| Ok((id.to_string(), db.table("Events")?.len())))
        .unwrap();
    assert_eq!(counts.len(), 2);
    assert!(counts.iter().all(|(_, n)| *n > 0));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn crash_recovery_resumes_aborted_experiment() {
    let l2_root =
        std::env::temp_dir().join(format!("excovery-recover-test-{}", std::process::id()));
    std::fs::remove_dir_all(&l2_root).ok();
    let desc = ExperimentDescription::paper_two_party_sd(4);

    // Simulate an abort after 2 of 4 runs of the first treatment block.
    let mut cfg = EngineConfig::grid_default();
    cfg.l2_root = Some(l2_root.clone());
    cfg.max_runs = Some(2);
    cfg.keep_l2 = true;
    ExperiMaster::new(desc.clone(), cfg)
        .unwrap()
        .execute()
        .unwrap();

    // Recovery: resume and finish the remaining runs of the plan.
    let mut cfg = EngineConfig::grid_default();
    cfg.l2_root = Some(l2_root.clone());
    cfg.resume = true;
    cfg.max_runs = Some(2);
    cfg.keep_l2 = true;
    let second = ExperiMaster::new(desc, cfg).unwrap().execute().unwrap();
    // The outcome vector covers the whole campaign: the two journalled
    // runs restored in front, execution resumed at the first incomplete.
    assert_eq!(second.restored_runs, 2);
    assert_eq!(
        second.runs[2].run_id, 2,
        "resumed at the first incomplete run"
    );
    // The final package integrates runs from both sessions.
    assert_eq!(
        RunInfoRow::run_ids(&second.database).unwrap(),
        vec![0, 1, 2, 3]
    );
    std::fs::remove_dir_all(&l2_root).ok();
}
