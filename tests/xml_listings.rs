//! Reproduces the paper's XML listings (**Figs. 4, 5, 6, 7, 8**) —
//! transcriptions of the printed code parse into the typed model with the
//! exact structure the paper describes.

use excovery::desc::xmlio::from_xml;
use excovery::desc::{FactorUsage, ProcessAction, ValueRef};

/// Fig. 4: rudimentary description with informative parameters.
const FIG4: &str = r#"
<experiment name="fig4">
  <nodes><node id="A"/><node id="B"/></nodes>
  <params>
    <param key="sd_architecture" value="two-party"/>
    <param key="sd_protocol" value="zeroconf"/>
    <param key="sd_scheme" value="active"/>
  </params>
</experiment>"#;

/// Fig. 5: factors and levels.
const FIG5: &str = r#"
<experiment name="fig5">
<factorlist>
 <factor id="fact_nodes" type="actor_node_map" usage="blocking">
   <levels><level>
   <actor id="actor0"><instance id="0">A</instance></actor>
   <actor id="actor1"><instance id="0">B</instance></actor>
   </level></levels>
 </factor>
 <factor usage="random" type="int" id="fact_pairs">
   <levels>
    <level>5</level><level>20</level>
   </levels>
 </factor>
 <factor usage="constant" id="fact_bw" type="int">
   <!-- datarate generated load -->
   <levels>
    <level>10</level><level>50</level><level>100</level>
   </levels>
 </factor>
 <replicationfactor usage="replication" type="int"
    id="fact_replication_id">1000
 </replicationfactor>
</factorlist>
</experiment>"#;

/// Fig. 6: template for node and environment processes.
const FIG6: &str = r#"
<experiment name="fig6">
  <node_processes>
    <actor id="actor0">
      <nodes><factorref id="fact_nodes"/></nodes>
      <sd_actions></sd_actions>
    </actor>
  </node_processes>
  <env_process>
    <env_actions></env_actions>
  </env_process>
</experiment>"#;

/// Fig. 7: environment process for traffic generation.
const FIG7: &str = r#"
<experiment name="fig7">
<env_process>
 <env_actions>
   <event_flag><value>"ready_to_init"</value></event_flag>
   <env_traffic_start>
    <bw><factorref id="fact_bw" /></bw>
    <choice>0</choice>
    <random_switch_amount>"1"</random_switch_amount>
    <random_switch_seed>
      <factorref id="fact_replication_id" />
    </random_switch_seed>
    <random_pairs><factorref id="fact_pairs" />
      </random_pairs>
    <random_seed><factorref id="fact_pairs"/>
      </random_seed>
   </env_traffic_start>
   <wait_for_event>
    <event_dependency>"done"</event_dependency>
   </wait_for_event>
   <env_traffic_stop />
 </env_actions>
</env_process>
</experiment>"#;

/// Fig. 8: platform specification.
const FIG8: &str = r#"
<experiment name="fig8">
  <platform>
    <actor_nodes>
      <node id="t9-157" address="10.0.0.157" abstract="A"/>
      <node id="t9-105" address="10.0.0.105" abstract="B"/>
    </actor_nodes>
    <env_nodes>
      <node id="t9-004" address="10.0.0.4"/>
      <node id="t9-022" address="10.0.0.22"/>
      <node id="t9-035" address="10.0.0.35"/>
      <node id="t9-169" address="10.0.0.169"/>
    </env_nodes>
  </platform>
</experiment>"#;

#[test]
fn fig4_informative_parameters() {
    let d = from_xml(FIG4).unwrap();
    assert_eq!(d.abstract_nodes, vec!["A", "B"]);
    assert_eq!(d.param("sd_architecture"), Some("two-party"));
    assert_eq!(d.param("sd_protocol"), Some("zeroconf"));
    assert_eq!(d.param("sd_scheme"), Some("active"));
}

#[test]
fn fig5_factors_and_plan_arithmetic() {
    let d = from_xml(FIG5).unwrap();
    let fl = &d.factors;
    assert_eq!(fl.factors.len(), 3);
    assert_eq!(
        fl.factor("fact_nodes").unwrap().usage,
        FactorUsage::Blocking
    );
    assert_eq!(fl.factor("fact_pairs").unwrap().usage, FactorUsage::Random);
    assert_eq!(fl.factor("fact_bw").unwrap().usage, FactorUsage::Constant);
    assert_eq!(fl.replication.count, 1000);
    assert_eq!(fl.replication.id, "fact_replication_id");
    // "Each treatment will be repeated 1000 times": 6 treatments.
    assert_eq!(fl.treatment_count(), 6);
    assert_eq!(fl.total_runs(), 6000);
    // OFAT: the first factor varies least often, the last every run.
    let plan = d.plan();
    let first_block: Vec<i64> = plan.runs[..3000]
        .iter()
        .map(|r| r.treatment.int("fact_pairs").unwrap())
        .collect();
    assert!(
        first_block.windows(2).all(|w| w[0] == w[1]),
        "pairs constant over the first block"
    );
    let bw_changes = plan.runs[..3000]
        .windows(2)
        .filter(|w| w[0].treatment.int("fact_bw") != w[1].treatment.int("fact_bw"))
        .count();
    assert_eq!(
        bw_changes, 2,
        "bw (last factor) cycles through its 3 levels inside the block"
    );
}

#[test]
fn fig6_process_templates() {
    let d = from_xml(FIG6).unwrap();
    let actor = d.node_process("actor0").unwrap();
    assert_eq!(actor.nodes_factor.as_deref(), Some("fact_nodes"));
    assert!(actor.actions.is_empty());
    assert_eq!(d.env_processes.len(), 1);
    assert!(d.env_processes[0].actions.is_empty());
}

#[test]
fn fig7_traffic_process_parameters() {
    let d = from_xml(FIG7).unwrap();
    let env = &d.env_processes[0];
    assert_eq!(env.actions.len(), 4);
    assert_eq!(
        env.actions[0],
        ProcessAction::EventFlag {
            value: "ready_to_init".into()
        }
    );
    match &env.actions[1] {
        ProcessAction::Invoke { name, params } => {
            assert_eq!(name, "env_traffic_start");
            let get = |k: &str| params.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
            assert_eq!(get("bw"), Some(ValueRef::factor("fact_bw")));
            assert_eq!(get("choice"), Some(ValueRef::int(0)));
            assert_eq!(get("random_switch_amount"), Some(ValueRef::int(1)));
            assert_eq!(
                get("random_switch_seed"),
                Some(ValueRef::factor("fact_replication_id"))
            );
            assert_eq!(get("random_pairs"), Some(ValueRef::factor("fact_pairs")));
            assert_eq!(get("random_seed"), Some(ValueRef::factor("fact_pairs")));
        }
        other => panic!("unexpected action {other:?}"),
    }
    assert_eq!(env.actions[3], ProcessAction::invoke("env_traffic_stop"));
}

#[test]
fn fig8_platform_nodes() {
    let d = from_xml(FIG8).unwrap();
    assert_eq!(d.platform.actor_nodes.len(), 2);
    assert_eq!(d.platform.env_nodes.len(), 4);
    let a = d.platform.node_for_abstract("A").unwrap();
    assert_eq!(a.id, "t9-157");
    assert_eq!(a.address, "10.0.0.157");
    assert_eq!(d.platform.node("t9-169").unwrap().address, "10.0.0.169");
}

#[test]
fn combined_description_emits_and_reparses_every_listing_construct() {
    // The built-in paper description contains all of Figs. 4-10; its XML
    // form must contain each listing's characteristic elements.
    let d = excovery::desc::ExperimentDescription::paper_two_party_sd(1000);
    let xml = excovery::desc::xmlio::to_xml(&d);
    for construct in [
        "<factorlist>",              // Fig. 5
        "<replicationfactor",        // Fig. 5
        "<factorref id=\"fact_bw\"", // Fig. 7
        "<env_traffic_start>",       // Fig. 7
        "<actor_nodes>",             // Fig. 8
        "<sd_init",                  // Figs. 9/10
        "<wait_for_event>",          // Fig. 10
        "<param_dependency>",        // Fig. 10
        "<wait_marker",              // Fig. 10
        "<event_flag>",              // Fig. 10
        "<timeout>",                 // Fig. 10
    ] {
        assert!(xml.contains(construct), "XML lacks {construct}");
    }
    assert_eq!(from_xml(&xml).unwrap(), d);
}
