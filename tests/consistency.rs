//! The §IV-B2 verification loop on real experiments: the independently
//! recorded event list and packet captures of any engine-produced package
//! must be mutually consistent.

use excovery::analysis::verify::verify_all;
use excovery::desc::ExperimentDescription;
use excovery::engine::scenarios::{loss_sweep, multi_sm};
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::netsim::topology::Topology;

#[test]
fn paper_experiment_package_is_self_consistent() {
    let desc = ExperimentDescription::paper_two_party_sd(2);
    let mut master = ExperiMaster::new(desc, EngineConfig::grid_default()).unwrap();
    let outcome = master.execute().unwrap();
    let findings = verify_all(&outcome.database).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn three_party_package_is_self_consistent() {
    let desc = multi_sm(2, "three-party", true, 2, 13);
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = Topology::grid(3, 2);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    let findings = verify_all(&outcome.database).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lossy_experiment_stays_consistent() {
    // Heavy loss changes what is *captured*, but never the consistency of
    // what was captured: events still only follow real receptions.
    let desc = loss_sweep(&[0.5], 4, 14);
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = Topology::chain(2);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    let findings = verify_all(&outcome.database).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
}
