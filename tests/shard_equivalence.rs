//! Shard-count invariance — the contract of the spatially sharded
//! executor (`excovery_netsim::shard`): a run's externally observable
//! outcome is a pure function of topology, configuration and seed, and
//! NEVER of how many event queues executed it.
//!
//! Three workload families × three seeds × shard counts {1, 2, 4, 8}:
//!
//! * `unicast` — the bench reference chain, pure netsim,
//! * `flood` — mesh-wide multicast on a 5×5 grid, pure netsim,
//! * `cs1` — the case-study-1 loss preset through the full engine stack
//!   (description → master → NodeManager → SD agent → simulator →
//!   packaging), compared by `ExperimentOutcome::digest()`.
//!
//! The obs-parity test additionally pins that enabling the observability
//! layer does not perturb a sharded run (publishing is batch, outside the
//! hot path).

use excovery::desc::ExperimentDescription;
use excovery::engine::scenarios::loss_sweep;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::netsim::sim::{Simulator, SimulatorConfig};
use excovery::netsim::topology::Topology;
use excovery::netsim::{Agent, Destination, NodeId, Payload};

const SEEDS: [u64; 3] = [1, 7, 1914];
const SHARDS: [usize; 4] = [1, 2, 4, 8];

struct Sink;

impl Agent for Sink {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn unicast_digest(seed: u64, shards: usize) -> u64 {
    let cfg = SimulatorConfig::perfect_clocks(seed).with_shards(shards);
    let mut sim = Simulator::new(Topology::chain(5), cfg);
    sim.install_agent(NodeId(4), 9, Box::new(Sink));
    for _ in 0..200u64 {
        sim.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(4)),
            Payload::from("x"),
        );
    }
    sim.run_until_idle(1_000_000);
    sim.state_digest()
}

fn flood_digest(seed: u64, shards: usize) -> u64 {
    let cfg = SimulatorConfig::perfect_clocks(seed).with_shards(shards);
    let mut sim = Simulator::new(Topology::grid(5, 5), cfg);
    for n in 1..25u16 {
        sim.install_agent(NodeId(n), 9, Box::new(Sink));
    }
    for _ in 0..100u64 {
        sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
    }
    sim.run_until_idle(1_000_000);
    sim.state_digest()
}

fn cs1_outcome_digest(seed: u64, shards: usize) -> u64 {
    let desc: ExperimentDescription = loss_sweep(&[0.3], 1, seed);
    let mut cfg = EngineConfig::lossy_mesh();
    cfg.sim.shards = shards;
    cfg.max_runs = Some(1);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    master.execute().unwrap().digest()
}

fn assert_invariant(name: &str, digest_of: impl Fn(u64, usize) -> u64) {
    for seed in SEEDS {
        let reference = digest_of(seed, SHARDS[0]);
        for shards in &SHARDS[1..] {
            let got = digest_of(seed, *shards);
            assert_eq!(
                got, reference,
                "{name}: seed {seed}, {shards} shards drifted from serial \
                 ({got:#018x} != {reference:#018x})"
            );
        }
    }
}

#[test]
fn unicast_is_shard_count_invariant() {
    assert_invariant("unicast", unicast_digest);
}

#[test]
fn flood_is_shard_count_invariant() {
    assert_invariant("flood", flood_digest);
}

#[test]
fn cs1_preset_is_shard_count_invariant_through_the_full_stack() {
    assert_invariant("cs1", cs1_outcome_digest);
}

#[test]
fn sharded_run_is_identical_with_observability_enabled() {
    // Digest with obs off, then the identical sharded workload with the
    // obs layer on (including the per-shard metric publication) — the
    // simulation outcome must not move by a bit. The global toggle is
    // safe under parallel tests precisely because of this invariant.
    let plain: Vec<u64> = SEEDS.iter().map(|s| flood_digest(*s, 4)).collect();
    excovery::obs::ObsConfig::on().install();
    let observed: Vec<u64> = SEEDS
        .iter()
        .map(|s| {
            let cfg = SimulatorConfig::perfect_clocks(*s).with_shards(4);
            let mut sim = Simulator::new(Topology::grid(5, 5), cfg);
            for n in 1..25u16 {
                sim.install_agent(NodeId(n), 9, Box::new(Sink));
            }
            for _ in 0..100u64 {
                sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
            }
            sim.run_until_idle(1_000_000);
            sim.publish_obs();
            sim.state_digest()
        })
        .collect();
    excovery::obs::ObsConfig::off().install();
    assert_eq!(plain, observed, "obs layer must not perturb sharded runs");
}
