//! Reproduces **Table I**: tables and attributes of the storage concept.
//!
//! The stored level-3 package of any executed experiment must carry
//! exactly the paper's schema.

use excovery::desc::ExperimentDescription;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::store::schema::{attributes, render_table1, verify_schema, TABLE_NAMES};

/// The literal content of the paper's Table I.
const PAPER_TABLE1: &[(&str, &[&str])] = &[
    (
        "ExperimentInfo",
        &["ExpXML", "EEVersion", "Name", "Comment"],
    ),
    ("Logs", &["NodeID", "Log"]),
    ("EEFiles", &["ID", "File"]),
    (
        "ExperimentMeasurements",
        &["ID", "NodeID", "Name", "Content"],
    ),
    ("RunInfos", &["RunID", "NodeID", "StartTime", "TimeDiff"]),
    (
        "ExtraRunMeasurements",
        &["RunID", "NodeID", "Name", "Content"],
    ),
    (
        "Events",
        &["RunID", "NodeID", "CommonTime", "EventType", "Parameter"],
    ),
    (
        "Packets",
        &["RunID", "NodeID", "CommonTime", "SrcNodeID", "Data"],
    ),
];

#[test]
fn schema_matches_paper_table1_literally() {
    assert_eq!(TABLE_NAMES.len(), PAPER_TABLE1.len());
    for (table, attrs) in PAPER_TABLE1 {
        assert_eq!(
            attributes(table).expect(table),
            *attrs,
            "attribute list of {table} deviates from the paper"
        );
    }
}

#[test]
fn executed_experiment_package_verifies_against_table1() {
    let desc = ExperimentDescription::paper_two_party_sd(1);
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(1);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    verify_schema(&outcome.database).unwrap();
    // Every table of Table I exists; the run populated the dynamic ones.
    assert_eq!(outcome.database.table_names().len(), 8);
    assert!(!outcome.database.table("Events").unwrap().is_empty());
    assert!(!outcome.database.table("Packets").unwrap().is_empty());
    assert!(!outcome.database.table("RunInfos").unwrap().is_empty());
    assert!(!outcome.database.table("Logs").unwrap().is_empty());
    assert!(!outcome.database.table("EEFiles").unwrap().is_empty());
    assert_eq!(outcome.database.table("ExperimentInfo").unwrap().len(), 1);
}

#[test]
fn rendered_table_lists_every_row_of_the_paper() {
    let rendered = render_table1();
    for (table, attrs) in PAPER_TABLE1 {
        assert!(rendered.contains(table), "{table} missing");
        assert!(
            rendered.contains(&attrs.join(", ")),
            "attributes of {table} missing"
        );
    }
}
