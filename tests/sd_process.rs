//! Reproduces **Figs. 9, 10 and 11** — the abstract SD processes and the
//! one-shot discovery they produce, executed through the full stack
//! (description → master → XML-RPC → NodeManager → SD agent → simulator →
//! storage).

use excovery::analysis::runs::RunView;
use excovery::analysis::timeline::Timeline;
use excovery::desc::ExperimentDescription;
use excovery::engine::{EngineConfig, ExperiMaster};
use excovery::store::records::EventRow;
use std::collections::BTreeMap;

fn one_run() -> excovery::engine::ExperimentOutcome {
    let desc = ExperimentDescription::paper_two_party_sd(1);
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(1);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    master.execute().unwrap()
}

#[test]
fn sm_role_event_order_follows_fig9() {
    let outcome = one_run();
    let events = EventRow::read_run(&outcome.database, 0).unwrap();
    let sm: Vec<&str> = events
        .iter()
        .filter(|e| e.node_id == "t9-157")
        .map(|e| e.event_type.as_str())
        .collect();
    // init → start publish → (wait done) → stop publish → exit.
    let idx = |name: &str| {
        sm.iter()
            .position(|e| *e == name)
            .unwrap_or_else(|| panic!("{name} missing from {sm:?}"))
    };
    assert!(idx("sd_init_done") < idx("sd_start_publish"));
    assert!(idx("sd_start_publish") < idx("sd_stop_publish"));
    assert!(idx("sd_stop_publish") <= idx("sd_exit_done"));
}

#[test]
fn su_role_event_order_follows_fig10() {
    let outcome = one_run();
    let events = EventRow::read_run(&outcome.database, 0).unwrap();
    let su: Vec<&str> = events
        .iter()
        .filter(|e| e.node_id == "t9-105")
        .map(|e| e.event_type.as_str())
        .collect();
    let idx = |name: &str| {
        su.iter()
            .position(|e| *e == name)
            .unwrap_or_else(|| panic!("{name} missing from {su:?}"))
    };
    assert!(idx("sd_init_done") < idx("sd_start_search"));
    assert!(idx("sd_start_search") < idx("sd_service_add"));
    assert!(idx("sd_service_add") < idx("done"));
    assert!(idx("done") < idx("sd_stop_search"));
    assert!(idx("sd_stop_search") < idx("sd_exit_done"));
}

#[test]
fn su_waits_for_publisher_and_environment() {
    // Fig. 10: the SU's sd_init happens only after the SM's
    // sd_start_publish AND the environment's ready_to_init.
    // Causal order lives in the recording order; common-time order can
    // swap cross-node events lying closer together than the sync-error
    // residual left by time conditioning.
    let outcome = one_run();
    let events = EventRow::read_run_recorded(&outcome.database, 0).unwrap();
    let su_init_seq = events
        .iter()
        .position(|e| e.node_id == "t9-105" && e.event_type == "sd_init_done")
        .expect("SU initialized");
    let publish_seq = events
        .iter()
        .position(|e| e.node_id == "t9-157" && e.event_type == "sd_start_publish")
        .expect("SM published");
    let ready_seq = events
        .iter()
        .position(|e| e.event_type == "ready_to_init")
        .expect("environment released");
    assert!(publish_seq < su_init_seq);
    assert!(ready_seq < su_init_seq);
}

#[test]
fn discovery_identifies_the_publishing_sm() {
    let outcome = one_run();
    let events = EventRow::read_run(&outcome.database, 0).unwrap();
    let add = events
        .iter()
        .find(|e| e.event_type == "sd_service_add")
        .unwrap();
    let params = EventRow::decode_params(&add.parameter);
    assert!(params.iter().any(|(k, v)| k == "service" && v == "t9-157"));
    assert!(params.iter().any(|(k, _)| k == "stype"));
}

#[test]
fn fig11_timeline_reconstructs_t_r() {
    let outcome = one_run();
    let events = EventRow::read_run(&outcome.database, 0).unwrap();
    let actors = BTreeMap::from([
        ("t9-157".to_string(), "SM1".to_string()),
        ("t9-105".to_string(), "SU1".to_string()),
    ]);
    let timeline = Timeline::from_events(&events, &actors);
    let t_r = timeline.t_r_ns().expect("t_R measurable");
    assert!(t_r > 0, "t_R must be positive");
    assert!(t_r < 30_000_000_000, "discovered within the 30 s deadline");
    // Same value through the episode extraction path.
    let episodes = RunView::load(&outcome.database, 0).unwrap().episodes();
    assert_eq!(episodes[0].first_t_r_ns(), Some(t_r));
    // Both renderings carry the two actor lanes.
    let ascii = timeline.render_ascii(80);
    assert!(ascii.contains("SM1") && ascii.contains("SU1"));
    let svg = timeline.render_svg(800);
    assert!(svg.contains("<circle"));
}

#[test]
fn deadline_fires_when_no_service_exists() {
    // Remove the SM's publish action: the SU must time out after its 30 s
    // deadline, flag done anyway (Fig. 10 semantics) and finish the run.
    let mut desc = ExperimentDescription::paper_two_party_sd(1);
    let sm = desc
        .node_processes
        .iter_mut()
        .find(|p| p.actor_id == "actor0")
        .unwrap();
    sm.actions
        .retain(|a| a.name() != "sd_start_publish" && a.name() != "sd_stop_publish");
    // The SU's first wait (for sd_start_publish) must not block forever.
    let su = desc
        .node_processes
        .iter_mut()
        .find(|p| p.actor_id == "actor1")
        .unwrap();
    su.actions.remove(0);
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(1);
    cfg.run_timeout = excovery::netsim::SimDuration::from_secs(60);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    assert!(outcome.runs[0].completed, "{:?}", outcome.runs[0].failures);
    let events = EventRow::read_run(&outcome.database, 0).unwrap();
    let names: Vec<&str> = events.iter().map(|e| e.event_type.as_str()).collect();
    assert!(!names.contains(&"sd_service_add"));
    assert!(names.contains(&"done"), "deadline produces done: {names:?}");
    // The run took at least the 30 s deadline.
    assert!(outcome.runs[0].duration >= excovery::netsim::SimDuration::from_secs(30));
}
