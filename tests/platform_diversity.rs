//! Platform diversity — "it generally strengthens the external validity of
//! an experiment if it is run in a diversity of platforms" (paper §II-C1).
//!
//! The same abstract description executes unchanged on three platform
//! presets; the measured responsiveness orders the platforms as physics
//! would: wired LAN ≥ default mesh ≥ lossy mesh.

use excovery::analysis::runs::RunView;
use excovery::engine::scenarios::hop_distance;
use excovery::engine::{EngineConfig, ExperiMaster};

fn short_deadline_r(cfg: EngineConfig) -> f64 {
    let desc = hop_distance(15, 99);
    let mut cfg = cfg;
    cfg.topology = excovery::engine::scenarios::chain_between_actors(3);
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    let outcome = master.execute().unwrap();
    let episodes = RunView::all_episodes(&outcome.database).unwrap();
    let hits = episodes
        .iter()
        .filter(|e| e.discovered_within(1, 200_000_000)) // 200 ms
        .count();
    hits as f64 / episodes.len() as f64
}

#[test]
fn same_description_runs_on_all_platform_presets() {
    let wired = short_deadline_r(EngineConfig::wired_lan());
    let mesh = short_deadline_r(EngineConfig::grid_default());
    let lossy = short_deadline_r(EngineConfig::lossy_mesh());
    assert!(
        wired >= mesh && mesh >= lossy,
        "expected wired ({wired}) >= mesh ({mesh}) >= lossy ({lossy})"
    );
    assert!(wired > 0.9, "wired LAN discovers nearly always: {wired}");
    assert!(
        lossy < 1.0,
        "lossy mesh must show failures at 200 ms: {lossy}"
    );
}

#[test]
fn wired_lan_clocks_are_tighter() {
    use excovery::store::records::RunInfoRow;
    fn max_offset(cfg: EngineConfig) -> i64 {
        let desc = hop_distance(2, 7);
        let mut cfg = cfg;
        cfg.topology = excovery::engine::scenarios::chain_between_actors(1);
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let outcome = master.execute().unwrap();
        RunInfoRow::read_all(&outcome.database)
            .unwrap()
            .iter()
            .map(|r| r.time_diff_ns.abs())
            .max()
            .unwrap_or(0)
    }
    let wired = max_offset(EngineConfig::wired_lan());
    let mesh = max_offset(EngineConfig::grid_default());
    assert!(wired < mesh, "wired {wired} ns vs mesh {mesh} ns");
    assert!(wired <= 600_000, "wired offsets stay sub-ms: {wired}");
}
