//! `excovery` — command-line front end to the experimentation framework.
//!
//! Drives the complete paper workflow from the shell: validate and inspect
//! XML experiment descriptions, expand treatment plans, execute experiments
//! on a simulated mesh platform, and query the stored result packages.
//!
//! ```text
//! excovery validate <desc.xml>
//! excovery plan <desc.xml> [--limit N]
//! excovery outline <desc.xml>
//! excovery dot <desc.xml>
//! excovery run <desc.xml> [--topology grid:WxH | chain:N] [--max-runs N]
//!              [--out results.expdb] [--l2 DIR] [--resume] [--keep-l2]
//!              [--transport memory|tcp] [--dispatcher threaded|reactor]
//!              [--fanout N]
//! excovery inspect <results.expdb>
//! excovery events <results.expdb> --run N
//! excovery timeline <results.expdb> --run N [--svg out.svg]
//! excovery responsiveness <results.expdb> [--k N]
//! ```

use excovery::analysis::responsiveness::{format_curve, responsiveness_curve};
use excovery::analysis::timeline::Timeline;
use excovery::desc::xmlio::from_xml;
use excovery::engine::{DispatcherKind, TransportKind};
use excovery::netsim::topology::Topology;
use excovery::prelude::*;
use excovery::store::records::{EventRow, ExperimentInfo};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "validate" => cmd_validate(rest),
        "plan" => cmd_plan(rest),
        "outline" => cmd_outline(rest),
        "dot" => cmd_dot(rest),
        "run" => cmd_run(rest),
        "inspect" => cmd_inspect(rest),
        "events" => cmd_events(rest),
        "timeline" => cmd_timeline(rest),
        "responsiveness" => cmd_responsiveness(rest),
        "report" => cmd_report(rest),
        "repo" => cmd_repo(rest),
        "schema" => {
            print!("{}", excovery::desc::schema_doc::schema_text());
            Ok(())
        }
        "model" => cmd_model(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "results" => cmd_results(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'excovery help')")),
    }
}

fn print_usage() {
    println!(
        "excovery — experimentation framework for distributed processes\n\
         \n\
         usage:\n\
         \x20 excovery validate <desc.xml>\n\
         \x20 excovery plan <desc.xml> [--limit N]\n\
         \x20 excovery outline <desc.xml>\n\
         \x20 excovery dot <desc.xml>\n\
         \x20 excovery run <desc.xml> [--topology grid:WxH|chain:N] [--max-runs N]\n\
         \x20          [--out results.expdb] [--l2 DIR] [--resume] [--keep-l2]\n\
         \x20          [--transport memory|tcp] [--dispatcher threaded|reactor]\n\
         \x20          [--fanout N]           # sub-master relays of N nodes\n\
         \x20 excovery inspect <results.expdb>\n\
         \x20 excovery events <results.expdb> --run N\n\
         \x20 excovery timeline <results.expdb> --run N [--svg out.svg]\n\
         \x20 excovery responsiveness <results.expdb> [--k N]\n\
         \x20 excovery report <results.expdb> [--k N] [--out report.md]\n\
         \x20 excovery repo <dir> list\n\
         \x20 excovery repo <dir> add <id> <results.expdb>\n\
         \x20 excovery repo <dir> compare\n\
         \x20 excovery schema                      # print the description XSD\n\
         \x20 excovery model --hops H --loss P     # analytic responsiveness\n\
         \x20 excovery serve <root> [--addr H:P] [--workers N] [--slice-runs N]\n\
         \x20          [--once]                    # drain the queue, then exit\n\
         \x20 excovery submit <root|addr> <desc.xml> --tenant T [--preset P] [--key K]\n\
         \x20 excovery status <root|addr> [--job N]\n\
         \x20 excovery results <root|addr> --job N [--out pkg.expdb] [--tables]\n\
         \x20          [--table T [--group-by C,..] [--count] [--sort-by C]]"
    );
}

// ---- argument helpers ------------------------------------------------------

fn positional<'a>(args: &'a [String], what: &str) -> Result<&'a str, String> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_description(path: &str) -> Result<ExperimentDescription, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    from_xml(&text).map_err(|e| e.to_string())
}

fn load_database(path: &str) -> Result<Database, String> {
    Database::load(std::path::Path::new(path)).map_err(|e| e.to_string())
}

fn parse_topology(spec: &str) -> Result<Topology, String> {
    if let Some(dims) = spec.strip_prefix("grid:") {
        let (w, h) = dims
            .split_once('x')
            .ok_or_else(|| format!("grid spec '{dims}' is not WxH"))?;
        let w: usize = w.parse().map_err(|_| format!("bad grid width '{w}'"))?;
        let h: usize = h.parse().map_err(|_| format!("bad grid height '{h}'"))?;
        Ok(Topology::grid(w, h))
    } else if let Some(n) = spec.strip_prefix("chain:") {
        let n: usize = n.parse().map_err(|_| format!("bad chain length '{n}'"))?;
        Ok(Topology::chain(n))
    } else {
        Err(format!(
            "unknown topology '{spec}' (use grid:WxH or chain:N)"
        ))
    }
}

// ---- subcommands ------------------------------------------------------------

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let desc = load_description(positional(args, "description path")?)?;
    let findings = excovery::desc::validate::validate(&desc);
    let fatal = findings.iter().filter(|f| f.fatal).count();
    for f in &findings {
        println!(
            "{} {}",
            if f.fatal { "FATAL  " } else { "warning" },
            f.message
        );
    }
    if fatal > 0 {
        return Err(format!("{fatal} fatal findings"));
    }
    println!(
        "OK: '{}' — {} factors, {} node processes, {} env processes, plan of {} runs",
        desc.name,
        desc.factors.factors.len(),
        desc.node_processes.len(),
        desc.env_processes.len(),
        desc.plan().len()
    );
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let desc = load_description(positional(args, "description path")?)?;
    let limit: usize = flag_value(args, "--limit")
        .map(|v| v.parse().unwrap_or(20))
        .unwrap_or(20);
    let plan = desc.plan();
    println!(
        "{} runs, {} treatments, design {:?}, seed {}",
        plan.len(),
        plan.distinct_treatments().len(),
        plan.design,
        desc.seed
    );
    for run in plan.runs.iter().take(limit) {
        println!(
            "  run {:>5}  rep {:>4}  {}",
            run.run_id,
            run.replicate,
            run.treatment.key()
        );
    }
    if plan.len() > limit {
        println!("  … {} more (raise with --limit)", plan.len() - limit);
    }
    Ok(())
}

fn cmd_outline(args: &[String]) -> Result<(), String> {
    let desc = load_description(positional(args, "description path")?)?;
    print!("{}", excovery::desc::visualize::to_outline(&desc));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let desc = load_description(positional(args, "description path")?)?;
    print!("{}", excovery::desc::visualize::to_dot(&desc));
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let desc = load_description(positional(args, "description path")?)?;
    let mut cfg = EngineConfig::grid_default();
    if let Some(spec) = flag_value(args, "--topology") {
        cfg.topology = parse_topology(spec)?;
    }
    if let Some(n) = flag_value(args, "--max-runs") {
        cfg.max_runs = Some(n.parse().map_err(|_| format!("bad --max-runs '{n}'"))?);
    }
    if let Some(dir) = flag_value(args, "--l2") {
        cfg.l2_root = Some(PathBuf::from(dir));
    }
    if let Some(t) = flag_value(args, "--transport") {
        cfg.transport = TransportKind::parse(t)
            .ok_or_else(|| format!("unknown transport '{t}' (use memory or tcp)"))?;
    }
    if let Some(d) = flag_value(args, "--dispatcher") {
        cfg.dispatcher = DispatcherKind::parse(d)
            .ok_or_else(|| format!("unknown dispatcher '{d}' (use threaded or reactor)"))?;
    }
    if let Some(n) = flag_value(args, "--fanout") {
        cfg.fanout_tree = Some(n.parse().map_err(|_| format!("bad --fanout '{n}'"))?);
    }
    cfg.resume = flag_present(args, "--resume");
    cfg.keep_l2 = flag_present(args, "--keep-l2");
    let out = flag_value(args, "--out")
        .unwrap_or("results.expdb")
        .to_string();

    let name = desc.name.clone();
    let mut master = ExperiMaster::new(desc, cfg)?;
    let outcome = master.execute()?;
    let completed = outcome.runs.iter().filter(|r| r.completed).count();
    println!(
        "experiment '{name}': {} runs executed, {completed} completed",
        outcome.runs.len()
    );
    for r in outcome.runs.iter().filter(|r| !r.completed) {
        println!("  run {} failed: {:?}", r.run_id, r.failures);
    }
    outcome
        .database
        .save(std::path::Path::new(&out))
        .map_err(|e| e.to_string())?;
    println!("level-3 package written to {out}");
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let db = load_database(positional(args, "database path")?)?;
    let info = ExperimentInfo::read(&db).map_err(|e| e.to_string())?;
    println!("experiment: {}", info.name);
    println!("version:    {}", info.ee_version);
    if !info.comment.is_empty() {
        println!("comment:    {}", info.comment);
    }
    println!("tables:");
    for name in db.table_names() {
        println!("  {name:<24} {:>6} rows", db.table(name).unwrap().len());
    }
    let runs = RunView::run_ids(&db).map_err(|e| e.to_string())?;
    println!("runs: {}", runs.len());
    Ok(())
}

fn cmd_events(args: &[String]) -> Result<(), String> {
    let db = load_database(positional(args, "database path")?)?;
    let run: u64 = flag_value(args, "--run")
        .ok_or("missing --run N")?
        .parse()
        .map_err(|_| "bad --run value")?;
    let events = EventRow::read_run(&db, run).map_err(|e| e.to_string())?;
    if events.is_empty() {
        return Err(format!("run {run} has no events"));
    }
    for e in events {
        println!(
            "{:>15} ns  {:<10} {:<22} {}",
            e.common_time_ns, e.node_id, e.event_type, e.parameter
        );
    }
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<(), String> {
    let db = load_database(positional(args, "database path")?)?;
    let run: u64 = flag_value(args, "--run")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "bad --run")?;
    let events = EventRow::read_run(&db, run).map_err(|e| e.to_string())?;
    // Lanes: every node that produced events except the master.
    let actors: BTreeMap<String, String> = events
        .iter()
        .filter(|e| e.node_id != "master")
        .map(|e| (e.node_id.clone(), e.node_id.clone()))
        .collect();
    let timeline = Timeline::from_events(&events, &actors);
    print!("{}", timeline.render_ascii(100));
    if let Some(svg_path) = flag_value(args, "--svg") {
        std::fs::write(svg_path, timeline.render_svg(900))
            .map_err(|e| format!("write {svg_path}: {e}"))?;
        println!("SVG written to {svg_path}");
    }
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    use excovery::analysis::model::ResponsivenessModel;
    let hops: u32 = flag_value(args, "--hops")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --hops")?;
    let loss: f64 = flag_value(args, "--loss")
        .unwrap_or("0.1")
        .parse()
        .map_err(|_| "bad --loss")?;
    let model = ResponsivenessModel::new(hops, loss);
    println!("analytic responsiveness model: {hops} hops, per-link loss {loss}\n");
    println!("attempts:");
    for a in model.attempts() {
        println!(
            "  {:>8.3} s  {:<9} p = {:.4}",
            a.completes_at_s, a.kind, a.success_probability
        );
    }
    println!("\npredicted R(d):");
    for d in [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0] {
        println!("  {:>6} s  {:.4}", d, model.predict(d));
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let db = load_database(positional(args, "database path")?)?;
    let k: usize = flag_value(args, "--k")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --k")?;
    let opts = ReportOptions::builder().k(k).build();
    let report = excovery::analysis::report::render(&db, &opts).map_err(|e| e.to_string())?;
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("write {path}: {e}"))?;
            println!("report written to {path}");
        }
        None => print!("{report}"),
    }
    Ok(())
}

fn cmd_repo(args: &[String]) -> Result<(), String> {
    let dir = positional(args, "repository directory")?;
    let repo = Repository::open(dir).map_err(|e| e.to_string())?;
    let sub = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .map(String::as_str)
        .unwrap_or("list");
    match sub {
        "list" => {
            for e in repo.index().map_err(|e| e.to_string())? {
                println!("{:<24} {:<20} {}", e.id, e.name, e.comment);
            }
            Ok(())
        }
        "add" => {
            let positionals: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
            let id = positionals.get(2).ok_or("missing experiment id")?;
            let db_path = positionals.get(3).ok_or("missing database path")?;
            let db = load_database(db_path)?;
            repo.store(id, &db).map_err(|e| e.to_string())?;
            println!("stored '{id}' in {dir}");
            Ok(())
        }
        "compare" => {
            // Cross-experiment comparison: responsiveness of each package.
            println!(
                "{:<24} {:>8} {:>8} {:>9} {:>9}",
                "experiment", "runs", "episodes", "R(1s)", "R(30s)"
            );
            repo.map_experiments(|id, db| {
                let episodes = RunView::all_episodes(db)
                    .map_err(|e| excovery::store::StoreError(e.to_string()))?;
                let runs = RunView::run_ids(db)
                    .map_err(|e| excovery::store::StoreError(e.to_string()))?
                    .len();
                let curve = responsiveness_curve(&episodes, 1, &[1.0, 30.0]);
                println!(
                    "{id:<24} {runs:>8} {:>8} {:>9.4} {:>9.4}",
                    episodes.len(),
                    curve[0].probability,
                    curve[1].probability
                );
                Ok(())
            })
            .map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown repo subcommand '{other}'")),
    }
}

fn cmd_responsiveness(args: &[String]) -> Result<(), String> {
    let db = load_database(positional(args, "database path")?)?;
    let k: usize = flag_value(args, "--k")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --k")?;
    let deadlines = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0];
    let episodes = RunView::all_episodes(&db).map_err(|e| e.to_string())?;
    if episodes.is_empty() {
        return Err("no discovery episodes in this database".into());
    }
    let curve = responsiveness_curve(&episodes, k, &deadlines);
    print!(
        "{}",
        format_curve(&format!("k={k}, {} episodes", episodes.len()), &curve)
    );
    // Per-treatment breakdown when more than one treatment was run
    // (reconstructed from the stored description, no side channel needed).
    if !flag_present(args, "--pooled") {
        if let Ok(grouped) = excovery::analysis::treatments::episodes_by_treatment(&db) {
            if grouped.len() > 1 {
                let mut keys: Vec<&String> = grouped.keys().collect();
                keys.sort();
                println!("\nper treatment:");
                for key in keys {
                    let curve = responsiveness_curve(&grouped[key], k, &deadlines);
                    print!("{}", format_curve(key, &curve));
                }
            }
        }
    }
    Ok(())
}

// ---- server verbs ----------------------------------------------------------

/// `<root|addr>`: a `host:port` connects directly, anything else is a
/// repository root whose daemon published its address in `root/endpoint`.
fn connect_target(target: &str) -> Result<ServerClient, String> {
    let looks_like_addr = target
        .rsplit_once(':')
        .is_some_and(|(_, port)| !port.is_empty() && port.bytes().all(|b| b.is_ascii_digit()));
    let client = if looks_like_addr {
        ServerClient::connect(target)
    } else {
        ServerClient::connect_root(std::path::Path::new(target))
    };
    client.map_err(|e| format!("connect {target}: {e}"))
}

fn print_status(s: &excovery::rpc::JobStatus) {
    let digest = s
        .digest
        .map(|d| format!("  digest {d:#018x}"))
        .unwrap_or_default();
    let error = s
        .error
        .as_deref()
        .map(|e| format!("  error: {e}"))
        .unwrap_or_default();
    println!(
        "job {:>4}  {:<10} {:<12} {:>4}/{:<4} {:<12} {}{digest}{error}",
        s.job_id, s.tenant, s.state, s.runs_completed, s.runs_total, s.preset, s.name
    );
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let root = positional(args, "repository root")?;
    let mut cfg = excovery::server::ServerConfig::default();
    if let Some(addr) = flag_value(args, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(w) = flag_value(args, "--workers") {
        cfg.scheduler.workers = w.parse().map_err(|_| format!("bad --workers '{w}'"))?;
    }
    if let Some(s) = flag_value(args, "--slice-runs") {
        cfg.scheduler.slice_runs = s.parse().map_err(|_| format!("bad --slice-runs '{s}'"))?;
    }
    let mut server =
        excovery::server::ExperimentServer::start(root, cfg).map_err(|e| e.to_string())?;
    eprintln!("serving {} at {}", root, server.addr());
    if flag_present(args, "--once") {
        loop {
            let report = server.tick().map_err(|e| e.to_string())?;
            if report.is_idle() {
                return Ok(());
            }
        }
    }
    server.run().map_err(|e| e.to_string())
}

/// Positional arguments: everything that is neither a flag nor the value
/// of a value-taking flag.
fn positionals<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = value_flags.contains(&a.as_str());
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let pos = positionals(args, &["--tenant", "--preset", "--key"]);
    let target = *pos.first().ok_or("missing server root or address")?;
    let desc_path = *pos.get(1).ok_or("missing description path")?;
    let tenant = flag_value(args, "--tenant").unwrap_or("default");
    let preset = flag_value(args, "--preset").unwrap_or("grid_default");
    let xml = std::fs::read_to_string(desc_path).map_err(|e| format!("read {desc_path}: {e}"))?;
    // Default submit key: content hash of (tenant, preset, description),
    // so an accidental re-submission dedups to the original job.
    let key = match flag_value(args, "--key") {
        Some(k) => k.to_string(),
        None => {
            let mut h = 0xcbf29ce484222325u64;
            for b in tenant
                .bytes()
                .chain(preset.bytes())
                .chain([0u8])
                .chain(xml.bytes())
            {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            format!("auto-{h:016x}")
        }
    };
    let client = connect_target(target)?;
    let req = excovery::rpc::SubmitRequest {
        tenant: tenant.to_string(),
        preset: preset.to_string(),
        description_xml: xml,
        submit_key: key,
    };
    let (job_id, created) = client.submit(&req).map_err(|e| e.to_string())?;
    if created {
        println!("job {job_id} submitted");
    } else {
        println!("job {job_id} (existing submission with this key)");
    }
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let target = positional(args, "server root or address")?;
    let client = connect_target(target)?;
    match flag_value(args, "--job") {
        Some(id) => {
            let id = id.parse().map_err(|_| format!("bad --job '{id}'"))?;
            print_status(&client.status(id).map_err(|e| e.to_string())?);
        }
        None => {
            for s in client.list().map_err(|e| e.to_string())? {
                print_status(&s);
            }
        }
    }
    Ok(())
}

fn cmd_results(args: &[String]) -> Result<(), String> {
    let target = positional(args, "server root or address")?;
    let client = connect_target(target)?;
    let id: u64 = flag_value(args, "--job")
        .ok_or("missing --job")?
        .parse()
        .map_err(|_| "bad --job")?;
    if flag_present(args, "--tables") {
        for t in client.tables(id).map_err(|e| e.to_string())? {
            println!("{t}");
        }
        return Ok(());
    }
    if let Some(table) = flag_value(args, "--table") {
        let mut plan = excovery::rpc::PlanSpec {
            table: table.to_string(),
            ..Default::default()
        };
        if let Some(group) = flag_value(args, "--group-by") {
            plan.group_by = group.split(',').map(str::to_string).collect();
        }
        if flag_present(args, "--count") {
            plan.aggs = vec![excovery::rpc::AggSpec {
                op: excovery::rpc::AggOp::Count,
                column: None,
                name: None,
                q: None,
            }];
        }
        if let Some(sort) = flag_value(args, "--sort-by") {
            plan.sort_by = Some(sort.to_string());
        }
        let frame = client.query(id, &plan).map_err(|e| e.to_string())?;
        println!("{}", frame.columns.join("\t"));
        for row in &frame.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| match c {
                    excovery::rpc::CellValue::Null => "null".to_string(),
                    excovery::rpc::CellValue::I64(v) => v.to_string(),
                    excovery::rpc::CellValue::F64(v) => v.to_string(),
                    excovery::rpc::CellValue::Str(s) => s.clone(),
                    excovery::rpc::CellValue::Bytes(b) => format!("<{} bytes>", b.len()),
                })
                .collect();
            println!("{}", cells.join("\t"));
        }
        return Ok(());
    }
    let results = client.results(id).map_err(|e| e.to_string())?;
    print_status(&results.status);
    if let Some(out) = flag_value(args, "--out") {
        std::fs::write(out, &results.package).map_err(|e| format!("write {out}: {e}"))?;
        println!("package: {out} ({} bytes)", results.package.len());
    }
    Ok(())
}
