//! # excovery
//!
//! Facade crate re-exporting the full ExCovery reproduction workspace.
//!
//! ExCovery (Dittrich, Wanja, Malek — IPDPSW 2014) is an experimentation
//! environment for dependability analysis of distributed processes. This
//! workspace reimplements it in Rust, together with every substrate the
//! paper depends on:
//!
//! * [`xml`] — the XML notation used for experiment descriptions,
//! * [`desc`] — the abstract experiment description and treatment planning,
//! * [`netsim`] — a deterministic discrete-event network simulator standing
//!   in for the DES wireless testbed,
//! * [`rpc`] — XML-RPC between the ExperiMaster and NodeManagers,
//! * [`sd`] — service-discovery protocols (two-party, three-party, hybrid),
//! * [`engine`] — the execution engine (master, nodes, fault injection,
//!   measurement and recording),
//! * [`store`] — the four-level measurement storage with the paper's
//!   Table I relational schema,
//! * [`query`] — the columnar, parallel query layer over stored packages
//!   (typed column slabs, predicate pushdown, deterministic group-by),
//! * [`analysis`] — conditioning, metrics (responsiveness, t_R) and
//!   timeline visualization,
//! * [`server`] — the experiment server: level-4 campaign repository,
//!   fair-share scheduler and remote analysis over the rpc protocol
//!   (see DESIGN.md §14),
//! * [`obs`] — the observability subsystem: lock-free metrics,
//!   clock-agnostic spans, Prometheus/JSONL exporters and the framed
//!   scrape endpoint (see DESIGN.md §10).
//!
//! See `examples/quickstart.rs` for an end-to-end experiment, or run one
//! inline:
//!
//! ```
//! use excovery::analysis::runs::RunView;
//! use excovery::desc::ExperimentDescription;
//! use excovery::engine::{EngineConfig, ExperiMaster};
//!
//! let desc = ExperimentDescription::paper_two_party_sd(1);
//! let mut cfg = EngineConfig::grid_default();
//! cfg.max_runs = Some(1);
//! let mut master = ExperiMaster::new(desc, cfg)?;
//! let outcome = master.execute()?;
//! let episodes = RunView::all_episodes(&outcome.database).unwrap();
//! assert_eq!(episodes.len(), 1);
//! # Ok::<(), String>(())
//! ```

pub use excovery_analysis as analysis;
pub use excovery_core as engine;
pub use excovery_desc as desc;
pub use excovery_netsim as netsim;
pub use excovery_obs as obs;
pub use excovery_query as query;
pub use excovery_rpc as rpc;
pub use excovery_sd as sd;
pub use excovery_server as server;
pub use excovery_store as store;
pub use excovery_xml as xml;

/// One-per-concern entry points, for `use excovery::prelude::*`.
///
/// * describe an experiment — [`ExperimentDescription`](prelude::ExperimentDescription),
/// * execute it — [`EngineConfig`](prelude::EngineConfig) (via
///   `EngineConfig::builder()`) and [`ExperiMaster`](prelude::ExperiMaster),
/// * fan replications out — [`CampaignConfig`](prelude::CampaignConfig)
///   (via `CampaignConfig::builder()`),
/// * store and archive packages — [`Database`](prelude::Database) and
///   [`Repository`](prelude::Repository),
/// * query measurements — [`Dataset`](prelude::Dataset) with
///   [`col`](prelude::col)/[`lit`](prelude::lit) predicates and
///   [`Agg`](prelude::Agg) aggregates,
/// * analyze — [`ExperimentDataset`](prelude::ExperimentDataset),
///   [`RunView`](prelude::RunView) and
///   [`ReportOptions`](prelude::ReportOptions) (via
///   `ReportOptions::builder()`).
///
/// The error set of those layers — [`EngineError`](prelude::EngineError),
/// [`StoreError`](prelude::StoreError),
/// [`QueryError`](prelude::QueryError),
/// [`AnalysisError`](prelude::AnalysisError) — rides along, so `?`-heavy
/// harnesses only need this one import.
pub mod prelude {
    pub use excovery_analysis::report::ReportOptions;
    pub use excovery_analysis::{AnalysisError, DiscoveryEpisode, ExperimentDataset, RunView};
    pub use excovery_core::{EngineConfig, EngineError, ExperiMaster, ExperimentOutcome};
    pub use excovery_desc::ExperimentDescription;
    pub use excovery_netsim::CampaignConfig;
    pub use excovery_query::{col, lit, Agg, Dataset, Frame, QueryError};
    pub use excovery_server::{ExperimentServer, ServerClient, ServerConfig, ServerError};
    pub use excovery_store::{Database, Repository, StoreError};
}
