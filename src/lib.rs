//! # excovery
//!
//! Facade crate re-exporting the full ExCovery reproduction workspace.
//!
//! ExCovery (Dittrich, Wanja, Malek — IPDPSW 2014) is an experimentation
//! environment for dependability analysis of distributed processes. This
//! workspace reimplements it in Rust, together with every substrate the
//! paper depends on:
//!
//! * [`xml`] — the XML notation used for experiment descriptions,
//! * [`desc`] — the abstract experiment description and treatment planning,
//! * [`netsim`] — a deterministic discrete-event network simulator standing
//!   in for the DES wireless testbed,
//! * [`rpc`] — XML-RPC between the ExperiMaster and NodeManagers,
//! * [`sd`] — service-discovery protocols (two-party, three-party, hybrid),
//! * [`engine`] — the execution engine (master, nodes, fault injection,
//!   measurement and recording),
//! * [`store`] — the four-level measurement storage with the paper's
//!   Table I relational schema,
//! * [`analysis`] — conditioning, metrics (responsiveness, t_R) and
//!   timeline visualization,
//! * [`obs`] — the observability subsystem: lock-free metrics,
//!   clock-agnostic spans, Prometheus/JSONL exporters and the framed
//!   scrape endpoint (see DESIGN.md §10).
//!
//! See `examples/quickstart.rs` for an end-to-end experiment, or run one
//! inline:
//!
//! ```
//! use excovery::analysis::runs::RunView;
//! use excovery::desc::ExperimentDescription;
//! use excovery::engine::{EngineConfig, ExperiMaster};
//!
//! let desc = ExperimentDescription::paper_two_party_sd(1);
//! let mut cfg = EngineConfig::grid_default();
//! cfg.max_runs = Some(1);
//! let mut master = ExperiMaster::new(desc, cfg)?;
//! let outcome = master.execute()?;
//! let episodes = RunView::all_episodes(&outcome.database).unwrap();
//! assert_eq!(episodes.len(), 1);
//! # Ok::<(), String>(())
//! ```

pub use excovery_analysis as analysis;
pub use excovery_core as engine;
pub use excovery_desc as desc;
pub use excovery_netsim as netsim;
pub use excovery_obs as obs;
pub use excovery_rpc as rpc;
pub use excovery_sd as sd;
pub use excovery_store as store;
pub use excovery_xml as xml;
