//! Fault injection: service-discovery responsiveness under message loss.
//!
//! Uses the CS-1 scenario — a manipulation process (paper §IV-D) injects a
//! message-loss fault on the SM node with a swept probability — and prints
//! the responsiveness per loss level. Expected shape: R falls as loss
//! grows, and the query retransmission backoff pushes successful
//! discoveries of lossy runs towards later deadlines.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use excovery::analysis::responsiveness::{format_curve, responsiveness_by_treatment};
use excovery::engine::scenarios::loss_sweep;
use excovery::netsim::topology::Topology;
use excovery::prelude::*;
use std::collections::HashMap;

fn main() -> Result<(), String> {
    let losses = [0.0, 0.2, 0.4, 0.6];
    let reps = 40;
    let desc = loss_sweep(&losses, reps, 2026);

    let mut cfg = EngineConfig::grid_default();
    // One-hop chain: loss on the SM is not masked by alternative flood paths.
    cfg.topology = Topology::chain(2);
    let mut master = ExperiMaster::new(desc.clone(), cfg)?;
    let outcome = master.execute()?;

    // Map run ids back to their treatment (the engine reports them).
    let by_run: HashMap<u64, String> = outcome
        .runs
        .iter()
        .map(|r| (r.run_id, r.treatment_key.clone()))
        .collect();
    let curves = responsiveness_by_treatment(
        &outcome.database,
        &|run| by_run.get(&run).cloned().unwrap_or_default(),
        1,
        &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0],
    )
    .map_err(|e| e.to_string())?;

    println!("CS-1: responsiveness vs injected message loss ({reps} replications each)\n");
    for (treatment, curve) in curves {
        println!("{}", format_curve(&treatment, &curve));
    }
    Ok(())
}
