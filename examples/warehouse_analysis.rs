//! Level-4 storage and the dimensional warehouse (paper §IV-F future work).
//!
//! Runs the same abstract experiment on two *different platforms* (wired
//! LAN vs lossy wireless mesh — the external-validity diversity of §II-C1),
//! stores both packages in a level-4 repository, builds the star-schema
//! warehouse across them and compares the discovery response times.
//!
//! ```sh
//! cargo run --release --example warehouse_analysis
//! ```

use excovery::engine::scenarios::{chain_between_actors, hop_distance};
use excovery::prelude::*;
use excovery::query::warehouse::mean_response_time_by_experiment;
use excovery::store::warehouse::build_warehouse;
use excovery::store::{Predicate, SqlValue};

fn run_on(cfg: EngineConfig, seed: u64) -> Result<Database, String> {
    let desc = hop_distance(15, seed);
    let mut cfg = cfg;
    cfg.topology = chain_between_actors(3);
    let mut master = ExperiMaster::new(desc, cfg)?;
    Ok(master.execute()?.database)
}

fn main() -> Result<(), String> {
    // 1. Same description, two platforms.
    let wired = run_on(EngineConfig::wired_lan(), 11)?;
    let mesh = run_on(EngineConfig::lossy_mesh(), 11)?;

    // 2. Level 4: both packages into one repository.
    let dir = std::env::temp_dir().join("excovery-warehouse-example");
    std::fs::remove_dir_all(&dir).ok();
    let repo = Repository::open(&dir).map_err(|e| e.to_string())?;
    repo.store("wired-lan", &wired).map_err(|e| e.to_string())?;
    repo.store("lossy-mesh", &mesh).map_err(|e| e.to_string())?;
    println!("repository {} holds:", dir.display());
    for e in repo.index().map_err(|e| e.to_string())? {
        println!("  {} ({})", e.id, e.name);
    }

    // 3. The dimensional warehouse across both experiments.
    let wh = build_warehouse(&[("wired-lan", &wired), ("lossy-mesh", &mesh)])
        .map_err(|e| e.to_string())?;
    println!("\nwarehouse tables:");
    for t in wh.table_names() {
        println!("  {t:<16} {:>5} rows", wh.table(t).unwrap().len());
    }

    // 4. OLAP-style slice: mean t_R per experiment dimension.
    let means = mean_response_time_by_experiment(&wh).map_err(|e| e.to_string())?;
    println!("\nmean response time by platform:");
    let dim = wh.table("DimExperiment").map_err(|e| e.to_string())?;
    for (key, mean) in &means {
        let name = dim
            .select(&Predicate::Eq("ExpKey".into(), SqlValue::Int(*key)), None)
            .map_err(|e| e.to_string())?
            .first()
            .and_then(|r| r[1].as_text().map(str::to_string))
            .unwrap_or_default();
        println!("  {name:<16} {mean:.4} s");
    }

    // 5. Fact-level predicate query as a columnar pipeline: discoveries
    //    slower than 100 ms, with run-pruning pushdown.
    let ds = Dataset::builder()
        .partition_by("RunKey")
        .add_package("warehouse", &wh)
        .map_err(|e| e.to_string())?
        .build();
    let slow = ds
        .scan("FactDiscovery")
        .filter(col("ResponseTimeNs").gt(lit(100_000_000i64)))
        .agg([Agg::count()])
        .collect()
        .map_err(|e| e.to_string())?;
    println!(
        "\ndiscoveries slower than 100 ms across both platforms: {}",
        slow.rows[0][0]
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
