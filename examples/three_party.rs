//! Architectures side by side: two-party, three-party and hybrid discovery
//! (paper §III-B, Fig. 2).
//!
//! Runs the same multi-SM scenario under each architecture and reports
//! responsiveness for "find all SMs" plus the network cost (packets on the
//! medium), showing the centralization trade-off: the SCM adds
//! registration traffic but answers directed queries without flooding.
//!
//! ```sh
//! cargo run --release --example three_party
//! ```

use excovery::analysis::responsiveness::{format_curve, responsiveness_curve};
use excovery::engine::scenarios::multi_sm;
use excovery::netsim::topology::Topology;
use excovery::prelude::*;

fn main() -> Result<(), String> {
    let n_sm = 3;
    let reps = 20;
    println!("architectures with {n_sm} SMs, one SU, {reps} replications each\n");
    for arch in ["two-party", "three-party", "hybrid"] {
        let with_scm = arch != "two-party";
        let desc = multi_sm(n_sm, arch, with_scm, reps, 7);
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = Topology::grid(3, 3);
        let mut master = ExperiMaster::new(desc, cfg)?;
        let outcome = master.execute()?;
        let sim = master.simulator();
        let stats = sim.lock().stats();
        let episodes = RunView::all_episodes(&outcome.database).map_err(|e| e.to_string())?;
        let curve = responsiveness_curve(&episodes, n_sm, &[0.5, 1.0, 2.0, 5.0, 30.0]);
        println!("{}", format_curve(&format!("{arch}, k={n_sm}"), &curve));
        println!(
            "  network cost: {} transmissions, {} deliveries, {} relays\n",
            stats.sent, stats.delivered, stats.forwarded
        );
    }
    Ok(())
}
