//! Quickstart: describe, execute and analyze a small ExCovery experiment.
//!
//! Builds the paper's two-party service-discovery experiment (Figs. 4–10)
//! with a handful of replications, runs it on the simulated mesh platform,
//! and prints the recorded event sequence and the measured responsiveness.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use excovery::analysis::responsiveness::{format_curve, responsiveness_curve};
use excovery::prelude::*;
use excovery::store::records::EventRow;
use excovery::store::schema::verify_schema;

fn main() -> Result<(), String> {
    // 1. The abstract experiment description (paper §IV-C). This is the
    //    complete two-party SD experiment of the paper's listings, scaled
    //    to 5 replications of each of the 6 treatments.
    let desc = ExperimentDescription::paper_two_party_sd(5);
    println!("experiment: {}", desc.name);
    println!("plan size: {} runs\n", desc.plan().len());

    // 2. Instantiate on a platform: a 3×3 grid mesh standing in for the
    //    DES testbed, with loosely synchronized node clocks.
    let mut master = ExperiMaster::new(desc, EngineConfig::grid_default())?;

    // 3. Execute: run lifecycle, measurement, conditioning, storage.
    let outcome = master.execute()?;
    let completed = outcome.runs.iter().filter(|r| r.completed).count();
    println!(
        "executed {} runs ({} completed)",
        outcome.runs.len(),
        completed
    );

    // 4. The result is a single relational package with the paper's
    //    Table I schema.
    verify_schema(&outcome.database).map_err(|e| e.to_string())?;
    println!("level-3 database verified against Table I\n");

    // 5. Inspect the first run's event list (the Fig. 11 sequence).
    let events = EventRow::read_run(&outcome.database, 0).map_err(|e| e.to_string())?;
    println!("run 0 events:");
    for e in &events {
        println!(
            "  {:>12} ns  {:<10} {}",
            e.common_time_ns, e.node_id, e.event_type
        );
    }

    // 6. Extract the headline metric: responsiveness R(deadline).
    let episodes = RunView::all_episodes(&outcome.database).map_err(|e| e.to_string())?;
    let curve = responsiveness_curve(&episodes, 1, &[0.1, 0.25, 0.5, 1.0, 5.0, 30.0]);
    println!(
        "\n{}",
        format_curve("two-party, all treatments pooled", &curve)
    );
    Ok(())
}
