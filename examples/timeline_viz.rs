//! Fig. 11 — visualization of a one-shot discovery process.
//!
//! Executes a single run of the paper's two-party experiment, extracts the
//! per-actor event timeline from the stored database and renders it as
//! ASCII (stdout) and SVG (`target/fig11_timeline.svg`).
//!
//! ```sh
//! cargo run --example timeline_viz
//! ```

use excovery::analysis::timeline::Timeline;
use excovery::prelude::*;
use excovery::store::records::EventRow;
use std::collections::BTreeMap;

fn main() -> Result<(), String> {
    let desc = ExperimentDescription::paper_two_party_sd(1);
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(1);
    let mut master = ExperiMaster::new(desc, cfg)?;
    let outcome = master.execute()?;

    let events = EventRow::read_run(&outcome.database, 0).map_err(|e| e.to_string())?;
    // Label the lanes like the paper's figure: SM1 and SU1.
    let actors = BTreeMap::from([
        ("t9-157".to_string(), "SM1".to_string()),
        ("t9-105".to_string(), "SU1".to_string()),
    ]);
    let timeline = Timeline::from_events(&events, &actors);
    println!("{}", timeline.render_ascii(96));

    let svg = timeline.render_svg(900);
    let path = std::path::Path::new("target/fig11_timeline.svg");
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &svg).map_err(|e| e.to_string())?;
    println!("SVG written to {}", path.display());
    Ok(())
}
