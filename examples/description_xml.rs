//! The abstract experiment description as XML (paper Figs. 4–10).
//!
//! Emits the complete two-party SD experiment description, validates it,
//! parses it back and regenerates its treatment plan — the description
//! workflow of paper §IV-C without executing anything.
//!
//! ```sh
//! cargo run --example description_xml
//! ```

use excovery::desc::validate::validate_strict;
use excovery::desc::xmlio::{from_xml, to_xml};
use excovery::prelude::*;

fn main() -> Result<(), String> {
    let desc = ExperimentDescription::paper_two_party_sd(1000);

    // Emit the full XML document (Figs. 4, 5, 6, 7, 8, 9, 10 combined).
    let xml = to_xml(&desc);
    println!("{xml}");

    // Validate: identifier uniqueness, factor references, platform mapping.
    let findings = validate_strict(&desc).map_err(|e| e.to_string())?;
    println!("-- validation: {} non-fatal findings", findings.len());

    // Round-trip and plan expansion (the Fig. 5 arithmetic: 6 treatments ×
    // 1000 replications).
    let back = from_xml(&xml).map_err(|e| e.to_string())?;
    assert_eq!(back, desc, "round-trip must be lossless");
    let plan = back.plan();
    println!(
        "-- plan: {} runs, {} distinct treatments",
        plan.len(),
        plan.distinct_treatments().len()
    );
    for t in plan.distinct_treatments() {
        println!("   {}", t.key());
    }
    Ok(())
}
