//! The level-3 database schema — the paper's **Table I**.
//!
//! | Table                  | Attributes                                       |
//! |------------------------|--------------------------------------------------|
//! | ExperimentInfo         | ExpXML, EEVersion, Name, Comment                 |
//! | Logs                   | NodeID, Log                                      |
//! | EEFiles                | ID, File                                         |
//! | ExperimentMeasurements | ID, NodeID, Name, Content                        |
//! | RunInfos               | RunID, NodeID, StartTime, TimeDiff               |
//! | ExtraRunMeasurements   | RunID, NodeID, Name, Content                     |
//! | Events                 | RunID, NodeID, CommonTime, EventType, Parameter  |
//! | Packets                | RunID, NodeID, CommonTime, SrcNodeID, Data       |

use crate::engine::{Column, ColumnType, Database, StoreError};

/// Version string stored in `ExperimentInfo.EEVersion`.
pub const EE_VERSION: &str = concat!("excovery-rs ", env!("CARGO_PKG_VERSION"));

/// Names of the eight Table I tables, in the paper's order.
pub const TABLE_NAMES: [&str; 8] = [
    "ExperimentInfo",
    "Logs",
    "EEFiles",
    "ExperimentMeasurements",
    "RunInfos",
    "ExtraRunMeasurements",
    "Events",
    "Packets",
];

/// The attribute list of each table, in the paper's order.
pub fn attributes(table: &str) -> Option<&'static [&'static str]> {
    Some(match table {
        "ExperimentInfo" => &["ExpXML", "EEVersion", "Name", "Comment"],
        "Logs" => &["NodeID", "Log"],
        "EEFiles" => &["ID", "File"],
        "ExperimentMeasurements" => &["ID", "NodeID", "Name", "Content"],
        "RunInfos" => &["RunID", "NodeID", "StartTime", "TimeDiff"],
        "ExtraRunMeasurements" => &["RunID", "NodeID", "Name", "Content"],
        "Events" => &["RunID", "NodeID", "CommonTime", "EventType", "Parameter"],
        "Packets" => &["RunID", "NodeID", "CommonTime", "SrcNodeID", "Data"],
        _ => return None,
    })
}

fn columns(table: &str) -> Vec<Column> {
    use ColumnType::*;
    match table {
        "ExperimentInfo" => vec![
            Column::new("ExpXML", Text),
            Column::new("EEVersion", Text),
            Column::new("Name", Text),
            Column::new("Comment", Text),
        ],
        "Logs" => vec![Column::new("NodeID", Text), Column::new("Log", Blob)],
        "EEFiles" => vec![Column::new("ID", Text), Column::new("File", Blob)],
        "ExperimentMeasurements" => vec![
            Column::new("ID", Integer),
            Column::new("NodeID", Text),
            Column::new("Name", Text),
            Column::new("Content", Blob),
        ],
        "RunInfos" => vec![
            Column::new("RunID", Integer),
            Column::new("NodeID", Text),
            Column::new("StartTime", Integer),
            Column::new("TimeDiff", Integer),
        ],
        "ExtraRunMeasurements" => vec![
            Column::new("RunID", Integer),
            Column::new("NodeID", Text),
            Column::new("Name", Text),
            Column::new("Content", Blob),
        ],
        "Events" => vec![
            Column::new("RunID", Integer),
            Column::new("NodeID", Text),
            Column::new("CommonTime", Integer),
            Column::new("EventType", Text),
            Column::new("Parameter", Text),
        ],
        "Packets" => vec![
            Column::new("RunID", Integer),
            Column::new("NodeID", Text),
            Column::new("CommonTime", Integer),
            Column::new("SrcNodeID", Text),
            Column::new("Data", Blob),
        ],
        other => unreachable!("unknown schema table {other}"),
    }
}

/// Creates an empty level-3 database with the full Table I schema.
/// Run-keyed tables carry a hash index on `RunID` — the access path every
/// conditioning/analysis query takes.
pub fn create_level3_database() -> Database {
    let mut db = Database::new();
    for name in TABLE_NAMES {
        db.create_table(name, columns(name))
            .expect("fresh database");
    }
    for name in ["RunInfos", "ExtraRunMeasurements", "Events", "Packets"] {
        db.table_mut(name)
            .unwrap()
            .create_index("RunID")
            .expect("indexable");
    }
    db
}

/// Checks that a database matches the Table I schema exactly.
pub fn verify_schema(db: &Database) -> Result<(), StoreError> {
    for name in TABLE_NAMES {
        let table = db.table(name)?;
        let expected = attributes(name).unwrap();
        let actual = table.column_names();
        if actual != expected {
            return Err(StoreError(format!(
                "table {name}: expected attributes {expected:?}, found {actual:?}"
            )));
        }
    }
    Ok(())
}

/// Renders Table I as the paper prints it (for the `table1_schema` harness).
pub fn render_table1() -> String {
    let mut out = String::from("Table                  | Attributes\n");
    out.push_str("-----------------------+-------------------------------------------------\n");
    for name in TABLE_NAMES {
        let attrs = attributes(name).unwrap().join(", ");
        out.push_str(&format!("{name:<22} | {attrs}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_tables_present() {
        let db = create_level3_database();
        assert_eq!(db.table_names().len(), 8);
        for name in TABLE_NAMES {
            assert!(db.table(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn schema_matches_paper_attributes() {
        let db = create_level3_database();
        verify_schema(&db).unwrap();
        // Spot checks against the literal Table I.
        assert_eq!(
            db.table("Events").unwrap().column_names(),
            vec!["RunID", "NodeID", "CommonTime", "EventType", "Parameter"]
        );
        assert_eq!(
            db.table("Packets").unwrap().column_names(),
            vec!["RunID", "NodeID", "CommonTime", "SrcNodeID", "Data"]
        );
        assert_eq!(
            db.table("ExperimentInfo").unwrap().column_names(),
            vec!["ExpXML", "EEVersion", "Name", "Comment"]
        );
    }

    #[test]
    fn verify_schema_detects_deviation() {
        let mut db = create_level3_database();
        // Recreate a table with wrong columns under the same name.
        db = {
            let mut bad = Database::new();
            for name in TABLE_NAMES {
                if name == "Logs" {
                    bad.create_table(
                        name,
                        vec![Column::new("Wrong", crate::engine::ColumnType::Text)],
                    )
                    .unwrap();
                } else {
                    let t = db.table(name).unwrap();
                    bad.create_table(name, t.columns.clone()).unwrap();
                }
            }
            bad
        };
        assert!(verify_schema(&db).is_err());
    }

    #[test]
    fn render_lists_every_table_once() {
        let rendered = render_table1();
        for name in TABLE_NAMES {
            assert_eq!(rendered.matches(name).count(), 1, "{name}");
        }
        assert!(rendered.contains("RunID, NodeID, CommonTime, EventType, Parameter"));
    }

    #[test]
    fn unknown_table_attributes_is_none() {
        assert!(attributes("Bogus").is_none());
    }

    #[test]
    fn run_keyed_tables_are_indexed() {
        let db = create_level3_database();
        for name in ["RunInfos", "ExtraRunMeasurements", "Events", "Packets"] {
            assert!(db.table(name).unwrap().is_indexed("RunID"), "{name}");
        }
        assert!(!db.table("Logs").unwrap().is_indexed("NodeID"));
    }
}
