//! Level-2 intermediate storage (paper §IV-B5, §IV-F).
//!
//! "Each participating node has its own temporary storage for recorded
//! data, organized into data belonging to single runs and data valid for
//! the complete experiment. [...] Currently, ExCovery uses a special
//! hierarchy on a file system to store second level data."
//!
//! The hierarchy:
//!
//! ```text
//! <root>/
//!   experiment/<node>/<name>         # experiment-wide measurements
//!   runs/<run_id>/<node>/<name>      # per-run measurements and logs
//! ```

use crate::engine::{atomic_write, StoreError};
use crate::json::JsonValue;
use std::fs;
use std::path::{Path, PathBuf};

/// Handle to one experiment's level-2 file hierarchy.
#[derive(Debug, Clone)]
pub struct Level2Store {
    root: PathBuf,
}

impl Level2Store {
    /// Opens (creating if necessary) the hierarchy rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("experiment"))
            .and_then(|()| fs::create_dir_all(root.join("runs")))
            .map_err(|e| StoreError(format!("create level-2 root: {e}")))?;
        Ok(Self { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn experiment_path(&self, node: &str, name: &str) -> PathBuf {
        self.root.join("experiment").join(node).join(name)
    }

    fn run_path(&self, run_id: u64, node: &str, name: &str) -> PathBuf {
        self.root
            .join("runs")
            .join(run_id.to_string())
            .join(node)
            .join(name)
    }

    fn journal_path(&self) -> PathBuf {
        self.root.join("runs").join("journal.json")
    }

    /// Every write is temp-file + rename: a crash at any instant leaves
    /// either no entry or the complete entry, never a torn file that the
    /// packaging pass would read as data.
    fn write(path: &Path, data: &[u8]) -> Result<(), StoreError> {
        atomic_write(path, data)?;
        if excovery_obs::enabled() {
            let reg = excovery_obs::global();
            reg.counter("store_writes_total", &[("level", "2")]).inc();
            reg.counter("store_bytes_written_total", &[("level", "2")])
                .add(data.len() as u64);
        }
        Ok(())
    }

    /// Stores an experiment-wide measurement for a node.
    pub fn put_experiment(&self, node: &str, name: &str, data: &[u8]) -> Result<(), StoreError> {
        Self::write(&self.experiment_path(node, name), data)
    }

    /// Stores a per-run measurement/log for a node.
    pub fn put_run(
        &self,
        run_id: u64,
        node: &str,
        name: &str,
        data: &[u8],
    ) -> Result<(), StoreError> {
        Self::write(&self.run_path(run_id, node, name), data)
    }

    /// Reads an experiment-wide measurement.
    pub fn get_experiment(&self, node: &str, name: &str) -> Result<Vec<u8>, StoreError> {
        let p = self.experiment_path(node, name);
        fs::read(&p).map_err(|e| StoreError(format!("read {p:?}: {e}")))
    }

    /// Reads a per-run measurement.
    pub fn get_run(&self, run_id: u64, node: &str, name: &str) -> Result<Vec<u8>, StoreError> {
        let p = self.run_path(run_id, node, name);
        fs::read(&p).map_err(|e| StoreError(format!("read {p:?}: {e}")))
    }

    /// Run ids present, sorted — the collection phase walks these.
    pub fn run_ids(&self) -> Result<Vec<u64>, StoreError> {
        let runs = self.root.join("runs");
        let mut ids = Vec::new();
        for entry in fs::read_dir(&runs).map_err(|e| StoreError(format!("list runs: {e}")))? {
            let entry = entry.map_err(|e| StoreError(e.to_string()))?;
            // Non-numeric entries (the journal, stray temp files) are not
            // run directories.
            if let Some(id) = entry.file_name().to_str().and_then(|s| s.parse().ok()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// `(node, name)` pairs stored for a run, sorted.
    pub fn run_entries(&self, run_id: u64) -> Result<Vec<(String, String)>, StoreError> {
        let dir = self.root.join("runs").join(run_id.to_string());
        let mut out = Vec::new();
        let nodes = match fs::read_dir(&dir) {
            Ok(n) => n,
            Err(_) => return Ok(out), // run without data
        };
        for node in nodes {
            let node = node.map_err(|e| StoreError(e.to_string()))?;
            let node_name = node.file_name().to_string_lossy().into_owned();
            for file in fs::read_dir(node.path()).map_err(|e| StoreError(e.to_string()))? {
                let file = file.map_err(|e| StoreError(e.to_string()))?;
                let name = file.file_name().to_string_lossy().into_owned();
                // In-flight temp files of the atomic writer are dot-prefixed
                // and must never surface as measurements.
                if name.starts_with('.') {
                    continue;
                }
                out.push((node_name.clone(), name));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Marks a run as completed (the recovery mechanism of §VII: aborted
    /// runs are detected by a missing marker and resumed).
    ///
    /// Two atomic writes, in order: the per-run marker file, then the
    /// experiment-wide journal (`runs/journal.json`) listing every
    /// completed run. A crash between the two leaves a marker that the
    /// journal does not confirm — [`Self::is_run_complete`] treats such a
    /// run as incomplete, so it is re-executed rather than packaged in a
    /// possibly half-recorded state.
    pub fn mark_run_complete(&self, run_id: u64) -> Result<(), StoreError> {
        self.put_run(run_id, "_master", "complete", b"1")?;
        let mut completed = self.journal_runs().unwrap_or_default();
        if !completed.contains(&run_id) {
            completed.push(run_id);
            completed.sort_unstable();
        }
        let doc = JsonValue::Object(vec![(
            "completed".into(),
            JsonValue::Array(
                completed
                    .into_iter()
                    .map(|r| JsonValue::Int(r as i64))
                    .collect(),
            ),
        )]);
        Self::write(&self.journal_path(), doc.to_string().as_bytes())?;
        if excovery_obs::enabled() {
            excovery_obs::global()
                .counter("store_journal_commits_total", &[])
                .inc();
        }
        Ok(())
    }

    /// Completed run ids as recorded in the journal; `None` if no journal
    /// exists (a hierarchy written before journals, or none marked yet).
    pub fn journal_runs(&self) -> Option<Vec<u64>> {
        let raw = fs::read(self.journal_path()).ok()?;
        let doc = JsonValue::parse_bytes(&raw).ok()?;
        Some(
            doc.get("completed")?
                .as_array()?
                .iter()
                .filter_map(JsonValue::as_u64)
                .collect(),
        )
    }

    /// True if the run has a completion marker that the journal confirms.
    ///
    /// Without any journal (pre-journal hierarchies) the marker alone
    /// decides; once a journal exists, a marker the journal does not list
    /// is the signature of a crash mid-`mark_run_complete` and counts as
    /// incomplete.
    pub fn is_run_complete(&self, run_id: u64) -> bool {
        if !self.run_path(run_id, "_master", "complete").exists() {
            return false;
        }
        match self.journal_runs() {
            None => true,
            Some(completed) => completed.contains(&run_id),
        }
    }

    /// Lowest run id without a completion marker, given the total planned
    /// runs — where a resumed experiment continues.
    pub fn first_incomplete_run(&self, total_runs: u64) -> u64 {
        (0..total_runs)
            .find(|&r| !self.is_run_complete(r))
            .unwrap_or(total_runs)
    }

    /// Directory for columnar partition slabs derived from this
    /// experiment's runs. The slab files themselves are written and read
    /// by the query layer (this crate sits below it and only owns the
    /// location): one `*.slab` file per completed-run partition, placed
    /// here by the spill builder so the warehouse can reopen the
    /// experiment without re-ingesting level-3 packages.
    pub fn slab_dir(&self) -> PathBuf {
        self.root.join("slabs")
    }

    /// Creates (if necessary) and returns the slab directory.
    pub fn ensure_slab_dir(&self) -> Result<PathBuf, StoreError> {
        let dir = self.slab_dir();
        fs::create_dir_all(&dir).map_err(|e| StoreError(format!("create slab dir: {e}")))?;
        Ok(dir)
    }

    /// Paths of the stored slab partition files, sorted by file name
    /// (in-flight atomic-writer temp files are dot-prefixed and skipped).
    /// Empty when no slab directory exists yet.
    pub fn slab_files(&self) -> Result<Vec<PathBuf>, StoreError> {
        let dir = self.slab_dir();
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => return Ok(Vec::new()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError(e.to_string()))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || !name.ends_with(".slab") {
                continue;
            }
            out.push(entry.path());
        }
        out.sort();
        Ok(out)
    }

    /// Removes the whole hierarchy (after successful packaging to level 3).
    pub fn destroy(self) -> Result<(), StoreError> {
        fs::remove_dir_all(&self.root).map_err(|e| StoreError(format!("destroy: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Level2Store {
        let root = std::env::temp_dir().join(format!("excovery-l2-{}-{}", tag, std::process::id()));
        fs::remove_dir_all(&root).ok();
        Level2Store::open(root).unwrap()
    }

    #[test]
    fn experiment_data_roundtrip() {
        let s = temp_store("exp");
        s.put_experiment("t9-105", "topology_before", b"hopcounts")
            .unwrap();
        assert_eq!(
            s.get_experiment("t9-105", "topology_before").unwrap(),
            b"hopcounts"
        );
        assert!(s.get_experiment("t9-105", "missing").is_err());
        s.destroy().unwrap();
    }

    #[test]
    fn run_data_roundtrip_and_listing() {
        let s = temp_store("run");
        s.put_run(0, "t9-105", "events.jsonl", b"[]").unwrap();
        s.put_run(0, "t9-157", "capture.pcapish", b"\x01\x02")
            .unwrap();
        s.put_run(3, "t9-105", "events.jsonl", b"[]").unwrap();
        assert_eq!(s.run_ids().unwrap(), vec![0, 3]);
        let entries = s.run_entries(0).unwrap();
        assert_eq!(
            entries,
            vec![
                ("t9-105".to_string(), "events.jsonl".to_string()),
                ("t9-157".to_string(), "capture.pcapish".to_string())
            ]
        );
        assert!(s.run_entries(99).unwrap().is_empty());
        s.destroy().unwrap();
    }

    #[test]
    fn completion_markers_support_resume() {
        let s = temp_store("resume");
        assert_eq!(s.first_incomplete_run(5), 0);
        s.mark_run_complete(0).unwrap();
        s.mark_run_complete(1).unwrap();
        assert!(s.is_run_complete(1));
        assert!(!s.is_run_complete(2));
        assert_eq!(s.first_incomplete_run(5), 2);
        // A gap: run 3 done but 2 missing → resume at 2.
        s.mark_run_complete(3).unwrap();
        assert_eq!(s.first_incomplete_run(5), 2);
        // All done.
        s.mark_run_complete(2).unwrap();
        s.mark_run_complete(4).unwrap();
        assert_eq!(s.first_incomplete_run(5), 5);
        s.destroy().unwrap();
    }

    #[test]
    fn crashed_run_without_marker_is_resumed_not_skipped() {
        let s = temp_store("crash");
        // Simulated crash mid-run: per-node data landed, the completion
        // marker did not.
        s.put_run(0, "_master", "events.json", b"[]").unwrap();
        s.put_run(0, "t9-105", "captures.json", b"[]").unwrap();
        assert!(!s.is_run_complete(0));
        assert_eq!(
            s.first_incomplete_run(3),
            0,
            "a run with data but no marker must be re-executed"
        );
        s.destroy().unwrap();
    }

    #[test]
    fn marker_without_journal_confirmation_counts_as_incomplete() {
        let s = temp_store("journal-crash");
        s.mark_run_complete(0).unwrap();
        assert_eq!(s.journal_runs(), Some(vec![0]));
        // Simulated crash between the marker write and the journal update
        // of run 1: the marker file exists, the journal doesn't list it.
        s.put_run(1, "_master", "complete", b"1").unwrap();
        assert!(s.is_run_complete(0));
        assert!(!s.is_run_complete(1));
        assert_eq!(s.first_incomplete_run(3), 1);
        // Re-completing run 1 (after re-execution) repairs the state.
        s.mark_run_complete(1).unwrap();
        assert!(s.is_run_complete(1));
        assert_eq!(s.journal_runs(), Some(vec![0, 1]));
        s.destroy().unwrap();
    }

    #[test]
    fn pre_journal_hierarchies_trust_the_marker_alone() {
        let s = temp_store("legacy");
        s.put_run(0, "_master", "complete", b"1").unwrap();
        assert_eq!(s.journal_runs(), None);
        assert!(s.is_run_complete(0), "no journal: marker decides");
        s.destroy().unwrap();
    }

    #[test]
    fn journal_and_temp_files_never_surface_as_run_data() {
        let s = temp_store("hygiene");
        s.put_run(0, "n", "x", b"data").unwrap();
        s.mark_run_complete(0).unwrap();
        // A stray atomic-writer temp file (crash artifact).
        fs::write(s.root().join("runs/0/n/.x.tmp-999-0"), b"torn").unwrap();
        assert_eq!(s.run_ids().unwrap(), vec![0], "journal.json is not a run");
        let entries = s.run_entries(0).unwrap();
        assert!(
            entries.iter().all(|(_, name)| !name.starts_with('.')),
            "{entries:?}"
        );
        s.destroy().unwrap();
    }

    #[test]
    fn slab_dir_lists_only_committed_slab_files() {
        let s = temp_store("slabs");
        assert!(s.slab_files().unwrap().is_empty(), "no dir yet is fine");
        let dir = s.ensure_slab_dir().unwrap();
        fs::write(dir.join("p-0001.slab"), b"x").unwrap();
        fs::write(dir.join("p-0000.slab"), b"x").unwrap();
        fs::write(dir.join(".p-0002.slab.tmp-1-0"), b"torn").unwrap();
        fs::write(dir.join("notes.txt"), b"not a slab").unwrap();
        let files: Vec<String> = s
            .slab_files()
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files, vec!["p-0000.slab", "p-0001.slab"]);
        s.destroy().unwrap();
    }

    #[test]
    fn overwrite_is_allowed() {
        let s = temp_store("ovw");
        s.put_run(1, "n", "x", b"a").unwrap();
        s.put_run(1, "n", "x", b"b").unwrap();
        assert_eq!(s.get_run(1, "n", "x").unwrap(), b"b");
        s.destroy().unwrap();
    }
}
