//! Level-2 intermediate storage (paper §IV-B5, §IV-F).
//!
//! "Each participating node has its own temporary storage for recorded
//! data, organized into data belonging to single runs and data valid for
//! the complete experiment. [...] Currently, ExCovery uses a special
//! hierarchy on a file system to store second level data."
//!
//! The hierarchy:
//!
//! ```text
//! <root>/
//!   experiment/<node>/<name>         # experiment-wide measurements
//!   runs/<run_id>/<node>/<name>      # per-run measurements and logs
//! ```

use crate::engine::StoreError;
use std::fs;
use std::path::{Path, PathBuf};

/// Handle to one experiment's level-2 file hierarchy.
#[derive(Debug, Clone)]
pub struct Level2Store {
    root: PathBuf,
}

impl Level2Store {
    /// Opens (creating if necessary) the hierarchy rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("experiment"))
            .and_then(|()| fs::create_dir_all(root.join("runs")))
            .map_err(|e| StoreError(format!("create level-2 root: {e}")))?;
        Ok(Self { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn experiment_path(&self, node: &str, name: &str) -> PathBuf {
        self.root.join("experiment").join(node).join(name)
    }

    fn run_path(&self, run_id: u64, node: &str, name: &str) -> PathBuf {
        self.root
            .join("runs")
            .join(run_id.to_string())
            .join(node)
            .join(name)
    }

    fn write(path: &Path, data: &[u8]) -> Result<(), StoreError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| StoreError(format!("mkdir: {e}")))?;
        }
        fs::write(path, data).map_err(|e| StoreError(format!("write {path:?}: {e}")))
    }

    /// Stores an experiment-wide measurement for a node.
    pub fn put_experiment(&self, node: &str, name: &str, data: &[u8]) -> Result<(), StoreError> {
        Self::write(&self.experiment_path(node, name), data)
    }

    /// Stores a per-run measurement/log for a node.
    pub fn put_run(
        &self,
        run_id: u64,
        node: &str,
        name: &str,
        data: &[u8],
    ) -> Result<(), StoreError> {
        Self::write(&self.run_path(run_id, node, name), data)
    }

    /// Reads an experiment-wide measurement.
    pub fn get_experiment(&self, node: &str, name: &str) -> Result<Vec<u8>, StoreError> {
        let p = self.experiment_path(node, name);
        fs::read(&p).map_err(|e| StoreError(format!("read {p:?}: {e}")))
    }

    /// Reads a per-run measurement.
    pub fn get_run(&self, run_id: u64, node: &str, name: &str) -> Result<Vec<u8>, StoreError> {
        let p = self.run_path(run_id, node, name);
        fs::read(&p).map_err(|e| StoreError(format!("read {p:?}: {e}")))
    }

    /// Run ids present, sorted — the collection phase walks these.
    pub fn run_ids(&self) -> Result<Vec<u64>, StoreError> {
        let runs = self.root.join("runs");
        let mut ids = Vec::new();
        for entry in fs::read_dir(&runs).map_err(|e| StoreError(format!("list runs: {e}")))? {
            let entry = entry.map_err(|e| StoreError(e.to_string()))?;
            if let Some(id) = entry.file_name().to_str().and_then(|s| s.parse().ok()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// `(node, name)` pairs stored for a run, sorted.
    pub fn run_entries(&self, run_id: u64) -> Result<Vec<(String, String)>, StoreError> {
        let dir = self.root.join("runs").join(run_id.to_string());
        let mut out = Vec::new();
        let nodes = match fs::read_dir(&dir) {
            Ok(n) => n,
            Err(_) => return Ok(out), // run without data
        };
        for node in nodes {
            let node = node.map_err(|e| StoreError(e.to_string()))?;
            let node_name = node.file_name().to_string_lossy().into_owned();
            for file in fs::read_dir(node.path()).map_err(|e| StoreError(e.to_string()))? {
                let file = file.map_err(|e| StoreError(e.to_string()))?;
                out.push((
                    node_name.clone(),
                    file.file_name().to_string_lossy().into_owned(),
                ));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Marks a run as completed (the recovery mechanism of §VII: aborted
    /// runs are detected by a missing marker and resumed).
    pub fn mark_run_complete(&self, run_id: u64) -> Result<(), StoreError> {
        self.put_run(run_id, "_master", "complete", b"1")
    }

    /// True if the run has a completion marker.
    pub fn is_run_complete(&self, run_id: u64) -> bool {
        self.run_path(run_id, "_master", "complete").exists()
    }

    /// Lowest run id without a completion marker, given the total planned
    /// runs — where a resumed experiment continues.
    pub fn first_incomplete_run(&self, total_runs: u64) -> u64 {
        (0..total_runs)
            .find(|&r| !self.is_run_complete(r))
            .unwrap_or(total_runs)
    }

    /// Removes the whole hierarchy (after successful packaging to level 3).
    pub fn destroy(self) -> Result<(), StoreError> {
        fs::remove_dir_all(&self.root).map_err(|e| StoreError(format!("destroy: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Level2Store {
        let root = std::env::temp_dir().join(format!("excovery-l2-{}-{}", tag, std::process::id()));
        fs::remove_dir_all(&root).ok();
        Level2Store::open(root).unwrap()
    }

    #[test]
    fn experiment_data_roundtrip() {
        let s = temp_store("exp");
        s.put_experiment("t9-105", "topology_before", b"hopcounts")
            .unwrap();
        assert_eq!(
            s.get_experiment("t9-105", "topology_before").unwrap(),
            b"hopcounts"
        );
        assert!(s.get_experiment("t9-105", "missing").is_err());
        s.destroy().unwrap();
    }

    #[test]
    fn run_data_roundtrip_and_listing() {
        let s = temp_store("run");
        s.put_run(0, "t9-105", "events.jsonl", b"[]").unwrap();
        s.put_run(0, "t9-157", "capture.pcapish", b"\x01\x02")
            .unwrap();
        s.put_run(3, "t9-105", "events.jsonl", b"[]").unwrap();
        assert_eq!(s.run_ids().unwrap(), vec![0, 3]);
        let entries = s.run_entries(0).unwrap();
        assert_eq!(
            entries,
            vec![
                ("t9-105".to_string(), "events.jsonl".to_string()),
                ("t9-157".to_string(), "capture.pcapish".to_string())
            ]
        );
        assert!(s.run_entries(99).unwrap().is_empty());
        s.destroy().unwrap();
    }

    #[test]
    fn completion_markers_support_resume() {
        let s = temp_store("resume");
        assert_eq!(s.first_incomplete_run(5), 0);
        s.mark_run_complete(0).unwrap();
        s.mark_run_complete(1).unwrap();
        assert!(s.is_run_complete(1));
        assert!(!s.is_run_complete(2));
        assert_eq!(s.first_incomplete_run(5), 2);
        // A gap: run 3 done but 2 missing → resume at 2.
        s.mark_run_complete(3).unwrap();
        assert_eq!(s.first_incomplete_run(5), 2);
        // All done.
        s.mark_run_complete(2).unwrap();
        s.mark_run_complete(4).unwrap();
        assert_eq!(s.first_incomplete_run(5), 5);
        s.destroy().unwrap();
    }

    #[test]
    fn overwrite_is_allowed() {
        let s = temp_store("ovw");
        s.put_run(1, "n", "x", b"a").unwrap();
        s.put_run(1, "n", "x", b"b").unwrap();
        assert_eq!(s.get_run(1, "n", "x").unwrap(), b"b");
        s.destroy().unwrap();
    }
}
