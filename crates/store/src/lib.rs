//! # excovery-store
//!
//! The four-level measurement storage of ExCovery (paper §IV-F, Table I).
//!
//! * **Level 1** — the abstract experiment description itself (an XML
//!   document, exchanged and loaded for execution and analysis).
//! * **Level 2** — intermediate storage of all concrete experiment data:
//!   per-node, per-run log files and measurements in a file-system
//!   hierarchy ([`level2`]).
//! * **Level 3** — one package per experiment: a single relational database
//!   with the schema of Table I ([`schema`]), containing all conditioned
//!   measurements, logs and the complete experiment plan. The paper uses
//!   SQLite; this crate ships its own small embedded relational engine
//!   ([`engine`]) with typed columns, predicates, ordering and file
//!   persistence (see DESIGN.md for the substitution rationale).
//! * **Level 4** — a repository integrating multiple experiments for
//!   cross-experiment comparison ([`repository`]). The paper leaves this
//!   level unrealized; it is implemented here as an extension.

pub mod engine;
pub mod json;
pub mod level2;
pub mod records;
pub mod repository;
pub mod schema;
pub mod warehouse;

pub use engine::{
    atomic_write, Aggregate, Column, ColumnType, Database, Predicate, Row, SqlValue, StoreError,
    Table,
};
pub use json::JsonValue;
pub use records::{EventRow, ExperimentInfo, PacketRow, RunInfoRow};
pub use repository::Repository;
