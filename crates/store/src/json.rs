//! A small, dependency-free JSON codec for the storage levels.
//!
//! Level-2 files, the run-completion journal and the level-3 database
//! package must round-trip exactly on every build of the engine: the
//! crash-resume path re-reads what an earlier (possibly different) master
//! incarnation wrote. Keeping the codec in-tree makes that round-trip a
//! property of this crate alone — like the XML codec in `excovery-xml` —
//! instead of an external serializer's.
//!
//! Integers are kept exact (`i64`, covering every nanosecond timestamp the
//! engine produces); floats print in shortest round-trip form.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part, kept exact.
    Int(i64),
    /// A number with fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; member order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Byte strings are stored as arrays of integers 0..=255.
    pub fn bytes(data: &[u8]) -> Self {
        JsonValue::Array(data.iter().map(|b| JsonValue::Int(*b as i64)).collect())
    }

    /// The string content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer content as unsigned; negative values yield `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The numeric content, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean content, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Decodes an array-of-integers value back into bytes.
    pub fn to_bytes(&self) -> Option<Vec<u8>> {
        self.as_array()?
            .iter()
            .map(|v| v.as_i64().and_then(|i| u8::try_from(i).ok()))
            .collect()
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if !f.is_finite() {
                    // JSON has no NaN/Infinity literal; keep documents valid.
                    out.push_str("null");
                } else {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // A float that prints integral must stay a float on
                    // re-parse, so its type survives the round-trip.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                }
            }
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Parses from raw bytes (must be UTF-8).
    pub fn parse_bytes(input: &[u8]) -> Result<JsonValue, String> {
        let s = std::str::from_utf8(input).map_err(|e| format!("invalid utf-8: {e}"))?;
        Self::parse(s)
    }
}

/// Serializes to compact JSON (`to_string()` comes with it).
impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null").map(|()| JsonValue::Null),
            Some(b't') => self.literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped spans in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: span boundaries sit on ASCII bytes.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.literal("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(b) if b < 0x20 => return Err(format!("raw control byte {b:#x} in string")),
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        JsonValue::parse(&v.to_string()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Int(0),
            JsonValue::Int(-1),
            JsonValue::Int(i64::MAX),
            JsonValue::Int(i64::MIN),
            JsonValue::Float(0.25),
            JsonValue::Float(-1.5e-9),
            JsonValue::str(""),
            JsonValue::str("päck€t \"x\"\n\t\\"),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = JsonValue::Float(3.0);
        assert_eq!(v.to_string(), "3.0");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn nanosecond_timestamps_are_exact() {
        // 2^53 + 1 is where f64 starts losing integers.
        let v = JsonValue::Int((1 << 53) + 1);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn containers_roundtrip() {
        let v = JsonValue::Object(vec![
            (
                "runs".into(),
                JsonValue::Array(vec![JsonValue::Int(0), JsonValue::Int(3)]),
            ),
            (
                "nested".into(),
                JsonValue::Object(vec![("x".into(), JsonValue::Null)]),
            ),
            ("data".into(), JsonValue::bytes(&[0, 127, 255])),
        ]);
        let r = roundtrip(&v);
        assert_eq!(r, v);
        assert_eq!(
            r.get("data").unwrap().to_bytes().unwrap(),
            vec![0, 127, 255]
        );
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\u00e4\\ud83d\\ude00\" ] } ")
            .unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_str(), Some("Aä😀"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "[1] trailing",
            "\"\\q\"",
            "{\"a\":\"\\ud800\"}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(JsonValue::parse(&doc).is_err());
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
    }
}
