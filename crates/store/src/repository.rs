//! Level-4 storage: the multi-experiment repository.
//!
//! "The fourth level describes the integration of multiple experiments into
//! a single repository to facilitate comparison and analysis covering
//! multiple experiments. To date, ExCovery does not realize this level."
//! (§IV-F) — implemented here as the extension the paper anticipates: a
//! directory of level-3 packages with an index and cross-experiment query
//! helpers.

use crate::engine::{Database, StoreError};
use crate::records::ExperimentInfo;
use std::fs;
use std::path::{Path, PathBuf};

/// A directory holding many level-3 experiment packages.
#[derive(Debug, Clone)]
pub struct Repository {
    root: PathBuf,
}

/// Index entry of one stored experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoEntry {
    /// Experiment identifier (file stem).
    pub id: String,
    /// Experiment name from `ExperimentInfo`.
    pub name: String,
    /// Comment from `ExperimentInfo`.
    pub comment: String,
}

impl Repository {
    /// Opens (creating if necessary) a repository at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError(format!("create repo: {e}")))?;
        Ok(Self { root })
    }

    /// Repository directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, id: &str) -> PathBuf {
        self.root.join(format!("{id}.expdb"))
    }

    /// Stores a level-3 package under `id`; refuses to overwrite.
    pub fn store(&self, id: &str, db: &Database) -> Result<(), StoreError> {
        let path = self.path_of(id);
        if path.exists() {
            return Err(StoreError(format!("experiment '{id}' already stored")));
        }
        db.save(&path)
    }

    /// Loads the package stored under `id`.
    pub fn load(&self, id: &str) -> Result<Database, StoreError> {
        Database::load(&self.path_of(id))
    }

    /// Removes the package stored under `id`.
    pub fn remove(&self, id: &str) -> Result<(), StoreError> {
        fs::remove_file(self.path_of(id)).map_err(|e| StoreError(format!("remove {id}: {e}")))
    }

    /// Lists stored experiments with their metadata, sorted by id.
    pub fn index(&self) -> Result<Vec<RepoEntry>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root).map_err(|e| StoreError(format!("list: {e}")))? {
            let entry = entry.map_err(|e| StoreError(e.to_string()))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("expdb") {
                continue;
            }
            let id = path
                .file_stem()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let db = Database::load(&path)?;
            let info = ExperimentInfo::read(&db)?;
            out.push(RepoEntry {
                id,
                name: info.name,
                comment: info.comment,
            });
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Runs `f` over every stored experiment, collecting the results —
    /// the cross-experiment analysis the paper's level 4 is for.
    pub fn map_experiments<T>(
        &self,
        mut f: impl FnMut(&str, &Database) -> Result<T, StoreError>,
    ) -> Result<Vec<T>, StoreError> {
        let mut out = Vec::new();
        for entry in self.index()? {
            let db = self.load(&entry.id)?;
            out.push(f(&entry.id, &db)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{create_level3_database, EE_VERSION};

    fn package(name: &str) -> Database {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: format!("<experiment name=\"{name}\"/>"),
            ee_version: EE_VERSION.into(),
            name: name.into(),
            comment: format!("{name} comment"),
        }
        .insert(&mut db)
        .unwrap();
        db
    }

    fn temp_repo(tag: &str) -> Repository {
        let root =
            std::env::temp_dir().join(format!("excovery-repo-{}-{}", tag, std::process::id()));
        fs::remove_dir_all(&root).ok();
        Repository::open(root).unwrap()
    }

    #[test]
    fn store_load_roundtrip() {
        let repo = temp_repo("rt");
        let db = package("exp-a");
        repo.store("exp-a", &db).unwrap();
        assert_eq!(repo.load("exp-a").unwrap(), db);
        fs::remove_dir_all(repo.root()).ok();
    }

    #[test]
    fn no_silent_overwrite() {
        let repo = temp_repo("ovw");
        repo.store("x", &package("x")).unwrap();
        assert!(repo.store("x", &package("x")).is_err());
        fs::remove_dir_all(repo.root()).ok();
    }

    #[test]
    fn index_lists_all_sorted() {
        let repo = temp_repo("idx");
        repo.store("b-exp", &package("second")).unwrap();
        repo.store("a-exp", &package("first")).unwrap();
        let idx = repo.index().unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].id, "a-exp");
        assert_eq!(idx[0].name, "first");
        assert_eq!(idx[1].comment, "second comment");
        fs::remove_dir_all(repo.root()).ok();
    }

    #[test]
    fn map_experiments_crosses_packages() {
        let repo = temp_repo("map");
        repo.store("e1", &package("one")).unwrap();
        repo.store("e2", &package("two")).unwrap();
        let names = repo
            .map_experiments(|id, db| Ok(format!("{id}:{}", ExperimentInfo::read(db)?.name)))
            .unwrap();
        assert_eq!(names, vec!["e1:one", "e2:two"]);
        fs::remove_dir_all(repo.root()).ok();
    }

    #[test]
    fn remove_and_missing_load() {
        let repo = temp_repo("rm");
        repo.store("gone", &package("gone")).unwrap();
        repo.remove("gone").unwrap();
        assert!(repo.load("gone").is_err());
        assert!(repo.remove("gone").is_err());
        fs::remove_dir_all(repo.root()).ok();
    }
}
