//! Dimensional (star-schema) export — the paper's anticipated improvement:
//! "Several future improvements are possible, for example by using a
//! dimensional database model to store experiments in a data warehouse
//! structure" (§IV-F).
//!
//! [`build_warehouse`] converts one or more level-3 packages into a star
//! schema: a central `FactDiscovery` table (one row per discovery episode,
//! with the response time as the measure) surrounded by `DimExperiment`,
//! `DimRun` and `DimNode` dimensions. Cross-experiment OLAP-style slicing
//! then reduces to plain predicate queries on the fact table.

use crate::engine::{Column, ColumnType, Database, Predicate, SqlValue, StoreError};
use crate::records::{EventRow, ExperimentInfo, RunInfoRow};
use std::collections::BTreeMap;

/// Table names of the warehouse schema.
pub const WAREHOUSE_TABLES: [&str; 4] = ["DimExperiment", "DimRun", "DimNode", "FactDiscovery"];

fn warehouse_schema() -> Database {
    use ColumnType::*;
    let mut db = Database::new();
    db.create_table(
        "DimExperiment",
        vec![
            Column::new("ExpKey", Integer),
            Column::new("Name", Text),
            Column::new("Comment", Text),
            Column::new("EEVersion", Text),
        ],
    )
    .unwrap();
    db.create_table(
        "DimRun",
        vec![
            Column::new("RunKey", Integer),
            Column::new("ExpKey", Integer),
            Column::new("RunID", Integer),
            Column::new("StartTime", Integer),
        ],
    )
    .unwrap();
    db.create_table(
        "DimNode",
        vec![
            Column::new("NodeKey", Integer),
            Column::new("ExpKey", Integer),
            Column::new("NodeID", Text),
        ],
    )
    .unwrap();
    db.create_table(
        "FactDiscovery",
        vec![
            Column::new("ExpKey", Integer),
            Column::new("RunKey", Integer),
            Column::new("SuNodeKey", Integer),
            Column::new("Service", Text),
            Column::new("SearchStart", Integer),
            Column::new("ResponseTimeNs", Integer),
        ],
    )
    .unwrap();
    db
}

/// Builds a warehouse from `(experiment id, level-3 package)` pairs.
///
/// Every `sd_service_add` following an `sd_start_search` on the same node
/// becomes one fact row; surrogate keys link the dimensions.
pub fn build_warehouse(packages: &[(&str, &Database)]) -> Result<Database, StoreError> {
    let mut wh = warehouse_schema();
    let mut next_run_key: i64 = 0;
    let mut next_node_key: i64 = 0;
    for (exp_key, (_, db)) in packages.iter().enumerate() {
        let exp_key = exp_key as i64;
        let info = ExperimentInfo::read(db)?;
        wh.insert(
            "DimExperiment",
            vec![
                SqlValue::Int(exp_key),
                info.name.into(),
                info.comment.into(),
                info.ee_version.into(),
            ],
        )?;
        // Node dimension: every node appearing in RunInfos.
        let mut node_keys: BTreeMap<String, i64> = BTreeMap::new();
        let run_infos = RunInfoRow::read_all(db)?;
        for ri in &run_infos {
            if !node_keys.contains_key(&ri.node_id) {
                node_keys.insert(ri.node_id.clone(), next_node_key);
                wh.insert(
                    "DimNode",
                    vec![
                        SqlValue::Int(next_node_key),
                        SqlValue::Int(exp_key),
                        ri.node_id.clone().into(),
                    ],
                )?;
                next_node_key += 1;
            }
        }
        // Run dimension + facts.
        let mut run_keys: BTreeMap<u64, i64> = BTreeMap::new();
        for run_id in RunInfoRow::run_ids(db)? {
            let start = run_infos
                .iter()
                .find(|r| r.run_id == run_id)
                .map(|r| r.start_time_ns)
                .unwrap_or(0);
            run_keys.insert(run_id, next_run_key);
            wh.insert(
                "DimRun",
                vec![
                    SqlValue::Int(next_run_key),
                    SqlValue::Int(exp_key),
                    SqlValue::Int(run_id as i64),
                    SqlValue::Int(start),
                ],
            )?;
            next_run_key += 1;

            // Facts: reconstruct episodes from the event list.
            let events = EventRow::read_run(db, run_id)?;
            let mut open: BTreeMap<&str, i64> = BTreeMap::new(); // node -> search start
            for e in &events {
                match e.event_type.as_str() {
                    "sd_start_search" => {
                        open.insert(e.node_id.as_str(), e.common_time_ns);
                    }
                    "sd_stop_search" => {
                        open.remove(e.node_id.as_str());
                    }
                    "sd_service_add" => {
                        let Some(&start) = open.get(e.node_id.as_str()) else {
                            continue;
                        };
                        let su_key = *node_keys.entry(e.node_id.clone()).or_insert_with(|| {
                            let k = next_node_key;
                            next_node_key += 1;
                            k
                        });
                        let service = EventRow::decode_params(&e.parameter)
                            .into_iter()
                            .find(|(k, _)| k == "service")
                            .map(|(_, v)| v)
                            .unwrap_or_default();
                        wh.insert(
                            "FactDiscovery",
                            vec![
                                SqlValue::Int(exp_key),
                                SqlValue::Int(run_keys[&run_id]),
                                SqlValue::Int(su_key),
                                service.into(),
                                SqlValue::Int(start),
                                SqlValue::Int(e.common_time_ns - start),
                            ],
                        )?;
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(wh)
}

/// Convenience slice: mean response time (seconds) per experiment key.
#[deprecated(
    note = "use `excovery_query::warehouse::mean_response_time_by_experiment`, \
            the columnar (and bit-identical) replacement"
)]
pub fn mean_response_time_by_experiment(wh: &Database) -> Result<BTreeMap<i64, f64>, StoreError> {
    let facts = wh.table("FactDiscovery")?;
    let mut out = BTreeMap::new();
    for exp in facts.distinct("ExpKey", &Predicate::True)? {
        let Some(key) = exp.as_int() else { continue };
        if let Some(mean) = facts.aggregate(
            "ResponseTimeNs",
            &Predicate::Eq("ExpKey".into(), exp.clone()),
            crate::engine::Aggregate::Avg,
        )? {
            out.insert(key, mean / 1e9);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{create_level3_database, EE_VERSION};

    fn package(name: &str, t_r_ns: i64) -> Database {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: String::new(),
            ee_version: EE_VERSION.into(),
            name: name.into(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        RunInfoRow {
            run_id: 0,
            node_id: "su".into(),
            start_time_ns: 0,
            time_diff_ns: 0,
        }
        .insert(&mut db)
        .unwrap();
        for (t, name, param) in [
            (100, "sd_start_search", ""),
            (100 + t_r_ns, "sd_service_add", "service=sm"),
        ] {
            EventRow {
                run_id: 0,
                node_id: "su".into(),
                common_time_ns: t,
                event_type: name.into(),
                parameter: param.into(),
            }
            .insert(&mut db)
            .unwrap();
        }
        db
    }

    #[test]
    fn warehouse_has_star_schema() {
        let p = package("one", 5_000);
        let wh = build_warehouse(&[("one", &p)]).unwrap();
        for t in WAREHOUSE_TABLES {
            assert!(wh.table(t).is_ok(), "{t}");
        }
        assert_eq!(wh.table("DimExperiment").unwrap().len(), 1);
        assert_eq!(wh.table("DimRun").unwrap().len(), 1);
        assert_eq!(wh.table("FactDiscovery").unwrap().len(), 1);
        let fact = &wh.table("FactDiscovery").unwrap().rows()[0];
        assert_eq!(fact[5], SqlValue::Int(5_000), "response time measure");
        assert_eq!(fact[3].as_text(), Some("sm"));
    }

    #[test]
    fn cross_experiment_facts_are_keyed() {
        let a = package("fast", 1_000_000);
        let b = package("slow", 9_000_000);
        let wh = build_warehouse(&[("fast", &a), ("slow", &b)]).unwrap();
        assert_eq!(wh.table("DimExperiment").unwrap().len(), 2);
        assert_eq!(wh.table("FactDiscovery").unwrap().len(), 2);
        #[allow(deprecated)]
        let means = mean_response_time_by_experiment(&wh).unwrap();
        assert_eq!(means.len(), 2);
        assert!(means[&0] < means[&1], "fast < slow: {means:?}");
    }

    #[test]
    fn adds_without_search_are_ignored() {
        let mut db = package("x", 1_000);
        // A stray add after stop_search.
        EventRow {
            run_id: 0,
            node_id: "su".into(),
            common_time_ns: 50,
            event_type: "sd_stop_search".into(),
            parameter: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        let wh = build_warehouse(&[("x", &db)]).unwrap();
        // Original episode intact; ordering by common time means the stray
        // stop (t=50) happens before the search start (t=100).
        assert_eq!(wh.table("FactDiscovery").unwrap().len(), 1);
    }

    #[test]
    fn empty_package_yields_empty_facts() {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: String::new(),
            ee_version: EE_VERSION.into(),
            name: "empty".into(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        let wh = build_warehouse(&[("empty", &db)]).unwrap();
        assert!(wh.table("FactDiscovery").unwrap().is_empty());
        assert_eq!(wh.table("DimExperiment").unwrap().len(), 1);
    }
}
