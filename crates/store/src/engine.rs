//! A small embedded relational engine.
//!
//! Stands in for the SQLite database of the paper's third storage level:
//! named tables with typed columns, row insertion with type checking,
//! predicate-filtered selection with ordering and projection, and
//! persistence of a whole database to a single JSON file (one package per
//! experiment, "preferably stored as a database to unify and accelerate
//! data access", §IV-F).

use crate::json::JsonValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Writes `data` to `path` atomically: the bytes land in a dot-prefixed
/// temp file in the same directory, which is then renamed into place.
/// Readers (and a crash at any instant) observe either the old content or
/// the complete new content — never a torn write. Every journal in the
/// repository stack (level-2 run journal, the server's L4 queue journal)
/// goes through this primitive.
pub fn atomic_write(path: &Path, data: &[u8]) -> Result<(), StoreError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
    let parent = path
        .parent()
        .ok_or_else(|| err(format!("no parent directory for {path:?}")))?;
    std::fs::create_dir_all(parent).map_err(|e| err(format!("mkdir {parent:?}: {e}")))?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| err(format!("invalid file name in {path:?}")))?;
    let tmp = parent.join(format!(
        ".{file_name}.tmp-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, data).map_err(|e| err(format!("write {tmp:?}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        err(format!("rename {tmp:?} -> {path:?}: {e}"))
    })
}

/// Error type of the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(pub String);

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

fn err(msg: impl Into<String>) -> StoreError {
    StoreError(msg.into())
}

/// Column type affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integers.
    Integer,
    /// 64-bit floats.
    Real,
    /// UTF-8 text.
    Text,
    /// Raw bytes (packet contents, log files).
    Blob,
}

/// A typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Real(f64),
    /// Text value.
    Text(String),
    /// Byte-string value.
    Blob(Vec<u8>),
}

impl ColumnType {
    fn type_name(self) -> &'static str {
        match self {
            ColumnType::Integer => "Integer",
            ColumnType::Real => "Real",
            ColumnType::Text => "Text",
            ColumnType::Blob => "Blob",
        }
    }

    fn parse_name(s: &str) -> Option<Self> {
        match s {
            "Integer" => Some(ColumnType::Integer),
            "Real" => Some(ColumnType::Real),
            "Text" => Some(ColumnType::Text),
            "Blob" => Some(ColumnType::Blob),
            _ => None,
        }
    }
}

impl SqlValue {
    /// Persisted shape: every variant maps onto a distinct JSON shape, so
    /// values decode without consulting the column affinity (an `Int`
    /// stored in a `Real` column survives the round-trip as an `Int`).
    fn to_json(&self) -> JsonValue {
        match self {
            SqlValue::Null => JsonValue::Null,
            SqlValue::Int(v) => JsonValue::Object(vec![("int".into(), JsonValue::Int(*v))]),
            SqlValue::Real(v) => JsonValue::Object(vec![("real".into(), JsonValue::Float(*v))]),
            SqlValue::Text(s) => JsonValue::Str(s.clone()),
            SqlValue::Blob(b) => JsonValue::bytes(b),
        }
    }

    fn from_json(v: &JsonValue) -> Result<Self, StoreError> {
        match v {
            JsonValue::Null => Ok(SqlValue::Null),
            JsonValue::Str(s) => Ok(SqlValue::Text(s.clone())),
            JsonValue::Array(_) => v
                .to_bytes()
                .map(SqlValue::Blob)
                .ok_or_else(|| err("parse: blob cell holds non-byte values")),
            JsonValue::Object(_) => {
                if let Some(i) = v.get("int").and_then(JsonValue::as_i64) {
                    Ok(SqlValue::Int(i))
                } else if let Some(f) = v.get("real").and_then(JsonValue::as_f64) {
                    Ok(SqlValue::Real(f))
                } else {
                    Err(err("parse: unknown tagged cell value"))
                }
            }
            other => Err(err(format!("parse: unexpected cell value {other:?}"))),
        }
    }
}

impl SqlValue {
    /// True if the value is acceptable in a column of `t` (NULL always is).
    pub fn matches(&self, t: ColumnType) -> bool {
        matches!(
            (self, t),
            (SqlValue::Null, _)
                | (SqlValue::Int(_), ColumnType::Integer)
                | (SqlValue::Real(_), ColumnType::Real)
                | (SqlValue::Int(_), ColumnType::Real)
                | (SqlValue::Text(_), ColumnType::Text)
                | (SqlValue::Blob(_), ColumnType::Blob)
        )
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SqlValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view (ints widen).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            SqlValue::Real(v) => Some(*v),
            SqlValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SqlValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Blob view.
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            SqlValue::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Total order used by ORDER BY: NULL < numbers < text < blob.
    fn order_key(&self) -> (u8, OrdKey<'_>) {
        match self {
            SqlValue::Null => (0, OrdKey::Unit),
            SqlValue::Int(v) => (1, OrdKey::Num(*v as f64)),
            SqlValue::Real(v) => (1, OrdKey::Num(*v)),
            SqlValue::Text(s) => (2, OrdKey::Text(s)),
            SqlValue::Blob(b) => (3, OrdKey::Blob(b)),
        }
    }

    /// SQL-style comparison; mixed numeric types compare numerically.
    pub fn cmp_sql(&self, other: &SqlValue) -> std::cmp::Ordering {
        let (ka, va) = self.order_key();
        let (kb, vb) = other.order_key();
        ka.cmp(&kb).then_with(|| va.cmp_with(&vb))
    }
}

enum OrdKey<'a> {
    Unit,
    Num(f64),
    Text(&'a str),
    Blob(&'a [u8]),
}

impl<'a> OrdKey<'a> {
    fn cmp_with(&self, other: &OrdKey<'a>) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (OrdKey::Unit, OrdKey::Unit) => Ordering::Equal,
            (OrdKey::Num(a), OrdKey::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (OrdKey::Text(a), OrdKey::Text(b)) => a.cmp(b),
            (OrdKey::Blob(a), OrdKey::Blob(b)) => a.cmp(b),
            _ => Ordering::Equal, // unreachable: kinds already ordered
        }
    }
}

impl From<i64> for SqlValue {
    fn from(v: i64) -> Self {
        SqlValue::Int(v)
    }
}
impl From<u64> for SqlValue {
    fn from(v: u64) -> Self {
        SqlValue::Int(v as i64)
    }
}
impl From<f64> for SqlValue {
    fn from(v: f64) -> Self {
        SqlValue::Real(v)
    }
}
impl From<&str> for SqlValue {
    fn from(v: &str) -> Self {
        SqlValue::Text(v.to_string())
    }
}
impl From<String> for SqlValue {
    fn from(v: String) -> Self {
        SqlValue::Text(v)
    }
}
impl From<Vec<u8>> for SqlValue {
    fn from(v: Vec<u8>) -> Self {
        SqlValue::Blob(v)
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Type affinity.
    pub ctype: ColumnType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ctype: ColumnType) -> Self {
        Self {
            name: name.into(),
            ctype,
        }
    }
}

/// A row: one value per column of the owning table.
pub type Row = Vec<SqlValue>;

/// Hashable key of an indexable cell value (integers and text only; the
/// query planner falls back to a scan for other types).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexKey {
    Int(i64),
    Text(String),
}

impl IndexKey {
    fn of(v: &SqlValue) -> Option<IndexKey> {
        match v {
            SqlValue::Int(i) => Some(IndexKey::Int(*i)),
            SqlValue::Text(t) => Some(IndexKey::Text(t.clone())),
            _ => None,
        }
    }
}

/// Row filter used by queries. Composable and serializable in spirit —
/// the subset needed by the conditioning/analysis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// Column equals value.
    Eq(String, SqlValue),
    /// Column less than value (SQL ordering).
    Lt(String, SqlValue),
    /// Column greater than value (SQL ordering).
    Gt(String, SqlValue),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `a AND b` without the boxing noise.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `a OR b` without the boxing noise.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    fn eval(&self, table: &Table, row: &Row) -> Result<bool, StoreError> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(col, v) => {
                let idx = table.column_index(col)?;
                row[idx].cmp_sql(v) == std::cmp::Ordering::Equal
            }
            Predicate::Lt(col, v) => {
                let idx = table.column_index(col)?;
                row[idx].cmp_sql(v) == std::cmp::Ordering::Less
            }
            Predicate::Gt(col, v) => {
                let idx = table.column_index(col)?;
                row[idx].cmp_sql(v) == std::cmp::Ordering::Greater
            }
            Predicate::And(a, b) => a.eval(table, row)? && b.eval(table, row)?,
            Predicate::Or(a, b) => a.eval(table, row)? || b.eval(table, row)?,
            Predicate::Not(p) => !p.eval(table, row)?,
        })
    }
}

/// A table: schema plus rows in insertion order, with optional hash
/// indexes on integer/text columns ("accelerate data access and
/// extraction methods", §IV-F).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Column definitions.
    pub columns: Vec<Column>,
    rows: Vec<Row>,
    #[serde(default)]
    indexed_columns: Vec<String>,
    /// column index → key → row positions; rebuilt after deserialization.
    #[serde(skip)]
    indexes: std::collections::HashMap<usize, std::collections::HashMap<IndexKey, Vec<usize>>>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        // Indexes are derived state; equality is schema + data.
        self.columns == other.columns
            && self.rows == other.rows
            && self.indexed_columns == other.indexed_columns
    }
}

impl Table {
    /// Creates an empty table with the given columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Self {
            columns,
            rows: Vec::new(),
            indexed_columns: Vec::new(),
            indexes: Default::default(),
        }
    }

    /// Creates a hash index on an integer/text column; subsequent `Eq`
    /// lookups on it avoid the full scan. Idempotent.
    pub fn create_index(&mut self, column: &str) -> Result<(), StoreError> {
        let idx = self.column_index(column)?;
        match self.columns[idx].ctype {
            ColumnType::Integer | ColumnType::Text => {}
            other => return Err(err(format!("cannot index {other:?} column '{column}'"))),
        }
        if !self.indexed_columns.contains(&column.to_string()) {
            self.indexed_columns.push(column.to_string());
        }
        self.rebuild_index(idx);
        Ok(())
    }

    /// True if the column has a hash index.
    pub fn is_indexed(&self, column: &str) -> bool {
        self.indexed_columns.iter().any(|c| c == column)
    }

    fn rebuild_index(&mut self, col: usize) {
        let mut map: std::collections::HashMap<IndexKey, Vec<usize>> = Default::default();
        for (pos, row) in self.rows.iter().enumerate() {
            if let Some(key) = IndexKey::of(&row[col]) {
                map.entry(key).or_default().push(pos);
            }
        }
        self.indexes.insert(col, map);
    }

    fn to_json(&self) -> JsonValue {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                JsonValue::Object(vec![
                    ("name".into(), JsonValue::str(&c.name)),
                    ("ctype".into(), JsonValue::str(c.ctype.type_name())),
                ])
            })
            .collect();
        let indexed = self.indexed_columns.iter().map(JsonValue::str).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| JsonValue::Array(r.iter().map(SqlValue::to_json).collect()))
            .collect();
        JsonValue::Object(vec![
            ("columns".into(), JsonValue::Array(columns)),
            ("indexed".into(), JsonValue::Array(indexed)),
            ("rows".into(), JsonValue::Array(rows)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, StoreError> {
        let columns = v
            .get("columns")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| err("parse: table without 'columns'"))?
            .iter()
            .map(|c| {
                let name = c
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| err("parse: column without name"))?;
                let ctype = c
                    .get("ctype")
                    .and_then(JsonValue::as_str)
                    .and_then(ColumnType::parse_name)
                    .ok_or_else(|| err(format!("parse: bad column type for '{name}'")))?;
                Ok(Column::new(name, ctype))
            })
            .collect::<Result<Vec<_>, StoreError>>()?;
        let mut table = Table::new(columns);
        for row in v
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| err("parse: table without 'rows'"))?
        {
            let row = row
                .as_array()
                .ok_or_else(|| err("parse: row is not an array"))?
                .iter()
                .map(SqlValue::from_json)
                .collect::<Result<Row, StoreError>>()?;
            table.insert(row)?;
        }
        if let Some(indexed) = v.get("indexed").and_then(JsonValue::as_array) {
            for col in indexed {
                let col = col
                    .as_str()
                    .ok_or_else(|| err("parse: indexed column is not a string"))?;
                table.create_index(col)?;
            }
        }
        Ok(table)
    }

    /// Rebuilds all declared indexes (after deserialization).
    pub fn rebuild_indexes(&mut self) {
        let cols: Vec<usize> = self
            .indexed_columns
            .clone()
            .iter()
            .filter_map(|c| self.column_index(c).ok())
            .collect();
        for col in cols {
            self.rebuild_index(col);
        }
    }

    /// Index lookup for an `Eq` predicate head, if applicable.
    fn index_candidates(&self, predicate: &Predicate) -> Option<&[usize]> {
        let (col_name, value) = match predicate {
            Predicate::Eq(c, v) => (c, v),
            Predicate::And(a, _) => {
                if let Predicate::Eq(c, v) = a.as_ref() {
                    (c, v)
                } else {
                    return None;
                }
            }
            _ => return None,
        };
        let col = self.column_index(col_name).ok()?;
        let map = self.indexes.get(&col)?;
        let key = IndexKey::of(value)?;
        Some(map.get(&key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize, StoreError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| err(format!("no such column: {name}")))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Inserts a row after checking arity and types.
    pub fn insert(&mut self, row: Row) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(err(format!(
                "arity mismatch: {} values for {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !v.matches(c.ctype) {
                return Err(err(format!(
                    "type mismatch in column '{}': {:?} is not {:?}",
                    c.name, v, c.ctype
                )));
            }
        }
        let pos = self.rows.len();
        for (&col, map) in &mut self.indexes {
            if let Some(key) = IndexKey::of(&row[col]) {
                map.entry(key).or_default().push(pos);
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Filtered selection, optionally ordered by a column. Uses a hash
    /// index when the predicate is (or starts with) an `Eq` on an indexed
    /// column.
    pub fn select(
        &self,
        predicate: &Predicate,
        order_by: Option<&str>,
    ) -> Result<Vec<&Row>, StoreError> {
        let mut out = Vec::new();
        match self.index_candidates(predicate) {
            Some(candidates) => {
                for &pos in candidates {
                    let row = &self.rows[pos];
                    if predicate.eval(self, row)? {
                        out.push(row);
                    }
                }
            }
            None => {
                for row in &self.rows {
                    if predicate.eval(self, row)? {
                        out.push(row);
                    }
                }
            }
        }
        if let Some(col) = order_by {
            let idx = self.column_index(col)?;
            out.sort_by(|a, b| a[idx].cmp_sql(&b[idx]));
        }
        Ok(out)
    }

    /// Values of one column, filtered.
    pub fn column_values(
        &self,
        column: &str,
        predicate: &Predicate,
    ) -> Result<Vec<SqlValue>, StoreError> {
        let idx = self.column_index(column)?;
        Ok(self
            .select(predicate, None)?
            .into_iter()
            .map(|r| r[idx].clone())
            .collect())
    }

    /// Number of matching rows.
    pub fn count(&self, predicate: &Predicate) -> Result<usize, StoreError> {
        Ok(self.select(predicate, None)?.len())
    }

    /// Numeric aggregate over a column (NULLs and non-numeric cells are
    /// skipped). Returns `None` when no numeric value matched.
    pub fn aggregate(
        &self,
        column: &str,
        predicate: &Predicate,
        agg: Aggregate,
    ) -> Result<Option<f64>, StoreError> {
        let values: Vec<f64> = self
            .column_values(column, predicate)?
            .iter()
            .filter_map(SqlValue::as_real)
            .collect();
        if values.is_empty() {
            return Ok(None);
        }
        Ok(Some(match agg {
            Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Sum => values.iter().sum(),
            Aggregate::Avg => values.iter().sum::<f64>() / values.len() as f64,
        }))
    }

    /// Distinct values of a column, in SQL order.
    pub fn distinct(
        &self,
        column: &str,
        predicate: &Predicate,
    ) -> Result<Vec<SqlValue>, StoreError> {
        let mut values = self.column_values(column, predicate)?;
        values.sort_by(SqlValue::cmp_sql);
        values.dedup_by(|a, b| a.cmp_sql(b) == std::cmp::Ordering::Equal);
        Ok(values)
    }
}

/// Aggregation functions for [`Table::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
}

/// A named collection of tables — one experiment package (level 3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table; errors if the name is taken.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<Column>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(err(format!("table exists: {name}")));
        }
        self.tables.insert(name, Table::new(columns));
        Ok(())
    }

    /// Immutable table access.
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| err(format!("no such table: {name}")))
    }

    /// Mutable table access.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| err(format!("no such table: {name}")))
    }

    /// Inserts a row into a named table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), StoreError> {
        self.table_mut(table)?.insert(row)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Persists the whole database to one file (JSON), written atomically
    /// so a crash mid-save never leaves a torn package behind.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let tables = self
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.to_json()))
            .collect();
        let doc = JsonValue::Object(vec![("tables".into(), JsonValue::Object(tables))]);
        let bytes = doc.to_string().into_bytes();
        atomic_write(path, &bytes)?;
        if excovery_obs::enabled() {
            let reg = excovery_obs::global();
            reg.counter("store_writes_total", &[("level", "3")]).inc();
            reg.counter("store_bytes_written_total", &[("level", "3")])
                .add(bytes.len() as u64);
        }
        Ok(())
    }

    /// Loads a database from a file written by [`Self::save`]; declared
    /// indexes are rebuilt.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let json = std::fs::read_to_string(path).map_err(|e| err(format!("read {path:?}: {e}")))?;
        let doc = JsonValue::parse(&json).map_err(|e| err(format!("parse: {e}")))?;
        let tables = doc
            .get("tables")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| err("parse: missing 'tables' object"))?;
        let mut db = Self::new();
        for (name, t) in tables {
            db.tables.insert(name.clone(), Table::from_json(t)?);
        }
        for table in db.tables.values_mut() {
            table.rebuild_indexes();
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new(vec![
            Column::new("name", ColumnType::Text),
            Column::new("age", ColumnType::Integer),
            Column::new("height", ColumnType::Real),
        ]);
        t.insert(vec!["ada".into(), SqlValue::Int(36), SqlValue::Real(1.70)])
            .unwrap();
        t.insert(vec!["bob".into(), SqlValue::Int(25), SqlValue::Real(1.85)])
            .unwrap();
        t.insert(vec!["cyd".into(), SqlValue::Null, SqlValue::Real(1.60)])
            .unwrap();
        t
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut t = people();
        assert!(t.insert(vec!["x".into()]).is_err(), "arity");
        assert!(
            t.insert(vec![
                SqlValue::Int(1),
                SqlValue::Int(1),
                SqlValue::Real(1.0)
            ])
            .is_err(),
            "type"
        );
        assert!(
            t.insert(vec![SqlValue::Null, SqlValue::Null, SqlValue::Null])
                .is_ok(),
            "NULLs"
        );
        // Int accepted into Real column (affinity).
        assert!(t
            .insert(vec!["dee".into(), SqlValue::Int(40), SqlValue::Int(2)])
            .is_ok());
    }

    #[test]
    fn select_with_predicates() {
        let t = people();
        let adults = t
            .select(&Predicate::Gt("age".into(), SqlValue::Int(30)), None)
            .unwrap();
        assert_eq!(adults.len(), 1);
        assert_eq!(adults[0][0].as_text(), Some("ada"));

        let both = t
            .select(
                &Predicate::Eq("name".into(), "bob".into())
                    .or(Predicate::Eq("name".into(), "cyd".into())),
                Some("name"),
            )
            .unwrap();
        assert_eq!(both.len(), 2);
        assert_eq!(both[0][0].as_text(), Some("bob"));

        let not_bob = t
            .select(
                &Predicate::Not(Box::new(Predicate::Eq("name".into(), "bob".into()))),
                None,
            )
            .unwrap();
        assert_eq!(not_bob.len(), 2);
    }

    #[test]
    fn nulls_sort_first_and_compare_unequal() {
        let t = people();
        let sorted = t.select(&Predicate::True, Some("age")).unwrap();
        assert_eq!(sorted[0][1], SqlValue::Null);
        // NULL = NULL is true under cmp_sql (simplified tri-state logic).
        let nulls = t
            .count(&Predicate::Eq("age".into(), SqlValue::Null))
            .unwrap();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn unknown_column_is_error() {
        let t = people();
        assert!(t
            .select(&Predicate::Eq("nope".into(), SqlValue::Int(1)), None)
            .is_err());
        assert!(t.select(&Predicate::True, Some("nope")).is_err());
    }

    #[test]
    fn column_values_and_count() {
        let t = people();
        let names = t.column_values("name", &Predicate::True).unwrap();
        assert_eq!(names.len(), 3);
        assert_eq!(
            t.count(&Predicate::Lt("height".into(), SqlValue::Real(1.8)))
                .unwrap(),
            2
        );
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            SqlValue::Int(2).cmp_sql(&SqlValue::Real(2.0)),
            std::cmp::Ordering::Equal
        );
        assert_eq!(
            SqlValue::Int(1).cmp_sql(&SqlValue::Real(1.5)),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn database_create_insert_query() {
        let mut db = Database::new();
        db.create_table("t", vec![Column::new("x", ColumnType::Integer)])
            .unwrap();
        assert!(db.create_table("t", vec![]).is_err(), "duplicate");
        db.insert("t", vec![SqlValue::Int(5)]).unwrap();
        assert_eq!(db.table("t").unwrap().len(), 1);
        assert!(db.table("missing").is_err());
        assert!(db.insert("missing", vec![]).is_err());
        assert_eq!(db.table_names(), vec!["t"]);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("excovery-store-test-{}", std::process::id()));
        let path = dir.join("db.json");
        let mut db = Database::new();
        db.create_table(
            "Packets",
            vec![
                Column::new("RunID", ColumnType::Integer),
                Column::new("Data", ColumnType::Blob),
            ],
        )
        .unwrap();
        db.insert(
            "Packets",
            vec![SqlValue::Int(1), SqlValue::Blob(vec![1, 2, 255])],
        )
        .unwrap();
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        assert_eq!(loaded, db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_errors_on_missing_or_corrupt() {
        assert!(Database::load(Path::new("/nonexistent/x.json")).is_err());
        let dir = std::env::temp_dir().join(format!("excovery-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(Database::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn aggregates_and_distinct() {
        let t = people();
        let avg = t
            .aggregate("age", &Predicate::True, Aggregate::Avg)
            .unwrap()
            .unwrap();
        assert!(
            (avg - 30.5).abs() < 1e-12,
            "mean of 36 and 25 (NULL skipped)"
        );
        assert_eq!(
            t.aggregate("age", &Predicate::True, Aggregate::Min)
                .unwrap(),
            Some(25.0)
        );
        assert_eq!(
            t.aggregate("age", &Predicate::True, Aggregate::Max)
                .unwrap(),
            Some(36.0)
        );
        assert_eq!(
            t.aggregate("age", &Predicate::True, Aggregate::Sum)
                .unwrap(),
            Some(61.0)
        );
        // Empty match yields None.
        assert_eq!(
            t.aggregate(
                "age",
                &Predicate::Gt("age".into(), SqlValue::Int(99)),
                Aggregate::Avg
            )
            .unwrap(),
            None
        );
        // Distinct on text column.
        let names = t.distinct("name", &Predicate::True).unwrap();
        assert_eq!(names.len(), 3);
        // Text aggregate yields None (non-numeric skipped).
        assert_eq!(
            t.aggregate("name", &Predicate::True, Aggregate::Avg)
                .unwrap(),
            None
        );
    }

    #[test]
    fn index_accelerated_select_matches_scan() {
        let mut t = Table::new(vec![
            Column::new("run", ColumnType::Integer),
            Column::new("name", ColumnType::Text),
        ]);
        for i in 0..500i64 {
            t.insert(vec![SqlValue::Int(i % 10), format!("n{}", i % 7).into()])
                .unwrap();
        }
        let scan: Vec<Row> = t
            .select(&Predicate::Eq("run".into(), SqlValue::Int(3)), None)
            .unwrap()
            .into_iter()
            .cloned()
            .collect();
        t.create_index("run").unwrap();
        assert!(t.is_indexed("run"));
        let indexed: Vec<Row> = t
            .select(&Predicate::Eq("run".into(), SqlValue::Int(3)), None)
            .unwrap()
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(scan, indexed);
        // And with a compound predicate headed by the indexed Eq.
        let compound = Predicate::Eq("run".into(), SqlValue::Int(3))
            .and(Predicate::Eq("name".into(), "n3".into()));
        let mut t2 = t.clone();
        t2.indexed_columns.clear();
        t2.indexes.clear();
        assert_eq!(
            t.select(&compound, None).unwrap(),
            t2.select(&compound, None).unwrap()
        );
        // Inserts after index creation are covered.
        t.insert(vec![SqlValue::Int(3), "fresh".into()]).unwrap();
        let after = t
            .select(&Predicate::Eq("run".into(), SqlValue::Int(3)), None)
            .unwrap();
        assert_eq!(after.len(), indexed.len() + 1);
        // Missing key returns empty fast.
        assert!(t
            .select(&Predicate::Eq("run".into(), SqlValue::Int(999)), None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn index_on_unindexable_type_is_rejected() {
        let mut t = Table::new(vec![Column::new("x", ColumnType::Real)]);
        assert!(t.create_index("x").is_err());
        assert!(t.create_index("missing").is_err());
    }

    #[test]
    fn indexes_survive_persistence() {
        let dir = std::env::temp_dir().join(format!("excovery-idx-{}", std::process::id()));
        let path = dir.join("db.json");
        let mut db = Database::new();
        db.create_table("t", vec![Column::new("k", ColumnType::Integer)])
            .unwrap();
        db.table_mut("t").unwrap().create_index("k").unwrap();
        for i in 0..50 {
            db.insert("t", vec![SqlValue::Int(i % 5)]).unwrap();
        }
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        assert_eq!(loaded, db);
        let t = loaded.table("t").unwrap();
        assert!(t.is_indexed("k"));
        assert_eq!(
            t.select(&Predicate::Eq("k".into(), SqlValue::Int(2)), None)
                .unwrap()
                .len(),
            10
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn value_conversions() {
        assert_eq!(SqlValue::from(5i64), SqlValue::Int(5));
        assert_eq!(SqlValue::from(5u64), SqlValue::Int(5));
        assert_eq!(SqlValue::from(2.5), SqlValue::Real(2.5));
        assert_eq!(SqlValue::from("x"), SqlValue::Text("x".into()));
        assert_eq!(SqlValue::from(vec![1u8]), SqlValue::Blob(vec![1]));
        assert_eq!(SqlValue::Int(3).as_real(), Some(3.0));
        assert_eq!(SqlValue::Blob(vec![7]).as_blob(), Some(&[7u8][..]));
    }
}
