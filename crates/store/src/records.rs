//! Typed views of the Table I rows.
//!
//! The engine stores untyped rows; these structs are the typed interface
//! the execution engine writes through and the analysis reads through.
//! Times are nanoseconds on the *common* (conditioned) time base, except
//! `RunInfoRow::time_diff_ns`, which is the measured node-clock offset.

use crate::engine::{Database, Predicate, Row, SqlValue, StoreError};

/// The single `ExperimentInfo` tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentInfo {
    /// The complete abstract experiment description (XML).
    pub exp_xml: String,
    /// ExCovery version that executed the experiment.
    pub ee_version: String,
    /// Descriptive name.
    pub name: String,
    /// Free comment.
    pub comment: String,
}

impl ExperimentInfo {
    /// Writes the tuple (exactly one per database).
    pub fn insert(&self, db: &mut Database) -> Result<(), StoreError> {
        if !db.table("ExperimentInfo")?.is_empty() {
            return Err(StoreError("ExperimentInfo already written".into()));
        }
        db.insert(
            "ExperimentInfo",
            vec![
                self.exp_xml.clone().into(),
                self.ee_version.clone().into(),
                self.name.clone().into(),
                self.comment.clone().into(),
            ],
        )
    }

    /// Reads the tuple back.
    pub fn read(db: &Database) -> Result<Self, StoreError> {
        let t = db.table("ExperimentInfo")?;
        let row = t
            .rows()
            .first()
            .ok_or_else(|| StoreError("ExperimentInfo is empty".into()))?;
        Ok(Self {
            exp_xml: text(&row[0])?,
            ee_version: text(&row[1])?,
            name: text(&row[2])?,
            comment: text(&row[3])?,
        })
    }
}

fn text(v: &SqlValue) -> Result<String, StoreError> {
    v.as_text()
        .map(str::to_string)
        .ok_or_else(|| StoreError(format!("expected text, found {v:?}")))
}

fn int(v: &SqlValue) -> Result<i64, StoreError> {
    v.as_int()
        .ok_or_else(|| StoreError(format!("expected int, found {v:?}")))
}

/// One `Events` row: a recorded state change (§IV-B1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRow {
    /// Run the event belongs to.
    pub run_id: u64,
    /// Node the event occurred on (platform id).
    pub node_id: String,
    /// Common-time-base timestamp, nanoseconds.
    pub common_time_ns: i64,
    /// Event name (e.g. `sd_service_add`).
    pub event_type: String,
    /// Flattened `key=value` parameter list, `;`-separated.
    pub parameter: String,
}

impl EventRow {
    /// Encodes event parameters into the flat `Parameter` attribute.
    pub fn encode_params(params: &[(String, String)]) -> String {
        params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Decodes the flat `Parameter` attribute.
    pub fn decode_params(parameter: &str) -> Vec<(String, String)> {
        if parameter.is_empty() {
            return Vec::new();
        }
        parameter
            .split(';')
            .filter_map(|kv| {
                kv.split_once('=')
                    .map(|(k, v)| (k.to_string(), v.to_string()))
            })
            .collect()
    }

    /// Inserts into the `Events` table.
    pub fn insert(&self, db: &mut Database) -> Result<(), StoreError> {
        db.insert(
            "Events",
            vec![
                SqlValue::Int(self.run_id as i64),
                self.node_id.clone().into(),
                SqlValue::Int(self.common_time_ns),
                self.event_type.clone().into(),
                self.parameter.clone().into(),
            ],
        )
    }

    fn from_row(row: &Row) -> Result<Self, StoreError> {
        Ok(Self {
            run_id: int(&row[0])? as u64,
            node_id: text(&row[1])?,
            common_time_ns: int(&row[2])?,
            event_type: text(&row[3])?,
            parameter: text(&row[4])?,
        })
    }

    /// Reads all events of a run, ordered by common time.
    pub fn read_run(db: &Database, run_id: u64) -> Result<Vec<Self>, StoreError> {
        db.table("Events")?
            .select(
                &Predicate::Eq("RunID".into(), SqlValue::Int(run_id as i64)),
                Some("CommonTime"),
            )?
            .into_iter()
            .map(Self::from_row)
            .collect()
    }

    /// Reads all events of a run in recording (insertion) order.
    ///
    /// `read_run` orders by conditioned common time, which can swap two
    /// causally ordered cross-node events whose true gap is smaller than
    /// the sync-error residual left by conditioning. Causal assertions
    /// must use this order instead.
    pub fn read_run_recorded(db: &Database, run_id: u64) -> Result<Vec<Self>, StoreError> {
        db.table("Events")?
            .select(
                &Predicate::Eq("RunID".into(), SqlValue::Int(run_id as i64)),
                None,
            )?
            .into_iter()
            .map(Self::from_row)
            .collect()
    }

    /// Reads all events, ordered by run then common time.
    pub fn read_all(db: &Database) -> Result<Vec<Self>, StoreError> {
        let mut all: Vec<Self> = db
            .table("Events")?
            .select(&Predicate::True, None)?
            .into_iter()
            .map(Self::from_row)
            .collect::<Result<_, _>>()?;
        all.sort_by_key(|e| (e.run_id, e.common_time_ns));
        Ok(all)
    }
}

/// One `Packets` row: a captured packet (§IV-B2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRow {
    /// Run the capture belongs to.
    pub run_id: u64,
    /// Capturing node (platform id).
    pub node_id: String,
    /// Common-time-base timestamp, nanoseconds.
    pub common_time_ns: i64,
    /// Originating node of the packet.
    pub src_node_id: String,
    /// Raw packet data.
    pub data: Vec<u8>,
}

impl PacketRow {
    /// Inserts into the `Packets` table.
    pub fn insert(&self, db: &mut Database) -> Result<(), StoreError> {
        db.insert(
            "Packets",
            vec![
                SqlValue::Int(self.run_id as i64),
                self.node_id.clone().into(),
                SqlValue::Int(self.common_time_ns),
                self.src_node_id.clone().into(),
                self.data.clone().into(),
            ],
        )
    }

    fn from_row(row: &Row) -> Result<Self, StoreError> {
        Ok(Self {
            run_id: int(&row[0])? as u64,
            node_id: text(&row[1])?,
            common_time_ns: int(&row[2])?,
            src_node_id: text(&row[3])?,
            data: row[4]
                .as_blob()
                .ok_or_else(|| StoreError("Data is not a blob".into()))?
                .to_vec(),
        })
    }

    /// Reads all captures of a run, ordered by common time.
    pub fn read_run(db: &Database, run_id: u64) -> Result<Vec<Self>, StoreError> {
        db.table("Packets")?
            .select(
                &Predicate::Eq("RunID".into(), SqlValue::Int(run_id as i64)),
                Some("CommonTime"),
            )?
            .into_iter()
            .map(Self::from_row)
            .collect()
    }
}

/// One `RunInfos` row: start time and clock offset of a node in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunInfoRow {
    /// Run identifier.
    pub run_id: u64,
    /// Node (platform id).
    pub node_id: String,
    /// Run start on the common time base, nanoseconds.
    pub start_time_ns: i64,
    /// Measured node-clock offset to the reference clock, nanoseconds.
    pub time_diff_ns: i64,
}

impl RunInfoRow {
    /// Inserts into the `RunInfos` table.
    pub fn insert(&self, db: &mut Database) -> Result<(), StoreError> {
        db.insert(
            "RunInfos",
            vec![
                SqlValue::Int(self.run_id as i64),
                self.node_id.clone().into(),
                SqlValue::Int(self.start_time_ns),
                SqlValue::Int(self.time_diff_ns),
            ],
        )
    }

    fn from_row(row: &Row) -> Result<Self, StoreError> {
        Ok(Self {
            run_id: int(&row[0])? as u64,
            node_id: text(&row[1])?,
            start_time_ns: int(&row[2])?,
            time_diff_ns: int(&row[3])?,
        })
    }

    /// Reads all run infos, ordered by run id.
    pub fn read_all(db: &Database) -> Result<Vec<Self>, StoreError> {
        db.table("RunInfos")?
            .select(&Predicate::True, Some("RunID"))?
            .into_iter()
            .map(Self::from_row)
            .collect()
    }

    /// Distinct run ids present.
    pub fn run_ids(db: &Database) -> Result<Vec<u64>, StoreError> {
        let mut ids: Vec<u64> = Self::read_all(db)?.into_iter().map(|r| r.run_id).collect();
        ids.dedup();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_level3_database;

    #[test]
    fn experiment_info_roundtrip_and_singleton() {
        let mut db = create_level3_database();
        let info = ExperimentInfo {
            exp_xml: "<experiment name=\"x\"/>".into(),
            ee_version: crate::schema::EE_VERSION.into(),
            name: "x".into(),
            comment: "demo".into(),
        };
        info.insert(&mut db).unwrap();
        assert_eq!(ExperimentInfo::read(&db).unwrap(), info);
        assert!(info.insert(&mut db).is_err(), "only one tuple allowed");
    }

    #[test]
    fn experiment_info_read_empty_errors() {
        let db = create_level3_database();
        assert!(ExperimentInfo::read(&db).is_err());
    }

    #[test]
    fn event_rows_ordered_by_time_within_run() {
        let mut db = create_level3_database();
        for (run, t, name) in [(0u64, 30i64, "b"), (0, 10, "a"), (1, 5, "c"), (0, 20, "m")] {
            EventRow {
                run_id: run,
                node_id: "t9-105".into(),
                common_time_ns: t,
                event_type: name.into(),
                parameter: String::new(),
            }
            .insert(&mut db)
            .unwrap();
        }
        let run0 = EventRow::read_run(&db, 0).unwrap();
        let names: Vec<&str> = run0.iter().map(|e| e.event_type.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "b"]);
        assert_eq!(EventRow::read_run(&db, 1).unwrap().len(), 1);
        assert_eq!(EventRow::read_all(&db).unwrap().len(), 4);
    }

    #[test]
    fn param_encoding_roundtrip() {
        let params = vec![
            ("service".to_string(), "sm-A".to_string()),
            ("stype".to_string(), "_http._tcp".to_string()),
        ];
        let flat = EventRow::encode_params(&params);
        assert_eq!(flat, "service=sm-A;stype=_http._tcp");
        assert_eq!(EventRow::decode_params(&flat), params);
        assert!(EventRow::decode_params("").is_empty());
    }

    #[test]
    fn packet_rows_roundtrip() {
        let mut db = create_level3_database();
        PacketRow {
            run_id: 3,
            node_id: "t9-105".into(),
            common_time_ns: 777,
            src_node_id: "t9-157".into(),
            data: vec![1, 2, 3],
        }
        .insert(&mut db)
        .unwrap();
        let read = PacketRow::read_run(&db, 3).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].data, vec![1, 2, 3]);
        assert!(PacketRow::read_run(&db, 99).unwrap().is_empty());
    }

    #[test]
    fn run_info_rows_and_ids() {
        let mut db = create_level3_database();
        for run in [0u64, 0, 1, 2] {
            RunInfoRow {
                run_id: run,
                node_id: format!("n{run}"),
                start_time_ns: run as i64 * 100,
                time_diff_ns: -5_000,
            }
            .insert(&mut db)
            .unwrap();
        }
        assert_eq!(RunInfoRow::read_all(&db).unwrap().len(), 4);
        assert_eq!(RunInfoRow::run_ids(&db).unwrap(), vec![0, 1, 2]);
    }
}
