//! Property tests for the embedded relational engine.

use excovery_store::{Column, ColumnType, Database, Predicate, SqlValue, Table};
use proptest::prelude::*;

fn value_strategy(t: ColumnType) -> BoxedStrategy<SqlValue> {
    let typed = match t {
        ColumnType::Integer => any::<i64>().prop_map(SqlValue::Int).boxed(),
        ColumnType::Real => (-1e9f64..1e9).prop_map(SqlValue::Real).boxed(),
        ColumnType::Text => "[ -~]{0,16}".prop_map(SqlValue::Text).boxed(),
        ColumnType::Blob => prop::collection::vec(any::<u8>(), 0..16)
            .prop_map(SqlValue::Blob)
            .boxed(),
    };
    prop_oneof![9 => typed, 1 => Just(SqlValue::Null)].boxed()
}

fn schema_strategy() -> impl Strategy<Value = Vec<Column>> {
    prop::collection::vec(
        prop_oneof![
            Just(ColumnType::Integer),
            Just(ColumnType::Real),
            Just(ColumnType::Text),
            Just(ColumnType::Blob),
        ],
        1..5,
    )
    .prop_map(|types| {
        types
            .into_iter()
            .enumerate()
            .map(|(i, t)| Column::new(format!("c{i}"), t))
            .collect()
    })
}

fn table_strategy() -> impl Strategy<Value = Table> {
    schema_strategy().prop_flat_map(|cols| {
        let row_strategies: Vec<BoxedStrategy<SqlValue>> =
            cols.iter().map(|c| value_strategy(c.ctype)).collect();
        prop::collection::vec(row_strategies, 0..24).prop_map(move |rows| {
            let mut t = Table::new(cols.clone());
            for row in rows {
                t.insert(row).expect("typed row");
            }
            t
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Typed inserts always succeed and preserve insertion order.
    #[test]
    fn inserts_preserve_order(t in table_strategy()) {
        let all = t.select(&Predicate::True, None).unwrap();
        prop_assert_eq!(all.len(), t.len());
        for (a, b) in all.iter().zip(t.rows()) {
            prop_assert_eq!(*a, b);
        }
    }

    /// Predicate algebra: Not(p) selects the complement, p AND True = p,
    /// p OR Not(p) = everything.
    #[test]
    fn predicate_algebra(t in table_strategy(), v in any::<i64>()) {
        let col = t.columns[0].name.clone();
        let p = Predicate::Lt(col.clone(), SqlValue::Int(v));
        let not_p = Predicate::Not(Box::new(p.clone()));
        let selected = t.count(&p).unwrap();
        let complement = t.count(&not_p).unwrap();
        prop_assert_eq!(selected + complement, t.len());
        prop_assert_eq!(
            t.count(&p.clone().and(Predicate::True)).unwrap(),
            selected
        );
        prop_assert_eq!(t.count(&p.clone().or(not_p)).unwrap(), t.len());
    }

    /// ORDER BY yields a non-decreasing column under SQL comparison.
    #[test]
    fn order_by_sorts(t in table_strategy()) {
        let col = t.columns[0].name.clone();
        let idx = t.column_index(&col).unwrap();
        let sorted = t.select(&Predicate::True, Some(&col)).unwrap();
        for w in sorted.windows(2) {
            prop_assert_ne!(
                w[0][idx].cmp_sql(&w[1][idx]),
                std::cmp::Ordering::Greater,
                "rows out of order"
            );
        }
    }

    /// A database survives save/load byte-identically.
    #[test]
    fn database_persistence_roundtrip(t in table_strategy(), tag in 0u32..1_000_000) {
        let mut db = Database::new();
        db.create_table("t", t.columns.clone()).unwrap();
        for row in t.rows() {
            db.insert("t", row.clone()).unwrap();
        }
        let path = std::env::temp_dir()
            .join(format!("excovery-prop-{}-{tag}.expdb", std::process::id()));
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded, db);
    }

    /// Eq with a value equals itself: selecting by a cell value always
    /// includes the row the value came from.
    #[test]
    fn eq_is_reflexive(t in table_strategy()) {
        if t.is_empty() {
            return Ok(());
        }
        let col = &t.columns[0].name;
        let needle = t.rows()[0][0].clone();
        let hits = t.count(&Predicate::Eq(col.clone(), needle)).unwrap();
        prop_assert!(hits >= 1);
    }
}
