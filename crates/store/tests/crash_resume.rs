//! Crash-resume scenarios across the public storage API: every property a
//! resuming master relies on must hold through a process boundary, i.e.
//! after re-`open`ing the hierarchy from disk with no shared state.

use excovery_store::engine::{Column, ColumnType, Database, SqlValue};
use excovery_store::level2::Level2Store;
use std::path::PathBuf;

fn unique_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "excovery-crash-resume-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The resume decision (`first_incomplete_run`) must be derivable purely
/// from disk: a fresh handle sees exactly what the crashed master left.
#[test]
fn resume_point_survives_reopen() {
    let root = unique_root("reopen");
    {
        let l2 = Level2Store::open(&root).unwrap();
        for run in 0..3u64 {
            l2.put_run(run, "node-a", "events.json", b"[]").unwrap();
        }
        l2.mark_run_complete(0).unwrap();
        l2.mark_run_complete(1).unwrap();
        // run 2 has data but no marker: the crash landed mid-run.
    }
    let l2 = Level2Store::open(&root).unwrap();
    assert_eq!(l2.run_ids().unwrap(), vec![0, 1, 2]);
    assert_eq!(l2.first_incomplete_run(3), 2);
    assert_eq!(l2.journal_runs().unwrap(), vec![0, 1]);
    // The half-written run's data is still there for inspection, it is
    // simply not *complete* — a resumed master overwrites it.
    assert!(!l2.run_entries(2).unwrap().is_empty());
    l2.destroy().unwrap();
}

/// A marker whose journal confirmation is missing (crash between the two
/// writes of `mark_run_complete`) counts as incomplete after reopen.
#[test]
fn unconfirmed_marker_is_incomplete_after_reopen() {
    let root = unique_root("unconfirmed");
    {
        let l2 = Level2Store::open(&root).unwrap();
        l2.mark_run_complete(0).unwrap();
        // Simulate the crash: run 1 gets its marker file but the journal
        // write never happens.
        l2.put_run(1, "_master", "complete", b"1").unwrap();
    }
    let l2 = Level2Store::open(&root).unwrap();
    assert!(l2.is_run_complete(0));
    assert!(!l2.is_run_complete(1), "unjournalled marker must not count");
    assert_eq!(l2.first_incomplete_run(2), 1);
    l2.destroy().unwrap();
}

/// Re-running a crashed run and completing it heals the hierarchy: the
/// marker becomes confirmed and nothing from the aborted attempt leaks.
#[test]
fn recompleting_a_crashed_run_heals_the_journal() {
    let root = unique_root("heal");
    {
        let l2 = Level2Store::open(&root).unwrap();
        l2.mark_run_complete(0).unwrap();
        l2.put_run(1, "node-a", "events.json", b"[1]").unwrap();
        l2.put_run(1, "_master", "complete", b"1").unwrap(); // unconfirmed
    }
    let l2 = Level2Store::open(&root).unwrap();
    assert_eq!(l2.first_incomplete_run(2), 1);
    // The resumed master re-executes run 1, overwriting the old attempt.
    l2.put_run(1, "node-a", "events.json", b"[2]").unwrap();
    l2.mark_run_complete(1).unwrap();
    assert!(l2.is_run_complete(1));
    assert_eq!(l2.journal_runs().unwrap(), vec![0, 1]);
    assert_eq!(l2.get_run(1, "node-a", "events.json").unwrap(), b"[2]");
    assert_eq!(l2.first_incomplete_run(2), 2);
    l2.destroy().unwrap();
}

/// `Database::save` is write-then-rename: after any number of saves the
/// directory holds exactly the database file, no temp droppings, and the
/// loaded copy equals the saved one.
#[test]
fn database_save_leaves_no_temp_files_and_roundtrips() {
    let root = unique_root("dbsave");
    std::fs::create_dir_all(&root).unwrap();
    let path = root.join("results.xdb");

    let mut db = Database::new();
    db.create_table(
        "Runs",
        vec![
            Column::new("Run", ColumnType::Integer),
            Column::new("Outcome", ColumnType::Text),
        ],
    )
    .unwrap();
    for i in 0..5 {
        db.insert(
            "Runs",
            vec![SqlValue::Int(i), SqlValue::Text(format!("ok-{i}"))],
        )
        .unwrap();
        db.save(&path).unwrap();
    }

    let leftovers: Vec<String> = std::fs::read_dir(&root)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n != "results.xdb")
        .collect();
    assert!(leftovers.is_empty(), "temp files survived: {leftovers:?}");

    let loaded = Database::load(&path).unwrap();
    assert_eq!(
        loaded.table("Runs").unwrap().rows(),
        db.table("Runs").unwrap().rows()
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// Level-2 listings ignore the atomic writer's in-flight temp names even if
/// a crash stranded one on disk.
#[test]
fn stranded_temp_files_never_surface_as_measurements() {
    let root = unique_root("stranded");
    let l2 = Level2Store::open(&root).unwrap();
    l2.put_run(0, "node-a", "events.json", b"[]").unwrap();
    // A crash mid-atomic-write leaves a dot-prefixed temp file behind.
    let node_dir = root.join("runs").join("0").join("node-a");
    std::fs::write(node_dir.join(".events.json.tmp-999-0"), b"torn").unwrap();
    assert_eq!(
        l2.run_entries(0).unwrap(),
        vec![("node-a".to_string(), "events.json".to_string())]
    );
    l2.destroy().unwrap();
}
