//! Cross-experiment warehouse slicing (§IV-F's anticipated dimensional
//! model): two packaged experiments feed one star schema, and OLAP-style
//! slices on `FactDiscovery` reduce to predicate queries keyed through
//! the `DimNode` / `DimRun` dimensions.

use excovery_store::schema::{create_level3_database, EE_VERSION};
use excovery_store::warehouse::build_warehouse;
use excovery_store::{Database, EventRow, ExperimentInfo, Predicate, RunInfoRow, SqlValue};

/// Builds a level-3 package named `name` containing one discovery episode
/// per `(run_id, node, t_r_ns)` entry.
fn package(name: &str, episodes: &[(u64, &str, i64)]) -> Database {
    let mut db = create_level3_database();
    ExperimentInfo {
        exp_xml: String::new(),
        ee_version: EE_VERSION.into(),
        name: name.into(),
        comment: String::new(),
    }
    .insert(&mut db)
    .unwrap();
    let mut seen_runs: Vec<(u64, &str)> = Vec::new();
    for &(run_id, node, t_r_ns) in episodes {
        if !seen_runs.contains(&(run_id, node)) {
            seen_runs.push((run_id, node));
            RunInfoRow {
                run_id,
                node_id: node.into(),
                start_time_ns: run_id as i64 * 1_000,
                time_diff_ns: 0,
            }
            .insert(&mut db)
            .unwrap();
        }
        for (t, event_type, parameter) in [
            (100, "sd_start_search", ""),
            (100 + t_r_ns, "sd_service_add", "service=sm"),
            (200 + t_r_ns, "sd_stop_search", ""),
        ] {
            EventRow {
                run_id,
                node_id: node.into(),
                common_time_ns: t,
                event_type: event_type.into(),
                parameter: parameter.into(),
            }
            .insert(&mut db)
            .unwrap();
        }
    }
    db
}

fn int(v: &SqlValue) -> i64 {
    v.as_int().unwrap()
}

#[test]
fn facts_slice_by_node_and_run_dimensions_across_experiments() {
    // Experiment "alpha": two runs, two system-under-test nodes.
    let alpha = package(
        "alpha",
        &[
            (0, "su-a", 1_000),
            (0, "su-b", 2_000),
            (1, "su-a", 3_000),
            (1, "su-b", 4_000),
        ],
    );
    // Experiment "beta": one run, one node (same node name as alpha's —
    // the warehouse must still key them apart per experiment).
    let beta = package("beta", &[(0, "su-a", 9_000)]);
    let wh = build_warehouse(&[("alpha", &alpha), ("beta", &beta)]).unwrap();

    let dim_node = wh.table("DimNode").unwrap();
    let dim_run = wh.table("DimRun").unwrap();
    let facts = wh.table("FactDiscovery").unwrap();
    assert_eq!(facts.len(), 5);

    // --- slice by node: alpha's "su-b", keyed through DimNode ----------
    let node_rows = dim_node
        .select(
            &Predicate::Eq("NodeID".into(), "su-b".into())
                .and(Predicate::Eq("ExpKey".into(), SqlValue::Int(0))),
            None,
        )
        .unwrap();
    assert_eq!(node_rows.len(), 1, "one su-b dimension row for alpha");
    let su_b_key = node_rows[0][dim_node.column_index("NodeKey").unwrap()].clone();
    let su_b_facts = facts
        .select(
            &Predicate::Eq("SuNodeKey".into(), su_b_key),
            Some("ResponseTimeNs"),
        )
        .unwrap();
    let rt = facts.column_index("ResponseTimeNs").unwrap();
    assert_eq!(
        su_b_facts.iter().map(|r| int(&r[rt])).collect::<Vec<_>>(),
        vec![2_000, 4_000],
        "su-b episodes of both alpha runs, nothing from su-a or beta"
    );

    // Same node *name* in beta resolves to a different surrogate key, so
    // the slice above cannot leak beta's episode.
    let beta_nodes = dim_node
        .select(
            &Predicate::Eq("NodeID".into(), "su-a".into())
                .and(Predicate::Eq("ExpKey".into(), SqlValue::Int(1))),
            None,
        )
        .unwrap();
    assert_eq!(beta_nodes.len(), 1);

    // --- slice by run: alpha's run 1, keyed through DimRun -------------
    let run_rows = dim_run
        .select(
            &Predicate::Eq("ExpKey".into(), SqlValue::Int(0))
                .and(Predicate::Eq("RunID".into(), SqlValue::Int(1))),
            None,
        )
        .unwrap();
    assert_eq!(run_rows.len(), 1);
    let run1_key = run_rows[0][dim_run.column_index("RunKey").unwrap()].clone();
    let run1_facts = facts
        .select(
            &Predicate::Eq("RunKey".into(), run1_key.clone()),
            Some("ResponseTimeNs"),
        )
        .unwrap();
    assert_eq!(
        run1_facts.iter().map(|r| int(&r[rt])).collect::<Vec<_>>(),
        vec![3_000, 4_000],
        "exactly the two episodes of alpha's run 1"
    );

    // --- combined slice: alpha run 1 OR anything from beta -------------
    let combined = facts
        .select(
            &Predicate::Eq("RunKey".into(), run1_key)
                .or(Predicate::Eq("ExpKey".into(), SqlValue::Int(1))),
            Some("ResponseTimeNs"),
        )
        .unwrap();
    assert_eq!(
        combined.iter().map(|r| int(&r[rt])).collect::<Vec<_>>(),
        vec![3_000, 4_000, 9_000]
    );

    // Every fact row's ExpKey points at a real DimExperiment row.
    let exp_keys: Vec<SqlValue> = facts.distinct("ExpKey", &Predicate::True).unwrap();
    assert_eq!(exp_keys.len(), 2);
    for key in exp_keys {
        assert_eq!(
            wh.table("DimExperiment")
                .unwrap()
                .count(&Predicate::Eq("ExpKey".into(), key))
                .unwrap(),
            1
        );
    }
}
