//! Treatment reconstruction from stored packages.
//!
//! A level-3 package is self-contained: `ExperimentInfo.ExpXML` carries the
//! complete abstract description, so "the complete experiment plan with the
//! exact sequence of treatments" (§IV) can be regenerated offline. This
//! module rebuilds the run→treatment mapping, letting analyses group
//! episodes by factor levels without side-channel information from the
//! execution.

use crate::dataset::ExperimentDataset;
use crate::error::AnalysisError;
use excovery_desc::xmlio::from_xml;
use excovery_store::records::ExperimentInfo;
use excovery_store::Database;
use std::collections::HashMap;

/// Rebuilds the run-id → treatment-key mapping from the stored description.
pub fn treatments_from_database(db: &Database) -> Result<HashMap<u64, String>, AnalysisError> {
    let info = ExperimentInfo::read(db)?;
    let desc = from_xml(&info.exp_xml).map_err(|e| AnalysisError::Desc(e.to_string()))?;
    let plan = desc.plan();
    Ok(plan
        .runs
        .into_iter()
        .map(|r| (r.run_id, r.treatment.key()))
        .collect())
}

/// Groups all discovery episodes of a package by treatment key.
pub fn episodes_by_treatment(
    db: &Database,
) -> Result<HashMap<String, Vec<crate::runs::DiscoveryEpisode>>, AnalysisError> {
    let mapping = treatments_from_database(db)?;
    let ds = ExperimentDataset::new(db)?;
    let mut by_run = ds.episodes_by_run()?;
    let mut grouped: HashMap<String, Vec<crate::runs::DiscoveryEpisode>> = HashMap::new();
    // Iterate every run with events (not just those with episodes) so a
    // run whose search never started still registers its treatment key —
    // exactly what the old per-run scan did.
    for run_id in ds.run_ids()? {
        let eps = by_run.remove(&run_id).unwrap_or_default();
        let key = mapping
            .get(&run_id)
            .cloned()
            .unwrap_or_else(|| "unknown".into());
        grouped.entry(key).or_default().extend(eps);
    }
    Ok(grouped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_desc::ExperimentDescription;
    use excovery_store::records::EventRow;
    use excovery_store::schema::{create_level3_database, EE_VERSION};

    fn db_with_description() -> Database {
        let desc = ExperimentDescription::paper_two_party_sd(2);
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: excovery_desc::xmlio::to_xml(&desc),
            ee_version: EE_VERSION.into(),
            name: desc.name.clone(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        db
    }

    #[test]
    fn mapping_matches_regenerated_plan() {
        let db = db_with_description();
        let mapping = treatments_from_database(&db).unwrap();
        // 6 treatments × 2 replications.
        assert_eq!(mapping.len(), 12);
        assert!(mapping[&0].contains("fact_bw=10"));
        assert!(mapping[&0].contains("fact_pairs="));
        // Runs 0 and 1 are replicates of the same treatment.
        assert_eq!(mapping[&0], mapping[&1]);
        assert_ne!(mapping[&0], mapping[&2]);
    }

    #[test]
    fn grouping_assigns_episodes() {
        let mut db = db_with_description();
        for (run, node) in [(0u64, "t9-105"), (2, "t9-105")] {
            EventRow {
                run_id: run,
                node_id: node.into(),
                common_time_ns: 10,
                event_type: "sd_start_search".into(),
                parameter: String::new(),
            }
            .insert(&mut db)
            .unwrap();
        }
        let grouped = episodes_by_treatment(&db).unwrap();
        assert_eq!(grouped.len(), 2, "two distinct treatments seen");
        assert!(grouped.values().all(|eps| eps.len() == 1));
    }

    #[test]
    fn corrupt_xml_is_an_error() {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: "not xml".into(),
            ee_version: EE_VERSION.into(),
            name: "x".into(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        assert!(treatments_from_database(&db).is_err());
    }
}
