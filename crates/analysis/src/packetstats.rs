//! Packet-level metrics from stored captures.
//!
//! The prototype's packet tagger exists precisely to "allow analysis of
//! properties outside the scope of the ExCovery processes, for example
//! packet loss and delay" (§VI-A). This module derives those metrics from
//! the `Packets` table: per-source delivery ratios, end-to-end delays of
//! matched send/receive observations, and per-run packet counts.

use crate::error::AnalysisError;
use excovery_netsim::tagger::{analyze_stream, StreamStats};
use excovery_store::records::PacketRow;
use excovery_store::{Database, StoreError};
use serde::Serialize;
use std::collections::BTreeMap;

/// Splits the stored raw packet data into the 16-bit tagger id and the
/// payload (the engine stores `tag ‖ payload`, mirroring the prototype's
/// IP-option tagger). Returns `None` for data shorter than the tag.
pub fn split_tag(data: &[u8]) -> Option<(u16, &[u8])> {
    if data.len() < 2 {
        return None;
    }
    Some((u16::from_be_bytes([data[0], data[1]]), &data[2..]))
}

/// Reconstructs per-(source, observer) loss from tag gaps — the analysis
/// the packet tagger exists for (§VI-A). Observations are ordered by
/// common time; gaps in the source's tag sequence count as losses.
///
/// Caveat (as with real one-point packet tracking): an observer that only
/// lies on the path of *some* of a source's traffic sees structural gaps
/// for the rest, inflating its estimate. Use
/// [`best_stream_loss_per_source`] when a single well-positioned
/// observation point per source is wanted.
pub fn tag_loss_stats(
    db: &Database,
    run_id: u64,
) -> Result<BTreeMap<(String, String), StreamStats>, StoreError> {
    let rows = PacketRow::read_run(db, run_id)?; // ordered by CommonTime
    let mut streams: BTreeMap<(String, String), Vec<u16>> = BTreeMap::new();
    for r in &rows {
        if r.node_id == r.src_node_id {
            continue; // source-side capture, not an observation
        }
        let Some((tag, _)) = split_tag(&r.data) else {
            continue;
        };
        streams
            .entry((r.src_node_id.clone(), r.node_id.clone()))
            .or_default()
            .push(tag);
    }
    Ok(streams
        .into_iter()
        .map(|(key, tags)| (key, analyze_stream(tags)))
        .collect())
}

/// Loss/delay summary for one (source, observer) pair.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PathStats {
    /// Originating node.
    pub src: String,
    /// Observing node.
    pub observer: String,
    /// Packets the source put on the wire (its own captures).
    pub sent: u64,
    /// Packets the observer captured from that source.
    pub observed: u64,
    /// Mean one-way delay of matched packets, seconds.
    pub mean_delay_s: f64,
}

impl PathStats {
    /// Delivery ratio `observed / sent` (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            (self.observed as f64 / self.sent as f64).min(1.0)
        }
    }
}

/// Matches captures of a run: for each `(src, observer)` pair, sent
/// packets at the source are paired with the observer's captures of the
/// same payload (first unmatched occurrence, in time order).
pub fn path_stats(db: &Database, run_id: u64) -> Result<Vec<PathStats>, StoreError> {
    let rows = PacketRow::read_run(db, run_id)?;
    // Source-side sends: a capture on the source node itself.
    let mut sent_by_src: BTreeMap<&str, Vec<&PacketRow>> = BTreeMap::new();
    let mut seen_by_pair: BTreeMap<(&str, &str), Vec<&PacketRow>> = BTreeMap::new();
    for r in &rows {
        if r.node_id == r.src_node_id {
            sent_by_src
                .entry(r.src_node_id.as_str())
                .or_default()
                .push(r);
        } else {
            seen_by_pair
                .entry((r.src_node_id.as_str(), r.node_id.as_str()))
                .or_default()
                .push(r);
        }
    }
    let mut out = Vec::new();
    for ((src, observer), observed) in &seen_by_pair {
        let sent = sent_by_src.get(src).map(|v| v.as_slice()).unwrap_or(&[]);
        // Pair by payload equality in temporal order.
        let mut delays = Vec::new();
        let mut used = vec![false; observed.len()];
        for s in sent {
            if let Some((i, o)) = observed.iter().enumerate().find(|(i, o)| {
                !used[*i] && o.data == s.data && o.common_time_ns >= s.common_time_ns
            }) {
                used[i] = true;
                delays.push((o.common_time_ns - s.common_time_ns) as f64 / 1e9);
            }
        }
        let mean_delay_s = if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        out.push(PathStats {
            src: (*src).to_string(),
            observer: (*observer).to_string(),
            sent: sent.len() as u64,
            observed: observed.len() as u64,
            mean_delay_s,
        });
    }
    Ok(out)
}

/// Per-source loss estimate from the best-positioned observer: the
/// stream with the lowest loss ratio among those with at least
/// `min_received` observations. Structural gaps (observer off-path for
/// part of the traffic) only ever inflate an estimate, so the minimum over
/// observers is the tightest sound estimate available from one-point
/// observations.
pub fn best_stream_loss_per_source(
    db: &Database,
    run_id: u64,
    min_received: u64,
) -> Result<BTreeMap<String, f64>, StoreError> {
    let streams = tag_loss_stats(db, run_id)?;
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for ((src, _), stats) in streams {
        if stats.received < min_received {
            continue;
        }
        let loss = stats.loss_ratio();
        best.entry(src)
            .and_modify(|b| *b = b.min(loss))
            .or_insert(loss);
    }
    Ok(best)
}

/// Total packets captured per run (quick volume diagnostics).
///
/// Thin wrapper over the columnar group-by count of
/// [`crate::dataset::ExperimentDataset::packets_per_run`]; identical to
/// the old hand-rolled `Packets` row scan.
pub fn packets_per_run(db: &Database) -> Result<BTreeMap<u64, usize>, AnalysisError> {
    crate::dataset::ExperimentDataset::new(db)?.packets_per_run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::schema::create_level3_database;

    fn pkt(db: &mut Database, run: u64, node: &str, t: i64, src: &str, data: &[u8]) {
        PacketRow {
            run_id: run,
            node_id: node.into(),
            common_time_ns: t,
            src_node_id: src.into(),
            data: data.to_vec(),
        }
        .insert(db)
        .unwrap();
    }

    fn sample() -> Database {
        let mut db = create_level3_database();
        // n0 sends 3 packets; n1 observes 2 of them, delayed 1 ms each.
        for (i, t) in [(0u8, 0i64), (1, 10_000_000), (2, 20_000_000)] {
            pkt(&mut db, 0, "n0", t, "n0", &[i]);
        }
        pkt(&mut db, 0, "n1", 1_000_000, "n0", &[0]);
        pkt(&mut db, 0, "n1", 11_000_000, "n0", &[1]);
        db
    }

    #[test]
    fn delivery_ratio_and_delay() {
        let db = sample();
        let stats = path_stats(&db, 0).unwrap();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.sent, 3);
        assert_eq!(s.observed, 2);
        assert!((s.delivery_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_delay_s - 0.001).abs() < 1e-9, "{}", s.mean_delay_s);
    }

    #[test]
    fn empty_run_yields_no_stats() {
        let db = create_level3_database();
        assert!(path_stats(&db, 0).unwrap().is_empty());
    }

    #[test]
    fn ratio_caps_at_one_for_multicast_fanout() {
        let mut db = create_level3_database();
        pkt(&mut db, 0, "n0", 0, "n0", &[9]);
        // Two observers saw the same flooded packet.
        pkt(&mut db, 0, "n1", 1_000, "n0", &[9]);
        pkt(&mut db, 0, "n2", 2_000, "n0", &[9]);
        let stats = path_stats(&db, 0).unwrap();
        assert_eq!(stats.len(), 2);
        for s in stats {
            assert_eq!(s.delivery_ratio(), 1.0);
        }
    }

    #[test]
    fn packets_per_run_counts() {
        let mut db = sample();
        pkt(&mut db, 3, "n0", 0, "n0", &[7]);
        let counts = packets_per_run(&db).unwrap();
        assert_eq!(counts[&0], 5);
        assert_eq!(counts[&3], 1);
    }

    #[test]
    fn split_tag_roundtrip() {
        let data = [0x12, 0x34, 0xAA, 0xBB];
        let (tag, payload) = split_tag(&data).unwrap();
        assert_eq!(tag, 0x1234);
        assert_eq!(payload, &[0xAA, 0xBB]);
        assert!(split_tag(&[0x01]).is_none());
        assert_eq!(split_tag(&[0x00, 0x07]).unwrap(), (7, &[][..]));
    }

    #[test]
    fn tag_loss_from_stored_packets() {
        let mut db = create_level3_database();
        // Source n0 sends tags 0..10; observer n1 sees 0,1,4,5 (tags 2,3
        // and the tail lost). Data = tag ‖ payload.
        for tag in [0u16, 1, 4, 5] {
            let mut data = tag.to_be_bytes().to_vec();
            data.push(0xCB);
            pkt(&mut db, 0, "n1", 1_000 * i64::from(tag), "n0", &data);
        }
        let stats = tag_loss_stats(&db, 0).unwrap();
        let s = stats[&("n0".to_string(), "n1".to_string())];
        assert_eq!(s.received, 4);
        assert_eq!(s.lost, 2, "tags 2 and 3");
        assert!((s.loss_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tag_loss_ignores_source_side_and_short_data() {
        let mut db = create_level3_database();
        pkt(&mut db, 0, "n0", 0, "n0", &[0, 0, 1]); // source capture
        pkt(&mut db, 0, "n1", 1, "n0", &[9]); // too short for a tag
        assert!(tag_loss_stats(&db, 0).unwrap().is_empty());
    }

    #[test]
    fn unmatched_observation_contributes_zero_delay() {
        let mut db = create_level3_database();
        // Observation without a matching send (e.g. source capture lost).
        pkt(&mut db, 0, "n1", 1_000, "n0", &[1]);
        let stats = path_stats(&db, 0).unwrap();
        assert_eq!(stats[0].sent, 0);
        assert_eq!(stats[0].mean_delay_s, 0.0);
        assert_eq!(stats[0].delivery_ratio(), 1.0);
    }
}
