//! A columnar view over one experiment package.
//!
//! [`ExperimentDataset`] snapshots a level-3 database into an
//! `excovery_query::Dataset` (partitioned by `RunID`) and answers the
//! questions the analysis modules used to answer with hand-rolled row
//! scans: run inventories, discovery episodes, packet volumes and clock
//! offsets. Each answer is **bit-identical** to its row-engine
//! predecessor — the parity suite pins this — because partitions are
//! merged in run order and episode reconstruction goes through the same
//! state machine ([`crate::runs`]) as before.

use crate::error::AnalysisError;
use crate::responsiveness::{responsiveness_curve, ResponsivenessPoint};
use crate::runs::{episodes_from_ordered, DiscoveryEpisode, EpisodeEvent};
use excovery_query::{col, lit, Agg, Dataset, Value};
use excovery_store::Database;
use std::collections::BTreeMap;

/// The three event types the episode state machine consumes.
const EPISODE_EVENTS: [&str; 3] = ["sd_start_search", "sd_service_add", "sd_stop_search"];

/// A level-3 package snapshotted into column slabs, with the analysis
/// crate's standard questions as one-line queries.
///
/// ```no_run
/// # fn demo(db: &excovery_store::Database) -> Result<(), excovery_analysis::AnalysisError> {
/// use excovery_analysis::dataset::ExperimentDataset;
/// let ds = ExperimentDataset::new(db)?;
/// let episodes = ds.episodes()?;
/// let curve = ds.responsiveness(1, &[0.1, 1.0, 10.0])?;
/// # let _ = (episodes, curve); Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentDataset {
    ds: Dataset,
}

impl ExperimentDataset {
    /// Ingests a level-3 package.
    pub fn new(db: &Database) -> Result<Self, AnalysisError> {
        Ok(Self {
            ds: Dataset::from_database(db)?,
        })
    }

    /// Wraps an already-built dataset (e.g. one spanning several
    /// packages from a repository).
    pub fn from_dataset(ds: Dataset) -> Self {
        Self { ds }
    }

    /// The underlying dataset, for ad-hoc `scan` pipelines.
    pub fn query(&self) -> &Dataset {
        &self.ds
    }

    /// All run ids with recorded events, ascending — the columnar twin of
    /// `RunView::run_ids`.
    pub fn run_ids(&self) -> Result<Vec<u64>, AnalysisError> {
        self.distinct_run_ids("Events")
    }

    /// All run ids with a `RunInfos` row, ascending — the columnar twin of
    /// `RunInfoRow::run_ids`.
    pub fn run_ids_with_info(&self) -> Result<Vec<u64>, AnalysisError> {
        self.distinct_run_ids("RunInfos")
    }

    fn distinct_run_ids(&self, table: &str) -> Result<Vec<u64>, AnalysisError> {
        let frame = self.ds.scan(table).group_by(["RunID"]).collect()?;
        Ok(frame
            .rows
            .iter()
            .filter_map(|r| r[0].as_i64())
            .filter(|&id| id >= 0)
            .map(|id| id as u64)
            .collect())
    }

    /// Discovery episodes of every run, keyed by run id.
    ///
    /// One filtered scan replaces the old per-run `Events` reads: rows
    /// come back grouped by run (the partition order) and time-ordered
    /// within each run, so feeding each run's slice to the shared episode
    /// state machine reproduces `RunView::episodes` exactly.
    pub fn episodes_by_run(&self) -> Result<BTreeMap<u64, Vec<DiscoveryEpisode>>, AnalysisError> {
        let interesting = col("EventType")
            .eq(lit(EPISODE_EVENTS[0]))
            .or(col("EventType").eq(lit(EPISODE_EVENTS[1])))
            .or(col("EventType").eq(lit(EPISODE_EVENTS[2])));
        let frame = self
            .ds
            .scan("Events")
            .filter(interesting)
            .select(["RunID", "NodeID", "CommonTime", "EventType", "Parameter"])
            .sort_by("CommonTime")
            .collect()?;
        let mut out = BTreeMap::new();
        let mut i = 0;
        while i < frame.rows.len() {
            let Some(run) = frame.rows[i][0].as_i64().filter(|&id| id >= 0) else {
                i += 1;
                continue;
            };
            let start = i;
            while i < frame.rows.len() && frame.rows[i][0].as_i64() == Some(run) {
                i += 1;
            }
            let run = run as u64;
            let events = frame.rows[start..i].iter().map(|row| EpisodeEvent {
                node_id: row[1].as_str().unwrap_or(""),
                common_time_ns: row[2].as_i64().unwrap_or(0),
                event_type: row[3].as_str().unwrap_or(""),
                parameter: row[4].as_str().unwrap_or(""),
            });
            out.insert(run, episodes_from_ordered(run, events));
        }
        Ok(out)
    }

    /// All discovery episodes in run order — the columnar twin of
    /// `RunView::all_episodes`.
    pub fn episodes(&self) -> Result<Vec<DiscoveryEpisode>, AnalysisError> {
        Ok(self.episodes_by_run()?.into_values().flatten().collect())
    }

    /// Responsiveness curve over all episodes of the package.
    pub fn responsiveness(
        &self,
        k: usize,
        deadlines_s: &[f64],
    ) -> Result<Vec<ResponsivenessPoint>, AnalysisError> {
        Ok(responsiveness_curve(&self.episodes()?, k, deadlines_s))
    }

    /// Captured packets per run — the columnar twin of
    /// `packetstats::packets_per_run`, as a group-by count.
    pub fn packets_per_run(&self) -> Result<BTreeMap<u64, usize>, AnalysisError> {
        let frame = self
            .ds
            .scan("Packets")
            .group_by(["RunID"])
            .agg([Agg::count()])
            .collect()?;
        let mut out = BTreeMap::new();
        for row in &frame.rows {
            let (Some(run), Value::I64(n)) = (row[0].as_i64().filter(|&id| id >= 0), &row[1])
            else {
                continue;
            };
            out.insert(run as u64, *n as usize);
        }
        Ok(out)
    }

    /// Recorded per-node clock offsets (`RunInfos.TimeDiff`), in
    /// `RunInfoRow::read_all` order: run ascending, insertion order within
    /// a run.
    pub fn clock_offsets_ns(&self) -> Result<Vec<i64>, AnalysisError> {
        let frame = self.ds.scan("RunInfos").select(["TimeDiff"]).collect()?;
        Ok(frame.rows.iter().filter_map(|r| r[0].as_i64()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::RunView;
    use excovery_store::records::{EventRow, PacketRow, RunInfoRow};
    use excovery_store::schema::create_level3_database;

    fn sample_db() -> Database {
        let mut db = create_level3_database();
        for run in 0..3u64 {
            RunInfoRow {
                run_id: run,
                node_id: "su".into(),
                start_time_ns: 0,
                time_diff_ns: 1_000_000 + run as i64,
            }
            .insert(&mut db)
            .unwrap();
            EventRow {
                run_id: run,
                node_id: "su".into(),
                common_time_ns: 1_000,
                event_type: "sd_start_search".into(),
                parameter: String::new(),
            }
            .insert(&mut db)
            .unwrap();
            if run != 1 {
                EventRow {
                    run_id: run,
                    node_id: "su".into(),
                    common_time_ns: 5_000 + run as i64,
                    event_type: "sd_service_add".into(),
                    parameter: "service=sm-a".into(),
                }
                .insert(&mut db)
                .unwrap();
            }
            for p in 0..(run + 1) {
                PacketRow {
                    run_id: run,
                    node_id: "su".into(),
                    common_time_ns: p as i64,
                    src_node_id: "sp".into(),
                    data: vec![0, 0, 1],
                }
                .insert(&mut db)
                .unwrap();
            }
        }
        db
    }

    #[test]
    fn run_inventories_match_row_engine() {
        let db = sample_db();
        let ds = ExperimentDataset::new(&db).unwrap();
        assert_eq!(ds.run_ids().unwrap(), RunView::run_ids(&db).unwrap());
        assert_eq!(
            ds.run_ids_with_info().unwrap(),
            RunInfoRow::run_ids(&db).unwrap()
        );
    }

    #[test]
    fn episodes_match_row_engine() {
        let db = sample_db();
        let ds = ExperimentDataset::new(&db).unwrap();
        assert_eq!(ds.episodes().unwrap(), RunView::all_episodes(&db).unwrap());
        let by_run = ds.episodes_by_run().unwrap();
        for run in RunView::run_ids(&db).unwrap() {
            assert_eq!(
                by_run[&run],
                RunView::load(&db, run).unwrap().episodes(),
                "run {run}"
            );
        }
    }

    #[test]
    fn packet_volumes_match_row_engine() {
        let db = sample_db();
        let ds = ExperimentDataset::new(&db).unwrap();
        // Independent row-engine count (the pre-redesign implementation).
        let mut expected = BTreeMap::new();
        for row in db.table("Packets").unwrap().rows() {
            let run = row[0].as_int().unwrap_or(-1);
            if run >= 0 {
                *expected.entry(run as u64).or_insert(0usize) += 1;
            }
        }
        assert_eq!(ds.packets_per_run().unwrap(), expected);
    }

    #[test]
    fn clock_offsets_keep_read_all_order() {
        let db = sample_db();
        let ds = ExperimentDataset::new(&db).unwrap();
        let expected: Vec<i64> = RunInfoRow::read_all(&db)
            .unwrap()
            .iter()
            .map(|i| i.time_diff_ns)
            .collect();
        assert_eq!(ds.clock_offsets_ns().unwrap(), expected);
    }

    #[test]
    fn empty_database_is_empty_everywhere() {
        let db = create_level3_database();
        let ds = ExperimentDataset::new(&db).unwrap();
        assert!(ds.run_ids().unwrap().is_empty());
        assert!(ds.episodes().unwrap().is_empty());
        assert!(ds.packets_per_run().unwrap().is_empty());
        assert!(ds.clock_offsets_ns().unwrap().is_empty());
    }
}
