//! Summary statistics for metric extraction.

use serde::Serialize;

/// Summary of a sample of numeric observations.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Sample standard deviation (n−1); 0 for n < 2.
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample.
    pub fn compute(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Self {
            n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            stddev: var.sqrt(),
        })
    }
}

/// Linear-interpolated percentile of a sorted sample, `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence.
///
/// Preferred over the normal approximation for the probabilities near 1.0
/// that responsiveness analysis produces.
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96_f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// An empirical CDF over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF.
    pub fn new(values: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self { sorted }
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the ECDF has no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sampled series `(x, P(X<=x))` at `points` evenly spaced x values
    /// between min and max — the figure-series helper.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.sorted[0], *self.sorted.last().unwrap());
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points.max(2) - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::compute(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.stddev - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn summary_singleton_and_empty() {
        let s = Summary::compute(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert!(Summary::compute(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 1.0), 40.0);
        assert_eq!(percentile_sorted(&v, 0.5), 25.0);
        assert!((percentile_sorted(&v, 1.0 / 3.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_basics() {
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25, "reasonably tight at n=100");
        // All successes: upper bound is ~1, lower bound below 1.
        let (lo, hi) = wilson_interval(100, 100);
        assert!(hi > 0.999999);
        assert!(lo > 0.94 && lo < 1.0);
        // More trials tighten the interval.
        let (lo2, _) = wilson_interval(1000, 1000);
        assert!(lo2 > lo);
    }

    #[test]
    fn ecdf_steps() {
        let e = Ecdf::new([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(1.0), 0.25);
        assert_eq!(e.at(2.0), 0.75);
        assert_eq!(e.at(3.0), 1.0);
        assert_eq!(e.at(99.0), 1.0);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ecdf_series_monotone() {
        let e = Ecdf::new((1..=100).map(f64::from));
        let series = e.series(20);
        assert_eq!(series.len(), 20);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(std::iter::empty());
        assert!(e.is_empty());
        assert_eq!(e.at(1.0), 0.0);
        assert!(e.series(5).is_empty());
    }
}
