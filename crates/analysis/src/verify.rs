//! Cross-verification of the event list against the packet captures.
//!
//! "Packets are recorded to facilitate verification of the recorded event
//! list" (paper §IV-B2): a discovery event without a corresponding
//! received SD packet, or an event stream that contradicts the packet
//! stream, indicates a broken measurement chain. These checks run over a
//! stored level-3 package and report findings; an empty report means the
//! two independent recordings are consistent.

use crate::packetstats::split_tag;
use crate::runs::RunView;
use excovery_store::records::{EventRow, PacketRow};
use excovery_store::{Database, StoreError};

/// One consistency finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// Run the finding belongs to.
    pub run_id: u64,
    /// Explanation.
    pub message: String,
}

/// Checks one run; returns all findings (empty = consistent).
///
/// Checks performed:
/// 1. Every `sd_service_add` on a node is preceded (within `slack_ns`) by
///    at least one packet *received* on that node from some other node —
///    a discovery cannot materialize out of thin air.
/// 2. Every node that emitted SD events also appears in the packet
///    captures (its radio was actually used).
/// 3. Event and packet timestamps lie within the run's common-time span
///    (no conditioning artifacts flinging records outside the run).
pub fn verify_run(
    db: &Database,
    run_id: u64,
    slack_ns: i64,
) -> Result<Vec<Inconsistency>, StoreError> {
    let mut findings = Vec::new();
    let events = EventRow::read_run(db, run_id)?;
    let packets = PacketRow::read_run(db, run_id)?;

    // 1. Discovery events need a preceding reception.
    for e in events.iter().filter(|e| e.event_type == "sd_service_add") {
        let evidenced = packets.iter().any(|p| {
            p.node_id == e.node_id
                && p.src_node_id != p.node_id
                && p.common_time_ns <= e.common_time_ns
                && p.common_time_ns >= e.common_time_ns - slack_ns
        });
        if !evidenced {
            findings.push(Inconsistency {
                run_id,
                message: format!(
                    "sd_service_add on {} at {} ns has no received packet within {} ns",
                    e.node_id, e.common_time_ns, slack_ns
                ),
            });
        }
    }

    // 2. SD-active nodes must appear in the captures.
    let sd_nodes: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.event_type.starts_with("sd_") && e.node_id != "master")
        .map(|e| e.node_id.as_str())
        .collect();
    for node in sd_nodes {
        if !packets.iter().any(|p| p.node_id == node) {
            findings.push(Inconsistency {
                run_id,
                message: format!("node {node} emitted SD events but captured no packets"),
            });
        }
    }

    // 3. Temporal envelope: packets inside the event span (±slack).
    if let (Some(first), Some(last)) = (
        events.iter().map(|e| e.common_time_ns).min(),
        events.iter().map(|e| e.common_time_ns).max(),
    ) {
        for p in &packets {
            if p.common_time_ns < first - slack_ns || p.common_time_ns > last + slack_ns {
                findings.push(Inconsistency {
                    run_id,
                    message: format!(
                        "packet at {} ns on {} lies outside the run span [{first}, {last}]",
                        p.common_time_ns, p.node_id
                    ),
                });
            }
        }
    }

    // 4. Tag prefix sanity: stored data must carry the tagger id.
    for p in &packets {
        if split_tag(&p.data).is_none() {
            findings.push(Inconsistency {
                run_id,
                message: format!(
                    "packet on {} at {} ns is too short to carry a tag",
                    p.node_id, p.common_time_ns
                ),
            });
        }
    }
    Ok(findings)
}

/// Verifies every run of a package with a default slack of 100 ms.
pub fn verify_all(db: &Database) -> Result<Vec<Inconsistency>, StoreError> {
    let mut findings = Vec::new();
    for run_id in RunView::run_ids(db)? {
        findings.extend(verify_run(db, run_id, 100_000_000)?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::schema::create_level3_database;

    fn ev(db: &mut Database, run: u64, node: &str, t: i64, name: &str) {
        EventRow {
            run_id: run,
            node_id: node.into(),
            common_time_ns: t,
            event_type: name.into(),
            parameter: String::new(),
        }
        .insert(db)
        .unwrap();
    }

    fn pkt(db: &mut Database, run: u64, node: &str, t: i64, src: &str) {
        PacketRow {
            run_id: run,
            node_id: node.into(),
            common_time_ns: t,
            src_node_id: src.into(),
            data: vec![0, 1, 0xCB],
        }
        .insert(db)
        .unwrap();
    }

    fn consistent_db() -> Database {
        let mut db = create_level3_database();
        ev(&mut db, 0, "su", 0, "sd_start_search");
        pkt(&mut db, 0, "sm", 10_000, "sm"); // sm sends
        pkt(&mut db, 0, "su", 20_000, "sm"); // su receives
        ev(&mut db, 0, "su", 25_000, "sd_service_add");
        ev(&mut db, 0, "sm", 5_000, "sd_start_publish");
        pkt(&mut db, 0, "sm", 6_000, "other"); // sm also captured traffic
        db
    }

    #[test]
    fn consistent_package_has_no_findings() {
        let db = consistent_db();
        assert_eq!(verify_all(&db).unwrap(), vec![]);
    }

    #[test]
    fn discovery_without_reception_is_flagged() {
        let mut db = create_level3_database();
        ev(&mut db, 0, "su", 0, "sd_start_search");
        pkt(&mut db, 0, "su", 1_000, "su"); // only own transmissions
        ev(&mut db, 0, "su", 25_000, "sd_service_add");
        let findings = verify_run(&db, 0, 100_000_000).unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("no received packet")),
            "{findings:?}"
        );
    }

    #[test]
    fn reception_too_old_is_flagged() {
        let mut db = create_level3_database();
        pkt(&mut db, 0, "su", 0, "sm");
        ev(&mut db, 0, "su", 1_000_000, "sd_service_add");
        // Slack smaller than the gap: the packet does not count.
        let findings = verify_run(&db, 0, 1_000).unwrap();
        assert!(!findings.is_empty());
        // Generous slack: consistent.
        let findings = verify_run(&db, 0, 10_000_000).unwrap();
        assert!(findings
            .iter()
            .all(|f| !f.message.contains("no received packet")));
    }

    #[test]
    fn silent_sd_node_is_flagged() {
        let mut db = create_level3_database();
        ev(&mut db, 0, "ghost", 0, "sd_init_done");
        let findings = verify_run(&db, 0, 1_000).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.message.contains("captured no packets")));
    }

    #[test]
    fn out_of_span_packet_is_flagged() {
        let mut db = consistent_db();
        pkt(&mut db, 0, "su", 999_000_000_000, "sm");
        let findings = verify_run(&db, 0, 100_000_000).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.message.contains("outside the run span")));
    }

    #[test]
    fn short_packet_data_is_flagged() {
        let mut db = consistent_db();
        PacketRow {
            run_id: 0,
            node_id: "su".into(),
            common_time_ns: 10_000,
            src_node_id: "sm".into(),
            data: vec![1],
        }
        .insert(&mut db)
        .unwrap();
        let findings = verify_run(&db, 0, 100_000_000).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.message.contains("too short to carry a tag")));
    }
}
