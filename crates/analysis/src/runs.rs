//! Reconstruction of discovery episodes from the stored event lists.
//!
//! A *discovery episode* is the paper's Fig. 11 one-shot process: an SU
//! starts a search at some common time and services are added until the
//! search stops. The response time `t_R` of a service is the span between
//! `sd_start_search` on the SU and the matching `sd_service_add`.

use excovery_store::records::EventRow;
use excovery_store::{Database, StoreError};
use serde::Serialize;
use std::collections::HashMap;

/// One discovered service within an episode.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Discovery {
    /// Service identifier (the SM's platform id in engine-run experiments).
    pub service: String,
    /// Common time of the `sd_service_add` event, ns.
    pub at_ns: i64,
    /// Response time relative to the search start, ns.
    pub t_r_ns: i64,
}

/// One search episode of one SU in one run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DiscoveryEpisode {
    /// Run the episode belongs to.
    pub run_id: u64,
    /// The searching node (SU).
    pub su_node: String,
    /// Common time of `sd_start_search`, ns.
    pub search_start_ns: i64,
    /// Services discovered, in discovery order.
    pub discoveries: Vec<Discovery>,
}

impl DiscoveryEpisode {
    /// Response time of the first discovery, if any.
    pub fn first_t_r_ns(&self) -> Option<i64> {
        self.discoveries.first().map(|d| d.t_r_ns)
    }

    /// True if at least `k` distinct services were found within
    /// `deadline_ns` of the search start.
    pub fn discovered_within(&self, k: usize, deadline_ns: i64) -> bool {
        let mut seen = std::collections::HashSet::new();
        for d in &self.discoveries {
            if d.t_r_ns <= deadline_ns {
                seen.insert(&d.service);
            }
        }
        seen.len() >= k
    }
}

/// A borrowed event as the episode state machine sees it — enough of an
/// [`EventRow`] to reconstruct episodes, regardless of whether the row came
/// from the row engine or a columnar scan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EpisodeEvent<'a> {
    /// The node the event happened on.
    pub node_id: &'a str,
    /// Common time, ns.
    pub common_time_ns: i64,
    /// Event type name.
    pub event_type: &'a str,
    /// Encoded `k=v;k=v` parameter string.
    pub parameter: &'a str,
}

/// The one episode state machine: replays a run's events (ordered by common
/// time) and opens/fills/closes episodes. Both [`RunView::episodes`] and the
/// columnar path in [`crate::dataset`] call this, so they cannot drift.
pub(crate) fn episodes_from_ordered<'a>(
    run_id: u64,
    events: impl Iterator<Item = EpisodeEvent<'a>>,
) -> Vec<DiscoveryEpisode> {
    let mut episodes: Vec<DiscoveryEpisode> = Vec::new();
    let mut open: HashMap<&str, usize> = HashMap::new(); // node -> episode idx
    for e in events {
        match e.event_type {
            "sd_start_search" => {
                episodes.push(DiscoveryEpisode {
                    run_id,
                    su_node: e.node_id.to_string(),
                    search_start_ns: e.common_time_ns,
                    discoveries: Vec::new(),
                });
                open.insert(e.node_id, episodes.len() - 1);
            }
            "sd_service_add" => {
                if let Some(&idx) = open.get(e.node_id) {
                    let params = EventRow::decode_params(e.parameter);
                    let service = params
                        .iter()
                        .find(|(k, _)| k == "service")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default();
                    let ep = &mut episodes[idx];
                    ep.discoveries.push(Discovery {
                        service,
                        at_ns: e.common_time_ns,
                        t_r_ns: e.common_time_ns - ep.search_start_ns,
                    });
                }
            }
            "sd_stop_search" => {
                open.remove(e.node_id);
            }
            _ => {}
        }
    }
    episodes
}

/// A typed view over one run's events.
#[derive(Debug, Clone)]
pub struct RunView {
    /// Run id.
    pub run_id: u64,
    /// Events ordered by common time.
    pub events: Vec<EventRow>,
}

impl RunView {
    /// Loads a run from the level-3 database.
    pub fn load(db: &Database, run_id: u64) -> Result<Self, StoreError> {
        Ok(Self {
            run_id,
            events: EventRow::read_run(db, run_id)?,
        })
    }

    /// All run ids present in a database.
    pub fn run_ids(db: &Database) -> Result<Vec<u64>, StoreError> {
        let mut ids: Vec<u64> = EventRow::read_all(db)?
            .into_iter()
            .map(|e| e.run_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// Extracts the discovery episodes of this run: one per
    /// `sd_start_search` event, holding the `sd_service_add`s that follow
    /// on the same node until the next search start or run end.
    pub fn episodes(&self) -> Vec<DiscoveryEpisode> {
        episodes_from_ordered(
            self.run_id,
            self.events.iter().map(|e| EpisodeEvent {
                node_id: &e.node_id,
                common_time_ns: e.common_time_ns,
                event_type: &e.event_type,
                parameter: &e.parameter,
            }),
        )
    }

    /// Convenience: all episodes of all runs of a database.
    pub fn all_episodes(db: &Database) -> Result<Vec<DiscoveryEpisode>, StoreError> {
        let mut out = Vec::new();
        for run_id in Self::run_ids(db)? {
            out.extend(Self::load(db, run_id)?.episodes());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::schema::create_level3_database;

    fn ev(db: &mut Database, run: u64, node: &str, t: i64, name: &str, service: Option<&str>) {
        EventRow {
            run_id: run,
            node_id: node.into(),
            common_time_ns: t,
            event_type: name.into(),
            parameter: service
                .map(|s| format!("service={s};stype=_exp._tcp"))
                .unwrap_or_default(),
        }
        .insert(db)
        .unwrap();
    }

    fn sample_db() -> Database {
        let mut db = create_level3_database();
        // Run 0: SU on n1 finds two services.
        ev(&mut db, 0, "n1", 1_000, "sd_start_search", None);
        ev(&mut db, 0, "n1", 51_000, "sd_service_add", Some("sm-a"));
        ev(&mut db, 0, "n1", 900_000, "sd_service_add", Some("sm-b"));
        ev(&mut db, 0, "n1", 950_000, "sd_stop_search", None);
        // Run 1: nothing found.
        ev(&mut db, 1, "n1", 2_000, "sd_start_search", None);
        ev(&mut db, 1, "n1", 990_000, "sd_stop_search", None);
        db
    }

    #[test]
    fn episode_extraction_and_t_r() {
        let db = sample_db();
        let eps = RunView::load(&db, 0).unwrap().episodes();
        assert_eq!(eps.len(), 1);
        let ep = &eps[0];
        assert_eq!(ep.su_node, "n1");
        assert_eq!(ep.discoveries.len(), 2);
        assert_eq!(ep.discoveries[0].service, "sm-a");
        assert_eq!(ep.discoveries[0].t_r_ns, 50_000);
        assert_eq!(ep.first_t_r_ns(), Some(50_000));
    }

    #[test]
    fn empty_episode_when_nothing_found() {
        let db = sample_db();
        let eps = RunView::load(&db, 1).unwrap().episodes();
        assert_eq!(eps.len(), 1);
        assert!(eps[0].discoveries.is_empty());
        assert_eq!(eps[0].first_t_r_ns(), None);
    }

    #[test]
    fn discovered_within_counts_distinct_services() {
        let db = sample_db();
        let ep = &RunView::load(&db, 0).unwrap().episodes()[0];
        assert!(ep.discovered_within(1, 50_000));
        assert!(!ep.discovered_within(2, 50_000), "sm-b was later");
        assert!(ep.discovered_within(2, 899_000));
        assert!(!ep.discovered_within(3, i64::MAX));
    }

    #[test]
    fn adds_after_stop_are_ignored() {
        let mut db = create_level3_database();
        ev(&mut db, 0, "n1", 1_000, "sd_start_search", None);
        ev(&mut db, 0, "n1", 2_000, "sd_stop_search", None);
        ev(&mut db, 0, "n1", 3_000, "sd_service_add", Some("late"));
        let eps = RunView::load(&db, 0).unwrap().episodes();
        assert!(eps[0].discoveries.is_empty());
    }

    #[test]
    fn adds_on_other_nodes_do_not_leak() {
        let mut db = create_level3_database();
        ev(&mut db, 0, "n1", 1_000, "sd_start_search", None);
        ev(&mut db, 0, "n2", 2_000, "sd_service_add", Some("other"));
        let eps = RunView::load(&db, 0).unwrap().episodes();
        assert!(eps[0].discoveries.is_empty());
    }

    #[test]
    fn run_ids_and_all_episodes() {
        let db = sample_db();
        assert_eq!(RunView::run_ids(&db).unwrap(), vec![0, 1]);
        assert_eq!(RunView::all_episodes(&db).unwrap().len(), 2);
    }

    #[test]
    fn duplicate_service_adds_counted_once_for_k() {
        let mut db = create_level3_database();
        ev(&mut db, 0, "n1", 1_000, "sd_start_search", None);
        ev(&mut db, 0, "n1", 2_000, "sd_service_add", Some("sm-a"));
        ev(&mut db, 0, "n1", 3_000, "sd_service_add", Some("sm-a"));
        let ep = &RunView::load(&db, 0).unwrap().episodes()[0];
        assert!(!ep.discovered_within(2, i64::MAX));
        assert!(ep.discovered_within(1, 1_500));
    }
}
