//! The analysis crate's typed error.

use excovery_query::QueryError;
use excovery_store::StoreError;
use std::fmt;

/// Everything an analysis entry point can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A row-engine storage operation failed.
    Store(StoreError),
    /// A columnar query failed.
    Query(QueryError),
    /// The stored experiment description could not be parsed.
    Desc(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Store(e) => write!(f, "analysis: {e}"),
            AnalysisError::Query(e) => write!(f, "analysis: {e}"),
            AnalysisError::Desc(msg) => write!(f, "analysis: stored ExpXML unparsable: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Store(e) => Some(e),
            AnalysisError::Query(e) => Some(e),
            AnalysisError::Desc(_) => None,
        }
    }
}

impl From<StoreError> for AnalysisError {
    fn from(e: StoreError) -> Self {
        AnalysisError::Store(e)
    }
}

impl From<QueryError> for AnalysisError {
    fn from(e: QueryError) -> Self {
        AnalysisError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let s: AnalysisError = StoreError("x".into()).into();
        assert!(matches!(s, AnalysisError::Store(_)));
        let q: AnalysisError = QueryError::NoSuchTable("Events".into()).into();
        assert!(matches!(q, AnalysisError::Query(_)));
        use std::error::Error;
        assert!(s.source().is_some());
        assert!(q.source().is_some());
        assert!(AnalysisError::Desc("bad".into()).source().is_none());
        assert!(q.to_string().contains("no such table"));
    }
}
