//! Analytic responsiveness model.
//!
//! Ref. \[26\] of the paper (Dittrich, Lichtblau, Rezende, Malek, MMB&DFT
//! 2014) models the responsiveness of decentralized SD in wireless mesh
//! networks; ExCovery was built to validate such models experimentally.
//! This module provides the matching closed-form model for the one-shot
//! two-party discovery of Fig. 11 on an `h`-hop path with i.i.d. per-link
//! loss `p`:
//!
//! * the SM's unsolicited announcements arrive with probability
//!   `(1-p)^h` each, at their (doubling-interval) schedule;
//! * each SU query round-trips with probability `(1-p)^(2h)` (query out,
//!   response back), at the exponential-backoff schedule;
//! * attempts are independent (each transmission draws its own channel),
//!   so `R(d) = 1 − Π (1 − p_i)` over the attempts completing by `d`.
//!
//! The model deliberately mirrors the defaults of the SD substrate's
//! `SdConfig`; `cs6_model_vs_experiment` overlays its predictions on
//! measured curves.

use serde::Serialize;

/// Protocol schedule parameters (mirror `excovery_sd::SdConfig` defaults).
#[derive(Debug, Clone, Serialize)]
pub struct ProtocolSchedule {
    /// Delay of the first unsolicited announcement after publish, seconds.
    pub first_announce_delay_s: f64,
    /// Number of unsolicited announcements.
    pub announce_count: u32,
    /// First inter-announcement interval (doubles each time), seconds.
    pub announce_interval_s: f64,
    /// Delay of the first query after search start, seconds.
    pub first_query_delay_s: f64,
    /// First inter-query interval, seconds.
    pub query_interval_s: f64,
    /// Backoff multiplier of successive queries.
    pub query_backoff: f64,
    /// Maximum inter-query interval, seconds.
    pub max_query_interval_s: f64,
    /// Mean responder jitter, seconds (uniform draw in [0, 2·mean]).
    pub mean_response_jitter_s: f64,
    /// One-hop propagation/MAC delay, seconds.
    pub hop_delay_s: f64,
}

impl Default for ProtocolSchedule {
    fn default() -> Self {
        Self {
            first_announce_delay_s: 0.050,
            announce_count: 3,
            announce_interval_s: 1.0,
            first_query_delay_s: 0.020,
            query_interval_s: 1.0,
            query_backoff: 2.0,
            max_query_interval_s: 60.0,
            mean_response_jitter_s: 0.060,
            hop_delay_s: 0.0008,
        }
    }
}

/// One discovery opportunity of the model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Attempt {
    /// Instant (seconds after search start) the evidence would arrive.
    pub completes_at_s: f64,
    /// Success probability of this attempt.
    pub success_probability: f64,
    /// `"announce"` or `"query"`.
    pub kind: &'static str,
}

/// The closed-form model for an `h`-hop path with per-link loss `p`.
#[derive(Debug, Clone, Serialize)]
pub struct ResponsivenessModel {
    /// Hop count between SU and SM.
    pub hops: u32,
    /// Per-link loss probability.
    pub per_link_loss: f64,
    /// Protocol schedule.
    pub schedule: ProtocolSchedule,
    /// Horizon: attempts are enumerated up to this deadline, seconds.
    pub horizon_s: f64,
}

impl ResponsivenessModel {
    /// Creates a model with the default protocol schedule and a 30 s
    /// horizon (the Fig. 10 deadline).
    pub fn new(hops: u32, per_link_loss: f64) -> Self {
        Self {
            hops,
            per_link_loss: per_link_loss.clamp(0.0, 1.0),
            schedule: ProtocolSchedule::default(),
            horizon_s: 30.0,
        }
    }

    /// Path delivery probability over `k·hops` links.
    fn path_prob(&self, passes: u32) -> f64 {
        (1.0 - self.per_link_loss).powi((passes * self.hops) as i32)
    }

    /// Enumerates the discovery attempts up to the horizon, in time order.
    ///
    /// Assumes search and publish start simultaneously (the engine gates
    /// both on `ready_to_init`), as in the paper's Figs. 9/10.
    pub fn attempts(&self) -> Vec<Attempt> {
        let s = &self.schedule;
        let mut out = Vec::new();
        // Announcements: one-way, doubling intervals.
        let mut t = s.first_announce_delay_s;
        let mut interval = s.announce_interval_s;
        for _ in 0..s.announce_count {
            let completes = t + self.hops as f64 * s.hop_delay_s;
            if completes <= self.horizon_s {
                out.push(Attempt {
                    completes_at_s: completes,
                    success_probability: self.path_prob(1),
                    kind: "announce",
                });
            }
            t += interval;
            interval *= 2.0;
        }
        // Queries: round trip plus responder jitter.
        let mut t = s.first_query_delay_s;
        let mut interval = s.query_interval_s;
        while t <= self.horizon_s {
            let completes = t + 2.0 * self.hops as f64 * s.hop_delay_s + s.mean_response_jitter_s;
            if completes <= self.horizon_s {
                out.push(Attempt {
                    completes_at_s: completes,
                    success_probability: self.path_prob(2),
                    kind: "query",
                });
            }
            t += interval;
            interval = (interval * self.schedule.query_backoff).min(s.max_query_interval_s);
            if interval <= 0.0 {
                break; // degenerate schedule guard
            }
        }
        out.sort_by(|a, b| a.completes_at_s.total_cmp(&b.completes_at_s));
        out
    }

    /// Predicted `R(d)`: probability of at least one successful attempt
    /// completing within `deadline_s`.
    pub fn predict(&self, deadline_s: f64) -> f64 {
        let mut miss = 1.0;
        for a in self.attempts() {
            if a.completes_at_s <= deadline_s {
                miss *= 1.0 - a.success_probability;
            }
        }
        1.0 - miss
    }

    /// Predicted curve over a deadline grid.
    pub fn predict_curve(&self, deadlines_s: &[f64]) -> Vec<(f64, f64)> {
        deadlines_s.iter().map(|&d| (d, self.predict(d))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_path_discovers_on_first_opportunity() {
        let m = ResponsivenessModel::new(1, 0.0);
        // The first query completes ≈ 0.082 s, before the announce at 0.051.
        assert_eq!(m.predict(0.001), 0.0);
        assert!((m.predict(0.1) - 1.0).abs() < 1e-12);
        assert!((m.predict(30.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_loss_never_discovers() {
        let m = ResponsivenessModel::new(2, 1.0);
        assert_eq!(m.predict(30.0), 0.0);
    }

    #[test]
    fn prediction_is_monotone_in_deadline() {
        let m = ResponsivenessModel::new(3, 0.3);
        let curve = m.predict_curve(&[0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0]);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "{curve:?}");
        }
    }

    #[test]
    fn prediction_decreases_with_loss_and_hops() {
        for d in [0.5, 2.0, 10.0] {
            let base = ResponsivenessModel::new(2, 0.2).predict(d);
            assert!(
                ResponsivenessModel::new(2, 0.4).predict(d) < base,
                "loss effect at {d}"
            );
            assert!(
                ResponsivenessModel::new(4, 0.2).predict(d) < base,
                "hop effect at {d}"
            );
        }
    }

    #[test]
    fn attempts_respect_horizon_and_order() {
        let m = ResponsivenessModel::new(1, 0.2);
        let attempts = m.attempts();
        assert!(attempts.iter().all(|a| a.completes_at_s <= m.horizon_s));
        for w in attempts.windows(2) {
            assert!(w[0].completes_at_s <= w[1].completes_at_s);
        }
        // Default schedule within 30 s: 3 announcements + queries at
        // 0.02, 1.02, 3.02, 7.02, 15.02 (+jitter ≈ .08 …) → 5 queries.
        assert_eq!(attempts.iter().filter(|a| a.kind == "announce").count(), 3);
        assert_eq!(attempts.iter().filter(|a| a.kind == "query").count(), 5);
    }

    #[test]
    fn announce_and_query_probabilities_differ() {
        let m = ResponsivenessModel::new(2, 0.3);
        let attempts = m.attempts();
        let ann = attempts.iter().find(|a| a.kind == "announce").unwrap();
        let qry = attempts.iter().find(|a| a.kind == "query").unwrap();
        assert!((ann.success_probability - 0.49).abs() < 1e-12, "(1-p)^h");
        assert!((qry.success_probability - 0.2401).abs() < 1e-12, "(1-p)^2h");
    }

    #[test]
    fn degenerate_backoff_terminates() {
        let mut m = ResponsivenessModel::new(1, 0.5);
        m.schedule.query_backoff = 0.0;
        m.schedule.query_interval_s = 0.0;
        // Must not loop forever.
        let _ = m.attempts();
    }
}
