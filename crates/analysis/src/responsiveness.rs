//! Responsiveness — the paper's headline SD metric (§VI).
//!
//! "As a time-critical operation, one key property of SD is responsiveness
//! — the probability that a number of SMs is found within a deadline, as
//! required by the application calling SD."
//!
//! [`responsiveness_curve`] estimates `R(d) = P(k SMs found within d)` over
//! the replicated episodes of an experiment, with Wilson confidence bounds,
//! and groups estimates by treatment so factor effects (load, loss, hops)
//! can be read directly from the stored database.

use crate::dataset::ExperimentDataset;
use crate::error::AnalysisError;
use crate::runs::DiscoveryEpisode;
use crate::stats::wilson_interval;
use excovery_store::Database;
use serde::Serialize;
use std::collections::BTreeMap;

/// One point of a responsiveness curve.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResponsivenessPoint {
    /// Deadline in seconds.
    pub deadline_s: f64,
    /// Estimated probability.
    pub probability: f64,
    /// Lower 95% Wilson bound.
    pub ci_low: f64,
    /// Upper 95% Wilson bound.
    pub ci_high: f64,
    /// Episodes the estimate is based on.
    pub episodes: u64,
}

/// Estimates `R(d)` for each deadline over a set of episodes.
///
/// ```
/// use excovery_analysis::responsiveness::responsiveness_curve;
/// use excovery_analysis::runs::{Discovery, DiscoveryEpisode};
///
/// let episode = DiscoveryEpisode {
///     run_id: 0,
///     su_node: "su".into(),
///     search_start_ns: 0,
///     discoveries: vec![Discovery { service: "sm".into(), at_ns: 50_000_000, t_r_ns: 50_000_000 }],
/// };
/// let curve = responsiveness_curve(&[episode], 1, &[0.01, 1.0]);
/// assert_eq!(curve[0].probability, 0.0); // 10 ms deadline missed
/// assert_eq!(curve[1].probability, 1.0); // 1 s deadline met
/// ```
pub fn responsiveness_curve(
    episodes: &[DiscoveryEpisode],
    k: usize,
    deadlines_s: &[f64],
) -> Vec<ResponsivenessPoint> {
    deadlines_s
        .iter()
        .map(|&d| {
            let deadline_ns = (d * 1e9) as i64;
            let trials = episodes.len() as u64;
            let successes = episodes
                .iter()
                .filter(|e| e.discovered_within(k, deadline_ns))
                .count() as u64;
            let probability = if trials == 0 {
                0.0
            } else {
                successes as f64 / trials as f64
            };
            let (ci_low, ci_high) = wilson_interval(successes, trials);
            ResponsivenessPoint {
                deadline_s: d,
                probability,
                ci_low,
                ci_high,
                episodes: trials,
            }
        })
        .collect()
}

/// Responsiveness per treatment key, directly from a level-3 database.
///
/// `treatment_of_run` maps run ids to treatment keys; the engine's
/// `RunOutcome`s provide it, or it can be reconstructed from the stored
/// experiment plan.
pub fn responsiveness_by_treatment(
    db: &Database,
    treatment_of_run: &dyn Fn(u64) -> String,
    k: usize,
    deadlines_s: &[f64],
) -> Result<BTreeMap<String, Vec<ResponsivenessPoint>>, AnalysisError> {
    let ds = ExperimentDataset::new(db)?;
    let mut by_run = ds.episodes_by_run()?;
    let mut grouped: BTreeMap<String, Vec<DiscoveryEpisode>> = BTreeMap::new();
    // Runs are enumerated from RunInfos (as before), so a run without
    // events still registers its treatment key with zero episodes.
    for run_id in ds.run_ids_with_info()? {
        let eps = by_run.remove(&run_id).unwrap_or_default();
        grouped
            .entry(treatment_of_run(run_id))
            .or_default()
            .extend(eps);
    }
    Ok(grouped
        .into_iter()
        .map(|(key, eps)| (key, responsiveness_curve(&eps, k, deadlines_s)))
        .collect())
}

/// Formats a curve as an aligned text table (harness output).
pub fn format_curve(label: &str, curve: &[ResponsivenessPoint]) -> String {
    let mut out = format!("# responsiveness: {label}\n");
    out.push_str("deadline_s  R         ci_low    ci_high   n\n");
    for p in curve {
        out.push_str(&format!(
            "{:<10.3} {:<9.4} {:<9.4} {:<9.4} {}\n",
            p.deadline_s, p.probability, p.ci_low, p.ci_high, p.episodes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::Discovery;

    fn episode(t_rs_ns: &[i64]) -> DiscoveryEpisode {
        DiscoveryEpisode {
            run_id: 0,
            su_node: "n1".into(),
            search_start_ns: 0,
            discoveries: t_rs_ns
                .iter()
                .enumerate()
                .map(|(i, &t)| Discovery {
                    service: format!("sm-{i}"),
                    at_ns: t,
                    t_r_ns: t,
                })
                .collect(),
        }
    }

    #[test]
    fn curve_is_monotone_in_deadline() {
        let eps: Vec<DiscoveryEpisode> = (0..100)
            .map(|i| episode(&[(i as i64 + 1) * 10_000_000])) // 10..1000 ms
            .collect();
        let curve = responsiveness_curve(&eps, 1, &[0.005, 0.25, 0.5, 1.0, 2.0]);
        assert_eq!(curve[0].probability, 0.0);
        assert_eq!(curve.last().unwrap().probability, 1.0);
        for w in curve.windows(2) {
            assert!(w[0].probability <= w[1].probability);
        }
    }

    #[test]
    fn k_services_requires_k_within_deadline() {
        let eps = vec![episode(&[100, 2_000_000_000])];
        let one = responsiveness_curve(&eps, 1, &[1.0]);
        let two = responsiveness_curve(&eps, 2, &[1.0]);
        let two_late = responsiveness_curve(&eps, 2, &[3.0]);
        assert_eq!(one[0].probability, 1.0);
        assert_eq!(two[0].probability, 0.0);
        assert_eq!(two_late[0].probability, 1.0);
    }

    #[test]
    fn confidence_bounds_bracket_estimate() {
        let mut eps: Vec<DiscoveryEpisode> = (0..80).map(|_| episode(&[1_000])).collect();
        eps.extend((0..20).map(|_| episode(&[])));
        let curve = responsiveness_curve(&eps, 1, &[1.0]);
        let p = &curve[0];
        assert!((p.probability - 0.8).abs() < 1e-12);
        assert!(p.ci_low < 0.8 && 0.8 < p.ci_high);
        assert_eq!(p.episodes, 100);
    }

    #[test]
    fn empty_episode_set_gives_zero() {
        let curve = responsiveness_curve(&[], 1, &[1.0]);
        assert_eq!(curve[0].probability, 0.0);
        assert_eq!(curve[0].episodes, 0);
    }

    #[test]
    fn format_is_tabular() {
        let curve = responsiveness_curve(&[episode(&[100])], 1, &[0.5, 1.0]);
        let text = format_curve("demo", &curve);
        assert!(text.contains("# responsiveness: demo"));
        assert_eq!(text.lines().count(), 4);
    }
}
