//! # excovery-analysis
//!
//! Extraction and analysis of event- and packet-based metrics from stored
//! experiments (paper §IV-F, §VI).
//!
//! * [`dataset`] — a columnar [`ExperimentDataset`] snapshot of a package;
//!   the aggregate entry points below are thin wrappers over its
//!   `excovery_query` scans, with results bit-identical to the old
//!   hand-rolled row loops.
//! * [`runs`] — reconstruction of per-run discovery episodes from the
//!   level-3 `Events` table (search start, per-service `t_R`, deadline
//!   verdicts).
//! * [`responsiveness`] — the paper's headline metric: "the probability
//!   that a number of SMs is found within a deadline, as required by the
//!   application calling SD", estimated over replicated runs with
//!   confidence intervals, per treatment.
//! * [`stats`] — summary statistics (mean/median/percentiles) and series
//!   helpers used by the benchmark harnesses.
//! * [`packetstats`] — packet-level loss/delay derived from captures, the
//!   analysis the 16-bit tagger enables.
//! * [`timeline`] — the Fig. 11 visualization: per-actor timelines of
//!   actions (white circles) and events (black circles), rendered as ASCII
//!   and SVG.

pub mod dataset;
pub mod error;
pub mod model;
pub mod packetstats;
pub mod report;
pub mod responsiveness;
pub mod runs;
pub mod stats;
pub mod timeline;
pub mod treatments;
pub mod verify;

pub use dataset::ExperimentDataset;
pub use error::AnalysisError;
pub use responsiveness::{responsiveness_curve, ResponsivenessPoint};
pub use runs::{DiscoveryEpisode, RunView};
pub use stats::Summary;
