//! Fig. 11 — visualization of a one-shot discovery process.
//!
//! "It shows a single active SD in a two-party architecture with a timeline
//! for each actor SU and SM. Actions are shown as white circles, events as
//! black circles." This module renders the stored event list of a run as
//! such a per-actor timeline, in ASCII (for the terminal harness) and SVG.

use excovery_store::records::EventRow;
use std::collections::BTreeMap;

/// A classified marker on a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// Common time, ns.
    pub t_ns: i64,
    /// Event name.
    pub name: String,
    /// True for actions (white circles), false for events (black).
    pub is_action: bool,
}

/// A per-node timeline extracted from a run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Node label → markers in time order.
    pub lanes: BTreeMap<String, Vec<Marker>>,
}

/// Names rendered as *actions* (white circles in Fig. 11): the SD actions
/// of §V and the flow-control flags; everything else is an event.
fn is_action(name: &str) -> bool {
    matches!(
        name,
        "sd_init_done"
            | "sd_exit_done"
            | "sd_start_search"
            | "sd_stop_search"
            | "sd_start_publish"
            | "sd_stop_publish"
    )
}

impl Timeline {
    /// Builds a timeline from a run's events, keeping only nodes in
    /// `actors` (label mapping: platform id → display label). Master-side
    /// lifecycle events are dropped.
    pub fn from_events(events: &[EventRow], actors: &BTreeMap<String, String>) -> Self {
        let mut lanes: BTreeMap<String, Vec<Marker>> = BTreeMap::new();
        for (pid, label) in actors {
            lanes.insert(label.clone(), Vec::new());
            for e in events.iter().filter(|e| &e.node_id == pid) {
                lanes.get_mut(label).unwrap().push(Marker {
                    t_ns: e.common_time_ns,
                    name: e.event_type.clone(),
                    is_action: is_action(&e.event_type),
                });
            }
        }
        for markers in lanes.values_mut() {
            markers.sort_by_key(|m| m.t_ns);
        }
        Self { lanes }
    }

    fn time_range(&self) -> Option<(i64, i64)> {
        let times: Vec<i64> = self.lanes.values().flatten().map(|m| m.t_ns).collect();
        let lo = *times.iter().min()?;
        let hi = *times.iter().max()?;
        Some((lo, hi.max(lo + 1)))
    }

    /// The response time t_R: span from the first `sd_start_search` to the
    /// first subsequent `sd_service_add`, if both occur.
    pub fn t_r_ns(&self) -> Option<i64> {
        let all: Vec<&Marker> = {
            let mut v: Vec<&Marker> = self.lanes.values().flatten().collect();
            v.sort_by_key(|m| m.t_ns);
            v
        };
        let start = all.iter().find(|m| m.name == "sd_start_search")?.t_ns;
        let add = all
            .iter()
            .find(|m| m.name == "sd_service_add" && m.t_ns >= start)?
            .t_ns;
        Some(add - start)
    }

    /// Renders the timeline as ASCII art (fixed width `cols`).
    pub fn render_ascii(&self, cols: usize) -> String {
        let Some((lo, hi)) = self.time_range() else {
            return String::from("(empty timeline)\n");
        };
        let cols = cols.max(20);
        let span = (hi - lo) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "one-shot discovery timeline  [{:.3}s .. {:.3}s]\n",
            lo as f64 / 1e9,
            hi as f64 / 1e9
        ));
        if let Some(t_r) = self.t_r_ns() {
            out.push_str(&format!("t_R = {:.3} ms\n", t_r as f64 / 1e6));
        }
        let label_w = self.lanes.keys().map(String::len).max().unwrap_or(3).max(3);
        let mut legend: Vec<String> = Vec::new();
        let mut idx = 0usize;
        for (label, markers) in &self.lanes {
            let mut lane: Vec<char> = vec!['-'; cols];
            for m in markers {
                let pos = (((m.t_ns - lo) as f64 / span) * (cols - 1) as f64).round() as usize;
                let symbol = char::from_digit(((idx % 35) + 1) as u32, 36).unwrap();
                // Collisions shift right to stay visible.
                let mut p = pos.min(cols - 1);
                while lane[p] != '-' && p + 1 < cols {
                    p += 1;
                }
                lane[p] = symbol;
                let circle = if m.is_action { "○" } else { "●" };
                legend.push(format!(
                    "  {symbol} {circle} {label}: {} @ {:.4}s",
                    m.name,
                    m.t_ns as f64 / 1e9
                ));
                idx += 1;
            }
            out.push_str(&format!(
                "{label:>label_w$} |{}|\n",
                lane.iter().collect::<String>()
            ));
        }
        out.push_str("legend (○ action, ● event):\n");
        for l in legend {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Renders the timeline as a standalone SVG document.
    pub fn render_svg(&self, width: u32) -> String {
        let Some((lo, hi)) = self.time_range() else {
            return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>");
        };
        let width = width.max(200);
        let lane_h = 48;
        let margin = 90.0;
        let usable = width as f64 - margin - 20.0;
        let span = (hi - lo) as f64;
        let height = self.lanes.len() as u32 * lane_h + 60;
        let mut s = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             font-family=\"sans-serif\" font-size=\"11\">\n"
        );
        if let Some(t_r) = self.t_r_ns() {
            s.push_str(&format!(
                "  <text x=\"{margin}\" y=\"16\">t_R = {:.3} ms</text>\n",
                t_r as f64 / 1e6
            ));
        }
        for (i, (label, markers)) in self.lanes.iter().enumerate() {
            let y = 40.0 + i as f64 * lane_h as f64;
            s.push_str(&format!(
                "  <text x=\"8\" y=\"{:.1}\">{label}</text>\n",
                y + 4.0
            ));
            s.push_str(&format!(
                "  <line x1=\"{margin}\" y1=\"{y}\" x2=\"{:.1}\" y2=\"{y}\" stroke=\"#444\"/>\n",
                margin + usable
            ));
            for m in markers {
                let x = margin + ((m.t_ns - lo) as f64 / span) * usable;
                let fill = if m.is_action { "white" } else { "black" };
                s.push_str(&format!(
                    "  <circle cx=\"{x:.1}\" cy=\"{y}\" r=\"5\" fill=\"{fill}\" stroke=\"black\"/>\n"
                ));
                s.push_str(&format!(
                    "  <text x=\"{x:.1}\" y=\"{:.1}\" transform=\"rotate(40 {x:.1} {:.1})\">{}</text>\n",
                    y + 18.0,
                    y + 18.0,
                    m.name
                ));
            }
        }
        s.push_str("</svg>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: &str, t: i64, name: &str) -> EventRow {
        EventRow {
            run_id: 0,
            node_id: node.into(),
            common_time_ns: t,
            event_type: name.into(),
            parameter: String::new(),
        }
    }

    fn fig11_events() -> Vec<EventRow> {
        vec![
            ev("t9-157", 0, "sd_init_done"),
            ev("t9-157", 50_000_000, "sd_start_publish"),
            ev("t9-105", 80_000_000, "sd_init_done"),
            ev("t9-105", 100_000_000, "sd_start_search"),
            ev("t9-105", 340_000_000, "sd_service_add"),
            ev("t9-105", 350_000_000, "done"),
            ev("t9-157", 400_000_000, "sd_stop_publish"),
            ev("master", 500_000_000, "run_exit"),
        ]
    }

    fn actors() -> BTreeMap<String, String> {
        BTreeMap::from([
            ("t9-157".to_string(), "SM1".to_string()),
            ("t9-105".to_string(), "SU1".to_string()),
        ])
    }

    #[test]
    fn lanes_are_per_actor_and_sorted() {
        let tl = Timeline::from_events(&fig11_events(), &actors());
        assert_eq!(tl.lanes.len(), 2);
        assert_eq!(tl.lanes["SM1"].len(), 3);
        assert_eq!(tl.lanes["SU1"].len(), 4);
        for markers in tl.lanes.values() {
            for w in markers.windows(2) {
                assert!(w[0].t_ns <= w[1].t_ns);
            }
        }
        // Master events excluded.
        assert!(tl.lanes.values().flatten().all(|m| m.name != "run_exit"));
    }

    #[test]
    fn t_r_matches_fig11_definition() {
        let tl = Timeline::from_events(&fig11_events(), &actors());
        assert_eq!(tl.t_r_ns(), Some(240_000_000));
    }

    #[test]
    fn action_vs_event_classification() {
        let tl = Timeline::from_events(&fig11_events(), &actors());
        let add = tl.lanes["SU1"]
            .iter()
            .find(|m| m.name == "sd_service_add")
            .unwrap();
        assert!(!add.is_action, "sd_service_add is an event (black)");
        let start = tl.lanes["SU1"]
            .iter()
            .find(|m| m.name == "sd_start_search")
            .unwrap();
        assert!(start.is_action, "sd_start_search is an action (white)");
    }

    #[test]
    fn ascii_render_contains_lanes_and_legend() {
        let tl = Timeline::from_events(&fig11_events(), &actors());
        let text = tl.render_ascii(72);
        assert!(text.contains("SM1 |"));
        assert!(text.contains("SU1 |"));
        assert!(text.contains("t_R = 240.000 ms"));
        assert!(text.contains("● SU1: sd_service_add"));
        assert!(text.contains("○ SU1: sd_start_search"));
    }

    #[test]
    fn svg_render_is_wellformed_xml() {
        let tl = Timeline::from_events(&fig11_events(), &actors());
        let svg = tl.render_svg(800);
        let doc = excovery_xml::parse(&svg).expect("SVG parses as XML");
        assert_eq!(doc.root().name, "svg");
        let circles = doc.root().find_all("circle");
        assert_eq!(circles.len(), 7);
        assert!(circles.iter().any(|c| c.attr("fill") == Some("white")));
        assert!(circles.iter().any(|c| c.attr("fill") == Some("black")));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tl = Timeline::from_events(&[], &BTreeMap::new());
        assert!(tl.render_ascii(80).contains("empty"));
        assert!(tl.render_svg(800).starts_with("<svg"));
        assert_eq!(tl.t_r_ns(), None);
    }
}
