//! Experiment reports.
//!
//! Generates a self-contained Markdown report from a stored level-3
//! package: experiment metadata, per-run overview, responsiveness curve,
//! response-time statistics and packet-level delivery ratios — the
//! "extraction and analysis of event and packet based metrics" the
//! prototype ships as a set of functions (§VI-A), bundled into one
//! shareable document. All aggregate inputs come from one columnar
//! [`ExperimentDataset`] snapshot.

use crate::dataset::ExperimentDataset;
use crate::error::AnalysisError;
use crate::packetstats::path_stats;
use crate::responsiveness::responsiveness_curve;
use crate::stats::Summary;
use excovery_store::records::ExperimentInfo;
use excovery_store::Database;

/// Options for report generation.
///
/// Construct via [`ReportOptions::builder`]; the fields are kept public
/// only for backward compatibility.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Number of SMs that must be discovered (the `k` of responsiveness).
    #[deprecated(note = "construct via `ReportOptions::builder()`")]
    pub k: usize,
    /// Deadlines (seconds) of the responsiveness table.
    #[deprecated(note = "construct via `ReportOptions::builder()`")]
    pub deadlines_s: Vec<f64>,
    /// Include per-run detail rows (off for experiments with many runs).
    #[deprecated(note = "construct via `ReportOptions::builder()`")]
    pub per_run_detail: bool,
}

impl ReportOptions {
    /// Starts a builder with the default options (`k = 1`, the standard
    /// deadline grid, per-run detail on).
    pub fn builder() -> ReportOptionsBuilder {
        ReportOptionsBuilder {
            k: 1,
            deadlines_s: vec![0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0],
            per_run_detail: true,
        }
    }
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self::builder().build()
    }
}

/// Builder for [`ReportOptions`], matching the `EngineConfig::builder()`
/// idiom.
#[derive(Debug, Clone)]
pub struct ReportOptionsBuilder {
    k: usize,
    deadlines_s: Vec<f64>,
    per_run_detail: bool,
}

impl ReportOptionsBuilder {
    /// Sets the number of SMs that must be discovered.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the deadline grid (seconds) of the responsiveness table.
    pub fn deadlines_s(mut self, deadlines: impl IntoIterator<Item = f64>) -> Self {
        self.deadlines_s = deadlines.into_iter().collect();
        self
    }

    /// Toggles per-run detail rows.
    pub fn per_run_detail(mut self, on: bool) -> Self {
        self.per_run_detail = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ReportOptions {
        #[allow(deprecated)]
        ReportOptions {
            k: self.k,
            deadlines_s: self.deadlines_s,
            per_run_detail: self.per_run_detail,
        }
    }
}

/// Renders the full Markdown report.
pub fn render(db: &Database, opts: &ReportOptions) -> Result<String, AnalysisError> {
    #[allow(deprecated)]
    let (k, deadlines_s, per_run_detail) = (opts.k, &opts.deadlines_s, opts.per_run_detail);
    let info = ExperimentInfo::read(db)?;
    let ds = ExperimentDataset::new(db)?;
    let run_ids = ds.run_ids()?;
    let by_run = ds.episodes_by_run()?;
    let episodes: Vec<_> = by_run.values().flatten().cloned().collect();
    let mut out = String::new();

    out.push_str(&format!("# Experiment report: {}\n\n", info.name));
    if !info.comment.is_empty() {
        out.push_str(&format!("> {}\n\n", info.comment));
    }
    out.push_str(&format!("* executed by: `{}`\n", info.ee_version));
    out.push_str(&format!("* runs: {}\n", run_ids.len()));
    out.push_str(&format!("* discovery episodes: {}\n", episodes.len()));
    let offsets: Vec<f64> = ds
        .clock_offsets_ns()?
        .iter()
        .map(|d| d.abs() as f64)
        .collect();
    if !offsets.is_empty() {
        if let Some(s) = Summary::compute(&offsets) {
            out.push_str(&format!(
                "* measured |clock offset|: mean {:.3} ms, max {:.3} ms\n",
                s.mean / 1e6,
                s.max / 1e6
            ));
        }
    }
    out.push('\n');

    // Responsiveness table.
    out.push_str(&format!("## Responsiveness (k = {k})\n\n"));
    out.push_str("| deadline (s) | R | 95% CI |\n|---|---|---|\n");
    for p in responsiveness_curve(&episodes, k, deadlines_s) {
        out.push_str(&format!(
            "| {} | {:.4} | [{:.4}, {:.4}] |\n",
            p.deadline_s, p.probability, p.ci_low, p.ci_high
        ));
    }
    out.push('\n');

    // Response-time statistics.
    let t_rs: Vec<f64> = episodes
        .iter()
        .filter_map(|e| e.first_t_r_ns())
        .map(|t| t as f64 / 1e9)
        .collect();
    out.push_str("## Response time t_R (first discovery)\n\n");
    match Summary::compute(&t_rs) {
        Some(s) => out.push_str(&format!(
            "| n | mean | median | p95 | min | max |\n|---|---|---|---|---|---|\n\
             | {} | {:.4} s | {:.4} s | {:.4} s | {:.4} s | {:.4} s |\n\n",
            s.n, s.mean, s.median, s.p95, s.min, s.max
        )),
        None => out.push_str("no successful discoveries.\n\n"),
    }

    // Packet volume + per-path delivery of the first run.
    out.push_str("## Packet captures\n\n");
    let volumes = ds.packets_per_run()?;
    let total: usize = volumes.values().sum();
    out.push_str(&format!(
        "{total} captures across {} runs.\n\n",
        volumes.len()
    ));
    if let Some(&first) = run_ids.first() {
        let paths = path_stats(db, first)?;
        if !paths.is_empty() {
            out.push_str(&format!("Per-path delivery in run {first}:\n\n"));
            out.push_str("| src | observer | sent | observed | delivery | mean delay |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for p in paths {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {:.3} | {:.2} ms |\n",
                    p.src,
                    p.observer,
                    p.sent,
                    p.observed,
                    p.delivery_ratio(),
                    p.mean_delay_s * 1e3
                ));
            }
            out.push('\n');
        }
    }

    // Consistency of the two independent recordings (§IV-B2).
    out.push_str("## Event/packet consistency\n\n");
    let findings = crate::verify::verify_all(db)?;
    if findings.is_empty() {
        out.push_str("event list and packet captures are mutually consistent.\n\n");
    } else {
        for f in findings.iter().take(20) {
            out.push_str(&format!("* run {}: {}\n", f.run_id, f.message));
        }
        if findings.len() > 20 {
            out.push_str(&format!("* … {} more findings\n", findings.len() - 20));
        }
        out.push('\n');
    }

    // Optional per-run detail.
    if per_run_detail {
        out.push_str("## Runs\n\n| run | episodes | first t_R |\n|---|---|---|\n");
        for run_id in &run_ids {
            let eps = by_run.get(run_id).map(Vec::as_slice).unwrap_or(&[]);
            let t_r = eps
                .first()
                .and_then(|e| e.first_t_r_ns())
                .map(|t| format!("{:.4} s", t as f64 / 1e9))
                .unwrap_or_else(|| "—".into());
            out.push_str(&format!("| {run_id} | {} | {t_r} |\n", eps.len()));
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::records::{EventRow, PacketRow, RunInfoRow};
    use excovery_store::schema::{create_level3_database, EE_VERSION};

    fn sample_db() -> Database {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: "<experiment name=\"r\"/>".into(),
            ee_version: EE_VERSION.into(),
            name: "report-demo".into(),
            comment: "demo".into(),
        }
        .insert(&mut db)
        .unwrap();
        for run in 0..2u64 {
            RunInfoRow {
                run_id: run,
                node_id: "n1".into(),
                start_time_ns: 0,
                time_diff_ns: 2_000_000,
            }
            .insert(&mut db)
            .unwrap();
            EventRow {
                run_id: run,
                node_id: "n1".into(),
                common_time_ns: 1_000,
                event_type: "sd_start_search".into(),
                parameter: String::new(),
            }
            .insert(&mut db)
            .unwrap();
            EventRow {
                run_id: run,
                node_id: "n1".into(),
                common_time_ns: 40_001_000,
                event_type: "sd_service_add".into(),
                parameter: "service=n0".into(),
            }
            .insert(&mut db)
            .unwrap();
            PacketRow {
                run_id: run,
                node_id: "n0".into(),
                common_time_ns: 500,
                src_node_id: "n0".into(),
                data: vec![1],
            }
            .insert(&mut db)
            .unwrap();
            PacketRow {
                run_id: run,
                node_id: "n1".into(),
                common_time_ns: 1_500,
                src_node_id: "n0".into(),
                data: vec![1],
            }
            .insert(&mut db)
            .unwrap();
        }
        db
    }

    #[test]
    fn report_contains_all_sections() {
        let db = sample_db();
        let report = render(&db, &ReportOptions::default()).unwrap();
        for needle in [
            "# Experiment report: report-demo",
            "## Responsiveness (k = 1)",
            "| 0.1 | 1.0000",
            "## Response time t_R",
            "0.0400 s",
            "## Packet captures",
            "4 captures across 2 runs",
            "Per-path delivery in run 0",
            "## Runs",
            "clock offset",
        ] {
            assert!(report.contains(needle), "missing: {needle}\n{report}");
        }
    }

    #[test]
    fn per_run_detail_is_optional() {
        let db = sample_db();
        let opts = ReportOptions::builder().per_run_detail(false).build();
        let report = render(&db, &opts).unwrap();
        assert!(!report.contains("## Runs"));
    }

    #[test]
    fn builder_matches_field_literal_defaults() {
        let built = ReportOptions::builder().k(2).build();
        #[allow(deprecated)]
        {
            assert_eq!(built.k, 2);
            assert_eq!(ReportOptions::default().k, 1);
            assert_eq!(ReportOptions::default().deadlines_s.len(), 8);
            assert!(ReportOptions::default().per_run_detail);
        }
    }

    #[test]
    fn empty_database_reports_gracefully() {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: String::new(),
            ee_version: EE_VERSION.into(),
            name: "empty".into(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        let report = render(&db, &ReportOptions::default()).unwrap();
        assert!(report.contains("no successful discoveries"));
        assert!(report.contains("runs: 0"));
    }
}
