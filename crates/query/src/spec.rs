//! The bridge between the local [`Scan`] builder and the one
//! serializable logical-plan type, [`excovery_rpc::PlanSpec`].
//!
//! Historically the repo carried two divergent plan dialects: the
//! builder chain here and a hand-mapped remote `PlanSpec` in the server
//! crate. This module collapses them — [`Scan::to_spec`] lowers a
//! builder chain losslessly into a `PlanSpec`, and
//! [`Dataset::run_spec`] executes any `PlanSpec` through the exact code
//! path `Scan::collect` uses. The pair is inverse in the observable
//! sense: `ds.run_spec(&scan.to_spec()?)` returns a [`Frame`]
//! bit-identical to `scan.collect()`, locally or across the wire
//! (proven by the round-trip property suite).
//!
//! The only builder knob a spec does not carry is
//! [`Scan::workers`] — an execution-scheduling hint, not plan
//! semantics: results are bit-identical at any worker count, so
//! dropping it is still lossless for the *meaning* of the plan.

use crate::agg::{Agg, AggSpec};
use crate::column::Value;
use crate::dataset::Dataset;
use crate::error::QueryError;
use crate::expr::{col, lit, CmpOp, Expr};
use crate::plan::{Frame, Scan};
use excovery_rpc::{
    AggOp, AggSpec as WireAggSpec, CellValue, ExprSpec, FilterOp, PlanSpec, WireFrame,
};

/// Converts a column value to its wire twin.
pub fn value_to_cell(v: &Value) -> CellValue {
    match v {
        Value::Null => CellValue::Null,
        Value::I64(i) => CellValue::I64(*i),
        Value::F64(f) => CellValue::F64(*f),
        Value::Str(s) => CellValue::Str(s.clone()),
        Value::Bytes(b) => CellValue::Bytes(b.clone()),
    }
}

/// Converts a wire cell to its column-value twin.
pub fn cell_to_value(c: &CellValue) -> Value {
    match c {
        CellValue::Null => Value::Null,
        CellValue::I64(i) => Value::I64(*i),
        CellValue::F64(f) => Value::F64(*f),
        CellValue::Str(s) => Value::Str(s.clone()),
        CellValue::Bytes(b) => Value::Bytes(b.clone()),
    }
}

fn op_to_wire(op: CmpOp) -> FilterOp {
    match op {
        CmpOp::Eq => FilterOp::Eq,
        CmpOp::Ne => FilterOp::Ne,
        CmpOp::Lt => FilterOp::Lt,
        CmpOp::Le => FilterOp::Le,
        CmpOp::Gt => FilterOp::Gt,
        CmpOp::Ge => FilterOp::Ge,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Lowers a filter expression into the serializable predicate tree.
///
/// Comparisons are normalised to column-op-literal (flipping the
/// operator when the literal is on the left), the same normalisation
/// the executor's `bind` applies — so the lowered tree evaluates
/// identically. Shapes the executor would reject (bare columns,
/// column-to-column comparison) are [`QueryError::Unsupported`] here
/// too, just earlier.
pub fn expr_to_spec(e: &Expr) -> Result<ExprSpec, QueryError> {
    match e {
        Expr::Col(_) | Expr::Lit(_) => Err(QueryError::Unsupported(
            "bare column/literal used as a filter (compare it with eq/lt/…)".into(),
        )),
        Expr::Cmp(op, a, b) => {
            let (column, value, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => (c, v, *op),
                (Expr::Lit(v), Expr::Col(c)) => (c, v, flip(*op)),
                _ => {
                    return Err(QueryError::Unsupported(
                        "comparison must be between a column and a literal".into(),
                    ))
                }
            };
            Ok(ExprSpec::Cmp {
                column: column.clone(),
                op: op_to_wire(op),
                value: value_to_cell(value),
            })
        }
        Expr::And(a, b) => Ok(expr_to_spec(a)?.and(expr_to_spec(b)?)),
        Expr::Or(a, b) => Ok(expr_to_spec(a)?.or(expr_to_spec(b)?)),
        Expr::Not(e) => Ok(expr_to_spec(e)?.not()),
    }
}

/// Raises a serializable predicate tree back into a filter expression.
pub fn spec_to_expr(e: &ExprSpec) -> Expr {
    match e {
        ExprSpec::Cmp { column, op, value } => {
            let c = col(column.clone());
            let l = lit(cell_to_value(value));
            match op {
                FilterOp::Eq => c.eq(l),
                FilterOp::Ne => c.ne(l),
                FilterOp::Lt => c.lt(l),
                FilterOp::Le => c.le(l),
                FilterOp::Gt => c.gt(l),
                FilterOp::Ge => c.ge(l),
            }
        }
        ExprSpec::And(a, b) => spec_to_expr(a).and(spec_to_expr(b)),
        ExprSpec::Or(a, b) => spec_to_expr(a).or(spec_to_expr(b)),
        ExprSpec::Not(e) => spec_to_expr(e).not(),
    }
}

/// Lowers one aggregate into its wire form. The output name is always
/// carried: [`Agg`] names every aggregate (defaulted or overridden), so
/// the spec round-trips to the identical output column.
pub fn agg_to_spec(a: &Agg) -> WireAggSpec {
    let (op, column, q) = match &a.spec {
        AggSpec::Count => (AggOp::Count, None, None),
        AggSpec::Sum(c) => (AggOp::Sum, Some(c.clone()), None),
        AggSpec::Mean(c) => (AggOp::Mean, Some(c.clone()), None),
        AggSpec::Min(c) => (AggOp::Min, Some(c.clone()), None),
        AggSpec::Max(c) => (AggOp::Max, Some(c.clone()), None),
        AggSpec::Quantile(c, q) => (AggOp::Quantile, Some(c.clone()), Some(*q)),
    };
    WireAggSpec {
        op,
        column,
        name: Some(a.name.clone()),
        q,
    }
}

/// Raises a wire aggregate into an executable [`Agg`].
pub fn spec_to_agg(a: &WireAggSpec) -> Result<Agg, QueryError> {
    let need_column = || {
        a.column.clone().ok_or_else(|| {
            QueryError::Unsupported(format!("aggregate '{}' needs a column", a.op.as_str()))
        })
    };
    let agg = match a.op {
        AggOp::Count => Agg::count(),
        AggOp::Sum => Agg::sum(need_column()?),
        AggOp::Mean => Agg::mean(need_column()?),
        AggOp::Min => Agg::min(need_column()?),
        AggOp::Max => Agg::max(need_column()?),
        AggOp::Quantile => {
            let q = a.q.ok_or_else(|| {
                QueryError::Unsupported("quantile aggregate needs a rank 'q'".into())
            })?;
            if !(0.0..=1.0).contains(&q) {
                return Err(QueryError::Unsupported(format!(
                    "quantile rank {q} outside [0, 1]"
                )));
            }
            Agg::quantile(need_column()?, q)
        }
    };
    Ok(match &a.name {
        Some(name) => agg.named(name.clone()),
        None => agg,
    })
}

/// Converts a result frame to its wire twin (cell for cell; floats keep
/// their bit patterns, so wire digest equality ⇔ frame digest equality).
pub fn frame_to_wire(f: &Frame) -> WireFrame {
    WireFrame {
        columns: f.columns.clone(),
        rows: f
            .rows
            .iter()
            .map(|r| r.iter().map(value_to_cell).collect())
            .collect(),
    }
}

/// Converts a wire frame back to a local [`Frame`].
pub fn wire_to_frame(w: &WireFrame) -> Frame {
    Frame {
        columns: w.columns.clone(),
        rows: w
            .rows
            .iter()
            .map(|r| r.iter().map(cell_to_value).collect())
            .collect(),
    }
}

impl Scan<'_> {
    /// Lowers this builder chain into the serializable [`PlanSpec`] —
    /// lossless: executing the spec with [`Dataset::run_spec`] (here or
    /// on a server) returns a frame bit-identical to
    /// [`collect`](Scan::collect).
    ///
    /// The [`workers`](Scan::workers) override is *not* carried: it is
    /// an execution-scheduling knob, and results are bit-identical at
    /// any worker count by the determinism contract.
    pub fn to_spec(&self) -> Result<PlanSpec, QueryError> {
        let select = match &self.project {
            None => Vec::new(),
            // An explicit zero-column projection has no spec encoding
            // (empty `select` means "plan default" on the wire).
            Some(cols) if cols.is_empty() => {
                return Err(QueryError::Unsupported(
                    "empty projection is not representable in a PlanSpec".into(),
                ))
            }
            Some(cols) => cols.clone(),
        };
        Ok(PlanSpec {
            table: self.table.clone(),
            predicate: self.filter.as_ref().map(expr_to_spec).transpose()?,
            group_by: self.group_by.clone(),
            aggs: self.aggs.iter().map(agg_to_spec).collect(),
            select,
            sort_by: self.sort.clone(),
        })
    }
}

impl Dataset {
    /// Executes a serializable plan through the same path as
    /// [`Scan::collect`] — the single entry point local callers, the
    /// server's `query.run` handler and standing queries all share.
    pub fn run_spec(&self, spec: &PlanSpec) -> Result<Frame, QueryError> {
        self.spec_scan(spec)?.collect()
    }

    /// Builds the [`Scan`] a spec describes (shared by [`run_spec`]
    /// [`Dataset::run_spec`] and the incremental layer, which needs the
    /// scan itself rather than its one-shot result).
    pub(crate) fn spec_scan(&self, spec: &PlanSpec) -> Result<Scan<'_>, QueryError> {
        let mut scan = self
            .scan(&spec.table)
            .group_by(spec.group_by.iter().cloned())
            .agg(
                spec.aggs
                    .iter()
                    .map(spec_to_agg)
                    .collect::<Result<Vec<_>, _>>()?,
            );
        if let Some(p) = &spec.predicate {
            scan = scan.filter(spec_to_expr(p));
        }
        if !spec.select.is_empty() {
            scan = scan.select(spec.select.iter().cloned());
        }
        if let Some(s) = &spec.sort_by {
            scan = scan.sort_by(s.clone());
        }
        Ok(scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;
    use crate::expr::null;
    use excovery_store::{Column, ColumnType, Database, SqlValue};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Events",
            vec![
                Column::new("RunID", ColumnType::Integer),
                Column::new("Kind", ColumnType::Text),
                Column::new("Time", ColumnType::Real),
            ],
        )
        .unwrap();
        for (run, kind, t) in [
            (0i64, "a", 1.5f64),
            (0, "b", 2.5),
            (1, "a", 0.5),
            (1, "a", 4.0),
            (2, "c", 3.0),
        ] {
            db.insert(
                "Events",
                vec![
                    SqlValue::Int(run),
                    SqlValue::Text(kind.into()),
                    SqlValue::Real(t),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn to_spec_then_run_spec_is_bit_identical_to_collect() {
        let ds = Dataset::from_database(&db()).unwrap();
        let scan = ds
            .scan("Events")
            .filter(col("RunID").ge(lit(0i64)).and(col("Kind").ne(lit("c"))))
            .group_by(["Kind"])
            .agg([Agg::count(), Agg::mean("Time"), Agg::quantile("RunID", 0.5)])
            .sort_by("Kind");
        let spec = scan.clone().to_spec().unwrap();
        let direct = scan.collect().unwrap();
        let via_spec = ds.run_spec(&spec).unwrap();
        assert_eq!(direct.digest(), via_spec.digest());
        assert_eq!(direct, via_spec);
    }

    #[test]
    fn row_mode_select_and_sort_round_trip() {
        let ds = Dataset::from_database(&db()).unwrap();
        let scan = ds
            .scan("Events")
            .filter(lit(1i64).le(col("RunID")))
            .select(["Kind", "Time"])
            .sort_by("Time");
        let spec = scan.clone().to_spec().unwrap();
        assert_eq!(spec.select, vec!["Kind".to_string(), "Time".to_string()]);
        assert_eq!(
            scan.collect().unwrap().digest(),
            ds.run_spec(&spec).unwrap().digest()
        );
    }

    #[test]
    fn unsupported_shapes_error_at_lowering_time() {
        let ds = Dataset::from_database(&db()).unwrap();
        assert!(matches!(
            ds.scan("Events").filter(col("RunID")).to_spec(),
            Err(QueryError::Unsupported(_))
        ));
        assert!(matches!(
            ds.scan("Events")
                .filter(col("RunID").eq(col("Time")))
                .to_spec(),
            Err(QueryError::Unsupported(_))
        ));
        let empty: [&str; 0] = [];
        assert!(matches!(
            ds.scan("Events").select(empty).to_spec(),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn bad_wire_aggregates_are_typed_errors() {
        let missing_col = WireAggSpec {
            op: AggOp::Mean,
            column: None,
            name: None,
            q: None,
        };
        assert!(matches!(
            spec_to_agg(&missing_col),
            Err(QueryError::Unsupported(_))
        ));
        let bad_rank = WireAggSpec {
            op: AggOp::Quantile,
            column: Some("Time".into()),
            name: None,
            q: Some(1.5),
        };
        assert!(matches!(
            spec_to_agg(&bad_rank),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn values_and_frames_convert_losslessly() {
        let vals = [
            Value::Null,
            Value::I64(i64::MIN),
            Value::F64(-0.0),
            Value::Str("x".into()),
            Value::Bytes(vec![1, 2]),
        ];
        for v in &vals {
            assert_eq!(&cell_to_value(&value_to_cell(v)), v);
        }
        let f = Frame {
            columns: vec!["a".into()],
            rows: vec![vec![Value::F64(f64::from_bits(0x7ff8_0000_0000_0001))]],
        };
        // NaN payloads survive by bit pattern.
        let back = wire_to_frame(&frame_to_wire(&f));
        assert_eq!(f.digest(), back.digest());
    }

    #[test]
    fn null_literal_predicates_round_trip() {
        let ds = Dataset::from_database(&db()).unwrap();
        let scan = ds.scan("Events").filter(col("Kind").eq(null()).not());
        let spec = scan.clone().to_spec().unwrap();
        assert_eq!(
            scan.collect().unwrap().digest(),
            ds.run_spec(&spec).unwrap().digest()
        );
    }
}
