//! Aggregate functions and their mergeable partial states.
//!
//! Each worker folds its partition into an `AggPartial` per group; the
//! coordinator merges partials **in partition order**, so the result is
//! bit-identical however many workers ran. Integer-column sums accumulate
//! in `i128` and convert to `f64` only at finalisation — exact (and equal
//! to the row engine's sequential `f64` summation) for every total below
//! 2⁵³, far beyond any Table-I scale.

use crate::column::{CellRef, Slab, Value};
use excovery_obs::metrics::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};

/// One aggregate of a scan: an output column name plus the function.
#[derive(Debug, Clone, PartialEq)]
pub struct Agg {
    /// Output column name.
    pub name: String,
    /// The aggregate function.
    pub spec: AggSpec,
}

/// The aggregate functions the analysis layer needs.
#[derive(Debug, Clone, PartialEq)]
pub enum AggSpec {
    /// Number of rows in the group.
    Count,
    /// Sum of a numeric column (NULLs skipped), surfaced as `F64` like
    /// the row engine's `Aggregate::Sum`.
    Sum(String),
    /// Arithmetic mean of a numeric column (NULLs skipped); `Null` when
    /// no numeric cell matched, like the row engine's `Aggregate::Avg`.
    Mean(String),
    /// Minimum of a numeric column.
    Min(String),
    /// Maximum of a numeric column.
    Max(String),
    /// Approximate quantile (0 ≤ q ≤ 1) of a non-negative integer
    /// column via the log₂ histogram the observability layer uses;
    /// negative values saturate to 0.
    Quantile(String, f64),
}

impl Agg {
    /// `COUNT(*)`, named `count`.
    pub fn count() -> Agg {
        Agg {
            name: "count".into(),
            spec: AggSpec::Count,
        }
    }

    /// `SUM(column)`, named `sum(column)`.
    pub fn sum(column: impl Into<String>) -> Agg {
        let column = column.into();
        Agg {
            name: format!("sum({column})"),
            spec: AggSpec::Sum(column),
        }
    }

    /// `AVG(column)`, named `mean(column)`.
    pub fn mean(column: impl Into<String>) -> Agg {
        let column = column.into();
        Agg {
            name: format!("mean({column})"),
            spec: AggSpec::Mean(column),
        }
    }

    /// `MIN(column)`, named `min(column)`.
    pub fn min(column: impl Into<String>) -> Agg {
        let column = column.into();
        Agg {
            name: format!("min({column})"),
            spec: AggSpec::Min(column),
        }
    }

    /// `MAX(column)`, named `max(column)`.
    pub fn max(column: impl Into<String>) -> Agg {
        let column = column.into();
        Agg {
            name: format!("max({column})"),
            spec: AggSpec::Max(column),
        }
    }

    /// Histogram quantile of `column` at `q`, named `p<q*100>(column)`.
    pub fn quantile(column: impl Into<String>, q: f64) -> Agg {
        let column = column.into();
        Agg {
            name: format!("p{:.0}({column})", q * 100.0),
            spec: AggSpec::Quantile(column, q),
        }
    }

    /// Renames the output column.
    pub fn named(mut self, name: impl Into<String>) -> Agg {
        self.name = name.into();
        self
    }

    /// The input column, if the function reads one.
    pub fn input_column(&self) -> Option<&str> {
        match &self.spec {
            AggSpec::Count => None,
            AggSpec::Sum(c)
            | AggSpec::Mean(c)
            | AggSpec::Min(c)
            | AggSpec::Max(c)
            | AggSpec::Quantile(c, _) => Some(c),
        }
    }
}

/// Mergeable per-group partial state of one aggregate.
#[derive(Debug, Clone)]
pub(crate) enum AggPartial {
    Count(u64),
    /// Integer-column sum: exact i128 accumulation.
    SumI {
        sum: i128,
        count: u64,
    },
    /// Float-column sum: per-partition in-order accumulation, merged in
    /// partition order (deterministic, but order-sensitive like any f64
    /// sum).
    SumF {
        sum: f64,
        count: u64,
    },
    MinI(Option<i64>),
    MaxI(Option<i64>),
    MinF(Option<f64>),
    MaxF(Option<f64>),
    Hist {
        buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
        count: u64,
        q: f64,
    },
}

impl AggPartial {
    /// Fresh state for `spec`; `float_input` selects float accumulation
    /// for `Real` input columns (integer columns use exact `i128`).
    pub(crate) fn new(spec: &AggSpec, float_input: bool) -> AggPartial {
        let is_float = float_input;
        match spec {
            AggSpec::Count => AggPartial::Count(0),
            AggSpec::Sum(_) | AggSpec::Mean(_) => {
                if is_float {
                    AggPartial::SumF { sum: 0.0, count: 0 }
                } else {
                    AggPartial::SumI { sum: 0, count: 0 }
                }
            }
            AggSpec::Min(_) => {
                if is_float {
                    AggPartial::MinF(None)
                } else {
                    AggPartial::MinI(None)
                }
            }
            AggSpec::Max(_) => {
                if is_float {
                    AggPartial::MaxF(None)
                } else {
                    AggPartial::MaxI(None)
                }
            }
            AggSpec::Quantile(_, q) => AggPartial::Hist {
                buckets: Box::new([0; HISTOGRAM_BUCKETS]),
                count: 0,
                q: *q,
            },
        }
    }

    /// Folds one cell in.
    pub(crate) fn update(&mut self, cell: CellRef<'_>) {
        match self {
            AggPartial::Count(n) => *n += 1,
            AggPartial::SumI { sum, count } => {
                if let CellRef::I64(v) = cell {
                    *sum += v as i128;
                    *count += 1;
                }
            }
            AggPartial::SumF { sum, count } => match cell {
                CellRef::F64(v) => {
                    *sum += v;
                    *count += 1;
                }
                CellRef::I64(v) => {
                    *sum += v as f64;
                    *count += 1;
                }
                _ => {}
            },
            AggPartial::MinI(m) => {
                if let CellRef::I64(v) = cell {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            AggPartial::MaxI(m) => {
                if let CellRef::I64(v) = cell {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            AggPartial::MinF(m) => {
                if let Some(v) = cell_f64(cell) {
                    *m = Some(m.map_or(v, |cur| cur.min(v)));
                }
            }
            AggPartial::MaxF(m) => {
                if let Some(v) = cell_f64(cell) {
                    *m = Some(m.map_or(v, |cur| cur.max(v)));
                }
            }
            AggPartial::Hist { buckets, count, .. } => {
                let v = match cell {
                    CellRef::I64(v) => v.max(0) as u64,
                    CellRef::F64(v) => {
                        if v.is_finite() && v > 0.0 {
                            v as u64
                        } else {
                            0
                        }
                    }
                    _ => return,
                };
                buckets[bucket_index(v)] += 1;
                *count += 1;
            }
        }
    }

    /// Folds a whole column slab in, row order preserved — used by the
    /// constant-group-key fast path, where every row of a partition
    /// lands in the same group. Equivalent to calling
    /// [`update`](AggPartial::update) on `slab.get(0..len)` in order
    /// (float accumulation visits cells in the identical sequence, so
    /// the result is bit-identical), just without the per-row dispatch.
    pub(crate) fn update_slab(&mut self, slab: &Slab) {
        match (&mut *self, slab) {
            (AggPartial::Count(n), _) => *n += slab.len() as u64,
            (AggPartial::SumI { sum, count }, Slab::I64 { vals, nulls, .. })
                if nulls.count_ones() == 0 =>
            {
                let mut s: i128 = 0;
                for &v in vals {
                    s += v as i128;
                }
                *sum += s;
                *count += vals.len() as u64;
            }
            (AggPartial::SumF { sum, count }, Slab::F64 { vals, nulls })
                if nulls.count_ones() == 0 =>
            {
                for &v in vals {
                    *sum += v;
                }
                *count += vals.len() as u64;
            }
            _ => {
                for i in 0..slab.len() {
                    self.update(slab.get(i));
                }
            }
        }
    }

    /// Folds `rows` input-less updates in (a `count` aggregate sees one
    /// per row; every other aggregate ignores the `Null` cell it would
    /// have been fed).
    pub(crate) fn update_rows(&mut self, rows: usize) {
        if let AggPartial::Count(n) = self {
            *n += rows as u64;
        }
    }

    /// Merges another partition's partial into this one. Called in
    /// partition order by the coordinator.
    pub(crate) fn merge(&mut self, other: &AggPartial) {
        match (self, other) {
            (AggPartial::Count(a), AggPartial::Count(b)) => *a += b,
            (AggPartial::SumI { sum, count }, AggPartial::SumI { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggPartial::SumF { sum, count }, AggPartial::SumF { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggPartial::MinI(a), AggPartial::MinI(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.min(*v)));
                }
            }
            (AggPartial::MaxI(a), AggPartial::MaxI(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.max(*v)));
                }
            }
            (AggPartial::MinF(a), AggPartial::MinF(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.min(*v)));
                }
            }
            (AggPartial::MaxF(a), AggPartial::MaxF(b)) => {
                if let Some(v) = b {
                    *a = Some(a.map_or(*v, |cur| cur.max(*v)));
                }
            }
            (
                AggPartial::Hist { buckets, count, .. },
                AggPartial::Hist {
                    buckets: b2,
                    count: c2,
                    ..
                },
            ) => {
                for (a, b) in buckets.iter_mut().zip(b2.iter()) {
                    *a += b;
                }
                *count += c2;
            }
            (a, b) => unreachable!("mismatched aggregate partials: {a:?} vs {b:?}"),
        }
    }

    /// Produces the output cell.
    pub(crate) fn finalize(&self, spec: &AggSpec) -> Value {
        match self {
            AggPartial::Count(n) => Value::I64(*n as i64),
            AggPartial::SumI { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else if matches!(spec, AggSpec::Mean(_)) {
                    Value::F64(*sum as f64 / *count as f64)
                } else {
                    Value::F64(*sum as f64)
                }
            }
            AggPartial::SumF { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else if matches!(spec, AggSpec::Mean(_)) {
                    Value::F64(*sum / *count as f64)
                } else {
                    Value::F64(*sum)
                }
            }
            AggPartial::MinI(m) | AggPartial::MaxI(m) => m.map_or(Value::Null, Value::I64),
            AggPartial::MinF(m) | AggPartial::MaxF(m) => m.map_or(Value::Null, Value::F64),
            AggPartial::Hist { buckets, count, q } => {
                if *count == 0 {
                    return Value::Null;
                }
                // Rank of the requested quantile, 1-based, clamped.
                let rank = ((*q * *count as f64).ceil() as u64).clamp(1, *count);
                let mut seen = 0u64;
                for (i, n) in buckets.iter().enumerate() {
                    seen += n;
                    if seen >= rank {
                        return match bucket_upper_bound(i) {
                            Some(ub) => Value::F64(ub as f64),
                            None => Value::F64(f64::INFINITY),
                        };
                    }
                }
                Value::Null // unreachable: count > 0 implies a bucket hit
            }
        }
    }
}

fn cell_f64(cell: CellRef<'_>) -> Option<f64> {
    match cell {
        CellRef::I64(v) => Some(v as f64),
        CellRef::F64(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(spec: &AggSpec, cells: &[CellRef<'_>]) -> Value {
        let mut p = AggPartial::new(spec, false);
        for &c in cells {
            p.update(c);
        }
        p.finalize(spec)
    }

    #[test]
    fn integer_mean_matches_row_engine_avg() {
        // Row engine: sum of as_real in order / count → (36+25)/2.
        let v = fold(
            &AggSpec::Mean("age".into()),
            &[CellRef::I64(36), CellRef::Null, CellRef::I64(25)],
        );
        assert_eq!(v, Value::F64(30.5));
    }

    #[test]
    fn empty_aggregates_are_null_and_count_is_zero() {
        assert_eq!(
            fold(&AggSpec::Mean("x".into()), &[CellRef::Null]),
            Value::Null
        );
        assert_eq!(fold(&AggSpec::Sum("x".into()), &[]), Value::Null);
        assert_eq!(fold(&AggSpec::Min("x".into()), &[]), Value::Null);
        assert_eq!(fold(&AggSpec::Count, &[]), Value::I64(0));
        assert_eq!(
            fold(&AggSpec::Count, &[CellRef::Null, CellRef::I64(1)]),
            Value::I64(2),
            "count counts rows, not non-nulls"
        );
    }

    #[test]
    fn min_max_over_integers() {
        let cells = [
            CellRef::I64(5),
            CellRef::I64(-2),
            CellRef::Null,
            CellRef::I64(9),
        ];
        assert_eq!(fold(&AggSpec::Min("x".into()), &cells), Value::I64(-2));
        assert_eq!(fold(&AggSpec::Max("x".into()), &cells), Value::I64(9));
    }

    #[test]
    fn merge_in_partition_order_is_exact_for_integers() {
        let spec = AggSpec::Sum("x".into());
        let mut a = AggPartial::new(&spec, false);
        let mut b = AggPartial::new(&spec, false);
        for v in [1i64 << 40, 3, 5] {
            a.update(CellRef::I64(v));
        }
        for v in [7i64, 1 << 41] {
            b.update(CellRef::I64(v));
        }
        let mut serial = AggPartial::new(&spec, false);
        for v in [1i64 << 40, 3, 5, 7, 1 << 41] {
            serial.update(CellRef::I64(v));
        }
        a.merge(&b);
        assert_eq!(a.finalize(&spec), serial.finalize(&spec));
    }

    #[test]
    fn quantile_uses_log2_buckets_and_saturates_negatives() {
        let spec = AggSpec::Quantile("x".into(), 0.5);
        // Values 1..=8: median rank 4 → value 4 → bucket [4,8) → ub 8.
        let cells: Vec<CellRef<'_>> = (1..=8i64).map(CellRef::I64).collect();
        assert_eq!(fold(&spec, &cells), Value::F64(8.0));
        assert_eq!(
            fold(&spec, &[CellRef::I64(-5), CellRef::I64(-1)]),
            Value::F64(2.0),
            "negatives land in bucket 0 (upper bound 2)"
        );
        assert_eq!(fold(&spec, &[]), Value::Null);
        // p100 of a huge value lands in the unbounded bucket.
        assert_eq!(
            fold(
                &AggSpec::Quantile("x".into(), 1.0),
                &[CellRef::I64(i64::MAX)]
            ),
            Value::F64(f64::INFINITY)
        );
    }

    #[test]
    fn agg_names_and_rename() {
        assert_eq!(Agg::count().name, "count");
        assert_eq!(Agg::mean("T").name, "mean(T)");
        assert_eq!(Agg::quantile("T", 0.95).name, "p95(T)");
        assert_eq!(Agg::sum("T").named("total").name, "total");
        assert_eq!(Agg::mean("T").input_column(), Some("T"));
        assert_eq!(Agg::count().input_column(), None);
    }
}
