//! Typed column slabs: the physical layout of ingested Table-I data.
//!
//! Each relational column becomes one contiguous slab — `i64` values,
//! `f64` values, interned string ids or a packed byte arena — plus a null
//! bitmap. Integer slabs additionally carry min/max statistics so the
//! executor can prune whole partitions before scanning them.

use std::collections::HashMap;
use std::fmt;

/// A fixed-length bitmap; bit `i` set means row `i` is NULL.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    pub fn push(&mut self, set: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if set {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Appends `n` copies of one bit, word-at-a-time — the RLE decode
    /// path appends whole runs, where per-bit `push` dominates.
    pub fn push_n(&mut self, set: bool, n: usize) {
        if !set {
            self.len += n;
            self.words.resize(self.len.div_ceil(64), 0);
            return;
        }
        let mut remaining = n;
        while remaining > 0 {
            let bit = self.len % 64;
            if self.len / 64 == self.words.len() {
                self.words.push(0);
            }
            let take = (64 - bit).min(remaining);
            let mask = if take == 64 {
                u64::MAX
            } else {
                ((1u64 << take) - 1) << bit
            };
            self.words[self.len / 64] |= mask;
            self.len += take;
            remaining -= take;
        }
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Rebuilds a bitmap from its packed words (slab-file decode path).
    /// Bits past `len` in the last word must be zero, as `push` leaves
    /// them — `PartialEq` compares words directly.
    pub(crate) fn from_raw(words: Vec<u64>, len: usize) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Self { words, len }
    }

    /// The packed 64-bit words (slab-file encode path).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Interns the distinct strings of a dataset; scans compare cheap `u32`
/// ids and only resolve back to text at result-materialisation time.
///
/// Built serially during ingest and then shared read-only across scan
/// workers, so no locking is needed on the hot path.
#[derive(Debug, Clone, Default)]
pub struct StringPool {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl StringPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `s`, interning it on first sight.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("string pool overflow");
        self.map.insert(s.to_string(), id);
        self.strings.push(s.to_string());
        id
    }

    /// The id of `s` if it was ever interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// The string behind an id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One materialised cell value, as surfaced in a result [`Frame`]
/// (strings resolved, blobs copied out).
///
/// [`Frame`]: crate::Frame
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer cell.
    I64(i64),
    /// Float cell (also the type of `mean`/`sum` aggregates).
    F64(f64),
    /// Text cell.
    Str(String),
    /// Blob cell.
    Bytes(Vec<u8>),
}

impl Value {
    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view (integers widen, like `SqlValue::as_real`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Blob view.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

/// A borrowed view of one cell during a scan — no allocation, strings
/// stay as pool ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellRef<'a> {
    /// NULL cell.
    Null,
    /// Integer cell.
    I64(i64),
    /// Float cell.
    F64(f64),
    /// Interned-string cell.
    Str(u32),
    /// Blob cell.
    Bytes(&'a [u8]),
}

/// Min/max statistics of an integer slab (non-null values only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntStats {
    /// Smallest non-null value.
    pub min: i64,
    /// Largest non-null value.
    pub max: i64,
}

/// One typed column slab.
#[derive(Debug, Clone)]
pub enum Slab {
    /// Integer column: values plus per-slab min/max for pruning.
    I64 {
        /// Cell values (0 where null).
        vals: Vec<i64>,
        /// Null bitmap.
        nulls: Bitmap,
        /// Min/max over non-null cells; `None` if all cells are null.
        stats: Option<IntStats>,
    },
    /// Float column (integers stored into a `Real` column widen).
    F64 {
        /// Cell values (0.0 where null).
        vals: Vec<f64>,
        /// Null bitmap.
        nulls: Bitmap,
    },
    /// Text column of interned string ids.
    Str {
        /// Pool ids (0 where null).
        ids: Vec<u32>,
        /// Null bitmap.
        nulls: Bitmap,
    },
    /// Blob column packed into one byte arena.
    Bytes {
        /// `offsets[i]..offsets[i+1]` delimits row `i` in `data`.
        offsets: Vec<usize>,
        /// Packed payloads.
        data: Vec<u8>,
        /// Null bitmap.
        nulls: Bitmap,
    },
}

impl Slab {
    /// An empty slab for a column kind.
    pub fn empty_i64() -> Self {
        Slab::I64 {
            vals: Vec::new(),
            nulls: Bitmap::new(),
            stats: None,
        }
    }

    /// An empty float slab.
    pub fn empty_f64() -> Self {
        Slab::F64 {
            vals: Vec::new(),
            nulls: Bitmap::new(),
        }
    }

    /// An empty string slab.
    pub fn empty_str() -> Self {
        Slab::Str {
            ids: Vec::new(),
            nulls: Bitmap::new(),
        }
    }

    /// An empty blob slab.
    pub fn empty_bytes() -> Self {
        Slab::Bytes {
            offsets: vec![0],
            data: Vec::new(),
            nulls: Bitmap::new(),
        }
    }

    /// Number of rows in the slab.
    pub fn len(&self) -> usize {
        match self {
            Slab::I64 { vals, .. } => vals.len(),
            Slab::F64 { vals, .. } => vals.len(),
            Slab::Str { ids, .. } => ids.len(),
            Slab::Bytes { offsets, .. } => offsets.len() - 1,
        }
    }

    /// True if the slab has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Slab::I64 { nulls, .. }
            | Slab::F64 { nulls, .. }
            | Slab::Str { nulls, .. }
            | Slab::Bytes { nulls, .. } => nulls.count_ones(),
        }
    }

    /// Integer min/max statistics, if this is an integer slab with at
    /// least one non-null cell.
    pub fn int_stats(&self) -> Option<IntStats> {
        match self {
            Slab::I64 { stats, .. } => *stats,
            _ => None,
        }
    }

    /// Appends an integer cell.
    pub fn push_i64(&mut self, v: i64) {
        let Slab::I64 { vals, nulls, stats } = self else {
            panic!("push_i64 into non-integer slab");
        };
        vals.push(v);
        nulls.push(false);
        *stats = Some(match *stats {
            None => IntStats { min: v, max: v },
            Some(s) => IntStats {
                min: s.min.min(v),
                max: s.max.max(v),
            },
        });
    }

    /// Appends a float cell.
    pub fn push_f64(&mut self, v: f64) {
        let Slab::F64 { vals, nulls } = self else {
            panic!("push_f64 into non-float slab");
        };
        vals.push(v);
        nulls.push(false);
    }

    /// Appends an interned-string cell.
    pub fn push_str(&mut self, id: u32) {
        let Slab::Str { ids, nulls } = self else {
            panic!("push_str into non-text slab");
        };
        ids.push(id);
        nulls.push(false);
    }

    /// Appends a blob cell.
    pub fn push_bytes(&mut self, b: &[u8]) {
        let Slab::Bytes {
            offsets,
            data,
            nulls,
        } = self
        else {
            panic!("push_bytes into non-blob slab");
        };
        data.extend_from_slice(b);
        offsets.push(data.len());
        nulls.push(false);
    }

    /// Appends a NULL cell.
    pub fn push_null(&mut self) {
        match self {
            Slab::I64 { vals, nulls, .. } => {
                vals.push(0);
                nulls.push(true);
            }
            Slab::F64 { vals, nulls } => {
                vals.push(0.0);
                nulls.push(true);
            }
            Slab::Str { ids, nulls } => {
                ids.push(0);
                nulls.push(true);
            }
            Slab::Bytes {
                offsets,
                data,
                nulls,
            } => {
                offsets.push(data.len());
                nulls.push(true);
            }
        }
    }

    /// The cell at row `i`, borrowed.
    pub fn get(&self, i: usize) -> CellRef<'_> {
        match self {
            Slab::I64 { vals, nulls, .. } => {
                if nulls.get(i) {
                    CellRef::Null
                } else {
                    CellRef::I64(vals[i])
                }
            }
            Slab::F64 { vals, nulls } => {
                if nulls.get(i) {
                    CellRef::Null
                } else {
                    CellRef::F64(vals[i])
                }
            }
            Slab::Str { ids, nulls } => {
                if nulls.get(i) {
                    CellRef::Null
                } else {
                    CellRef::Str(ids[i])
                }
            }
            Slab::Bytes {
                offsets,
                data,
                nulls,
            } => {
                if nulls.get(i) {
                    CellRef::Null
                } else {
                    CellRef::Bytes(&data[offsets[i]..offsets[i + 1]])
                }
            }
        }
    }

    /// Materialises the cell at row `i` (resolving strings via `pool`).
    pub fn value(&self, i: usize, pool: &StringPool) -> Value {
        match self.get(i) {
            CellRef::Null => Value::Null,
            CellRef::I64(v) => Value::I64(v),
            CellRef::F64(v) => Value::F64(v),
            CellRef::Str(id) => Value::Str(pool.resolve(id).to_string()),
            CellRef::Bytes(b) => Value::Bytes(b.to_vec()),
        }
    }
}

/// One table's slice of a partition: parallel slabs, one per column.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    /// Column names, in schema order.
    pub names: Vec<String>,
    /// One slab per column.
    pub slabs: Vec<Slab>,
    /// Number of rows.
    pub rows: usize,
}

impl ColumnTable {
    /// An empty table with the given column names and fresh slabs.
    pub fn new(names: Vec<String>, slabs: Vec<Slab>) -> Self {
        Self {
            names,
            slabs,
            rows: 0,
        }
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_roundtrip_across_word_boundary() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn string_pool_interns_once() {
        let mut p = StringPool::new();
        let a = p.intern("sd_start_search");
        let b = p.intern("sd_service_add");
        assert_ne!(a, b);
        assert_eq!(p.intern("sd_start_search"), a);
        assert_eq!(p.len(), 2);
        assert_eq!(p.resolve(b), "sd_service_add");
        assert_eq!(p.lookup("missing"), None);
    }

    #[test]
    fn i64_slab_tracks_stats_and_nulls() {
        let mut s = Slab::empty_i64();
        s.push_i64(5);
        s.push_null();
        s.push_i64(-3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.null_count(), 1);
        assert_eq!(s.int_stats(), Some(IntStats { min: -3, max: 5 }));
        assert_eq!(s.get(0), CellRef::I64(5));
        assert_eq!(s.get(1), CellRef::Null);
        assert_eq!(s.get(2), CellRef::I64(-3));
    }

    #[test]
    fn bytes_slab_packs_payloads() {
        let mut s = Slab::empty_bytes();
        s.push_bytes(b"abc");
        s.push_null();
        s.push_bytes(b"");
        s.push_bytes(b"zz");
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(0), CellRef::Bytes(b"abc"));
        assert_eq!(s.get(1), CellRef::Null);
        assert_eq!(s.get(2), CellRef::Bytes(b""));
        assert_eq!(s.get(3), CellRef::Bytes(b"zz"));
    }

    #[test]
    fn all_null_int_slab_has_no_stats() {
        let mut s = Slab::empty_i64();
        s.push_null();
        s.push_null();
        assert_eq!(s.int_stats(), None);
        assert_eq!(s.null_count(), 2);
    }

    #[test]
    fn value_views_match_sqlvalue_semantics() {
        assert_eq!(Value::I64(3).as_f64(), Some(3.0), "ints widen");
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_i64(), None);
        assert_eq!(Value::from("t"), Value::Str("t".into()));
        assert_eq!(Value::from(7u64), Value::I64(7));
    }
}
