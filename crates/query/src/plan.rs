//! The logical plan builder ([`Scan`]) and result container ([`Frame`]).

use crate::agg::Agg;
use crate::column::Value;
use crate::dataset::Dataset;
use crate::error::QueryError;
use crate::exec;
use crate::expr::Expr;

/// A scan of one dataset table: the single query entry point.
///
/// Chain [`filter`](Scan::filter), [`group_by`](Scan::group_by),
/// [`agg`](Scan::agg), [`select`](Scan::select) and
/// [`sort_by`](Scan::sort_by), then call [`collect`](Scan::collect).
///
/// Results are deterministic and bit-identical regardless of the worker
/// count: partitions are scanned in parallel but merged in partition
/// order, the same discipline the campaign layer uses for replications.
#[derive(Debug, Clone)]
#[must_use = "a Scan does nothing until collect() is called"]
pub struct Scan<'a> {
    pub(crate) ds: &'a Dataset,
    pub(crate) table: String,
    pub(crate) filter: Option<Expr>,
    pub(crate) group_by: Vec<String>,
    pub(crate) aggs: Vec<Agg>,
    pub(crate) project: Option<Vec<String>>,
    pub(crate) sort: Option<String>,
    pub(crate) workers: Option<usize>,
}

impl<'a> Scan<'a> {
    pub(crate) fn new(ds: &'a Dataset, table: String) -> Self {
        Self {
            ds,
            table,
            filter: None,
            group_by: Vec::new(),
            aggs: Vec::new(),
            project: None,
            sort: None,
            workers: None,
        }
    }

    /// Adds a row filter; repeated calls AND together.
    pub fn filter(mut self, expr: Expr) -> Self {
        self.filter = Some(match self.filter.take() {
            None => expr,
            Some(prev) => prev.and(expr),
        });
        self
    }

    /// Groups by the given columns (aggregate mode). With no `group_by`
    /// but aggregates present, the whole table forms one group.
    pub fn group_by<S: Into<String>>(mut self, columns: impl IntoIterator<Item = S>) -> Self {
        self.group_by = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the aggregates to compute (aggregate mode).
    pub fn agg(mut self, aggs: impl IntoIterator<Item = Agg>) -> Self {
        self.aggs = aggs.into_iter().collect();
        self
    }

    /// Projects the given columns (row mode; default is all columns).
    pub fn select<S: Into<String>>(mut self, columns: impl IntoIterator<Item = S>) -> Self {
        self.project = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// Orders rows by a column **within each partition** (row mode).
    /// The global order is therefore `(partition key, column, insertion)`
    /// — for `RunID`-partitioned data this equals the row engine's
    /// `ORDER BY RunID, column`.
    pub fn sort_by(mut self, column: impl Into<String>) -> Self {
        self.sort = Some(column.into());
        self
    }

    /// Overrides the worker count for this scan (`0` = auto). Defaults
    /// to the `EXCOVERY_WORKERS` environment setting.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Executes the scan.
    pub fn collect(self) -> Result<Frame, QueryError> {
        exec::execute(self)
    }
}

/// A materialised query result: named columns over value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows, one `Value` per column.
    pub rows: Vec<Vec<Value>>,
}

impl Frame {
    /// Index of a named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of one output column.
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| &r[idx]).collect())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// FNV-1a digest of the frame's canonical byte encoding (column
    /// names plus every cell, floats by bit pattern). Equal digests ⇔
    /// bit-identical frames; the determinism suite compares serial and
    /// parallel scans through this.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.columns.len() as u64).to_le_bytes());
        for c in &self.columns {
            eat(&(c.len() as u64).to_le_bytes());
            eat(c.as_bytes());
        }
        eat(&(self.rows.len() as u64).to_le_bytes());
        for row in &self.rows {
            for v in row {
                match v {
                    Value::Null => eat(&[0]),
                    Value::I64(x) => {
                        eat(&[1]);
                        eat(&x.to_le_bytes());
                    }
                    Value::F64(x) => {
                        eat(&[2]);
                        eat(&x.to_bits().to_le_bytes());
                    }
                    Value::Str(s) => {
                        eat(&[3]);
                        eat(&(s.len() as u64).to_le_bytes());
                        eat(s.as_bytes());
                    }
                    Value::Bytes(b) => {
                        eat(&[4]);
                        eat(&(b.len() as u64).to_le_bytes());
                        eat(b);
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            columns: vec!["RunID".into(), "count".into()],
            rows: vec![
                vec![Value::I64(0), Value::I64(3)],
                vec![Value::I64(1), Value::I64(5)],
            ],
        }
    }

    #[test]
    fn column_access() {
        let f = frame();
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.column_index("count"), Some(1));
        assert_eq!(f.column_index("nope"), None);
        let counts = f.column("count").unwrap();
        assert_eq!(counts, vec![&Value::I64(3), &Value::I64(5)]);
    }

    #[test]
    fn digest_distinguishes_values_and_layout() {
        let base = frame();
        assert_eq!(base.digest(), frame().digest(), "stable");
        let mut renamed = frame();
        renamed.columns[1] = "n".into();
        assert_ne!(base.digest(), renamed.digest());
        let mut edited = frame();
        edited.rows[1][1] = Value::I64(6);
        assert_ne!(base.digest(), edited.digest());
        let mut retyped = frame();
        retyped.rows[1][1] = Value::F64(5.0);
        assert_ne!(base.digest(), retyped.digest(), "I64(5) != F64(5.0)");
        // -0.0 and 0.0 differ by bit pattern, and the digest sees bits.
        let a = Frame {
            columns: vec!["x".into()],
            rows: vec![vec![Value::F64(0.0)]],
        };
        let b = Frame {
            columns: vec!["x".into()],
            rows: vec![vec![Value::F64(-0.0)]],
        };
        assert_ne!(a.digest(), b.digest());
    }
}
