//! Spill-to-disk partitions: datasets larger than RAM behind a memory
//! budget.
//!
//! A spilled [`Dataset`] keeps no partition resident by default — every
//! partition lives in one slab file (see `slab_io`) and is decoded
//! lazily when a scan touches it. Loaded partitions are cached under a
//! configurable byte budget (`EXCOVERY_QUERY_MEM`, default 256 MiB) and
//! evicted least-recently-used when the budget is exceeded, so the
//! resident set stays bounded however large the warehouse grows.
//!
//! Three entry points:
//!
//! * [`Dataset::spill_to`] — write an in-memory dataset out and return
//!   its spilled twin (same pool, same scan results bit for bit).
//! * [`SpillBuilder`] — stream packages to disk one at a time, never
//!   materialising more than one package's partitions; this is how the
//!   bench grows a 10M-fact warehouse without holding it in memory.
//! * [`Dataset::open_spill`] — reopen a spill directory cold: footers
//!   only, dictionaries merged into a fresh pool, no data blocks read.
//!
//! Determinism: partitions are ordered by `(experiment index, NULL-first
//! key)` — the in-memory ingest order — so scans over a spilled dataset
//! merge partials in the same sequence and stay bit-identical to their
//! in-memory twin at any worker count and any budget.

use crate::column::StringPool;
use crate::dataset::{ingest_package, Dataset, Partition, TableSchema, DEFAULT_PARTITION_COLUMN};
use crate::error::QueryError;
use crate::slab_io::{read_footer, read_partition, read_partition_projected, write_partition,
    PartitionFooter, SLAB_FILE_EXTENSION};
use excovery_store::{ColumnType, Database};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable naming the resident-memory budget in bytes.
pub const MEMORY_BUDGET_ENV: &str = "EXCOVERY_QUERY_MEM";

/// Default resident-memory budget: 256 MiB.
pub const DEFAULT_MEMORY_BUDGET: u64 = 256 * 1024 * 1024;

/// The budget from `EXCOVERY_QUERY_MEM` (bytes), or the default.
pub fn memory_budget_from_env() -> u64 {
    std::env::var(MEMORY_BUDGET_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_MEMORY_BUDGET)
}

/// One on-disk partition: its file, its footer, the dictionary remap
/// into the dataset pool, and the cached decode (if resident).
#[derive(Debug)]
struct SpillSlot {
    path: PathBuf,
    footer: PartitionFooter,
    remap: Vec<u32>,
    cached: Mutex<Option<Arc<Partition>>>,
    last_used: AtomicU64,
}

/// The on-disk partition store behind a spilled [`Dataset`]: slab files,
/// footer statistics, a bounded cache of decoded partitions.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    budget: u64,
    slots: Vec<SpillSlot>,
    resident: AtomicU64,
    clock: AtomicU64,
}

impl SpillStore {
    fn new(dir: PathBuf, budget: u64, slots: Vec<SpillSlot>) -> Self {
        Self {
            dir,
            budget,
            slots,
            resident: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The resident-memory budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of on-disk partitions.
    pub fn partition_count(&self) -> usize {
        self.slots.len()
    }

    /// Bytes of decoded partitions currently cached (footer estimates).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::SeqCst)
    }

    /// Total rows of `table` across all partitions, from footers alone.
    pub fn table_rows(&self, table: &str) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.footer.table_rows(table))
            .sum::<u64>() as usize
    }

    /// Per-partition footers, in canonical partition order.
    pub fn footers(&self) -> impl Iterator<Item = &PartitionFooter> {
        self.slots.iter().map(|s| &s.footer)
    }

    /// Loads partition `i`, from cache when resident, decoding (and then
    /// evicting colder partitions past the budget) when not. The
    /// returned `Arc` stays valid even if the slot is evicted mid-scan.
    pub(crate) fn load(&self, i: usize) -> Result<Arc<Partition>, QueryError> {
        let slot = &self.slots[i];
        slot.last_used
            .store(self.clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
        let part = {
            // Hold the slot lock across the decode so concurrent scans
            // of one partition do the IO once.
            let mut cached = slot.cached.lock().unwrap();
            match cached.as_ref() {
                Some(p) => return Ok(p.clone()),
                None => {
                    let part = Arc::new(read_partition(&slot.path, &slot.footer, &slot.remap)?);
                    *cached = Some(part.clone());
                    self.resident
                        .fetch_add(slot.footer.decoded_bytes, Ordering::SeqCst);
                    if excovery_obs::enabled() {
                        excovery_obs::global()
                            .counter("query_partitions_loaded_total", &[])
                            .inc();
                    }
                    part
                }
            }
        };
        self.evict_to_budget(i);
        Ok(part)
    }

    /// Loads partition `i` decoding only the named `columns` of `table`
    /// (projection pushdown). An already-resident partition is reused
    /// as-is, and a projection covering the whole file takes the normal
    /// caching [`load`](Self::load) path; a genuinely narrow decode
    /// bypasses the cache entirely — the cache only ever holds complete
    /// partitions, so a narrow scan neither poisons it with partial data
    /// nor evicts a wider working set.
    pub(crate) fn load_projected(
        &self,
        i: usize,
        table: &str,
        columns: &[String],
    ) -> Result<Arc<Partition>, QueryError> {
        let slot = &self.slots[i];
        let full = slot.footer.tables.iter().all(|t| {
            t.name == table && t.columns.iter().all(|c| columns.iter().any(|n| n == &c.name))
        });
        if full {
            return self.load(i);
        }
        if let Some(p) = slot.cached.lock().unwrap().as_ref() {
            slot.last_used
                .store(self.clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            return Ok(Arc::clone(p));
        }
        let part = read_partition_projected(&slot.path, &slot.footer, &slot.remap, table, columns)?;
        if excovery_obs::enabled() {
            excovery_obs::global()
                .counter("query_partitions_projected_loads_total", &[])
                .inc();
        }
        Ok(Arc::new(part))
    }

    /// Drops least-recently-used cached partitions (never slot `keep`)
    /// until the resident estimate fits the budget again. In-flight
    /// scans keep their own `Arc` clones, so eviction is only a cache
    /// drop, never a dangling read.
    fn evict_to_budget(&self, keep: usize) {
        while self.resident.load(Ordering::SeqCst) > self.budget {
            let mut coldest: Option<(u64, usize)> = None;
            for (j, s) in self.slots.iter().enumerate() {
                if j == keep {
                    continue;
                }
                if s.cached.lock().unwrap().is_some() {
                    let lu = s.last_used.load(Ordering::SeqCst);
                    if coldest.is_none_or(|(best, _)| lu < best) {
                        coldest = Some((lu, j));
                    }
                }
            }
            let Some((_, j)) = coldest else { break };
            if self.slots[j].cached.lock().unwrap().take().is_some() {
                self.resident
                    .fetch_sub(self.slots[j].footer.decoded_bytes, Ordering::SeqCst);
                if excovery_obs::enabled() {
                    excovery_obs::global()
                        .counter("query_partitions_evicted_total", &[])
                        .inc();
                }
            }
        }
        if excovery_obs::enabled() {
            excovery_obs::global()
                .gauge("query_resident_bytes", &[])
                .set(self.resident.load(Ordering::SeqCst) as i64);
        }
    }
}

fn slot_path(dir: &Path, ordinal: usize) -> PathBuf {
    dir.join(format!("part-{ordinal:06}.{SLAB_FILE_EXTENSION}"))
}

/// Writes one partition and builds its slot; the dictionary remap is an
/// identity lookup because every dict string came out of `pool`.
fn write_slot(
    dir: &Path,
    ordinal: usize,
    partition_column: &str,
    p: &Partition,
    pool: &StringPool,
) -> Result<SpillSlot, QueryError> {
    let path = slot_path(dir, ordinal);
    let footer = write_partition(&path, partition_column, p, pool)?;
    let remap = footer
        .dict
        .iter()
        .map(|s| pool.lookup(s).expect("dictionary string missing from pool"))
        .collect();
    if excovery_obs::enabled() {
        excovery_obs::global()
            .counter("query_partitions_spilled_total", &[])
            .inc();
    }
    Ok(SpillSlot {
        path,
        footer,
        remap,
        cached: Mutex::new(None),
        last_used: AtomicU64::new(0),
    })
}

impl Dataset {
    /// Writes every partition to `dir` and returns the spilled twin of
    /// this dataset: nothing resident, everything loaded lazily under
    /// `budget` bytes (`None` = `EXCOVERY_QUERY_MEM` or the default).
    /// Scans over the twin are bit-identical to scans over `self`.
    pub fn spill_to(&self, dir: impl AsRef<Path>, budget: Option<u64>) -> Result<Dataset, QueryError> {
        if self.spill.is_some() {
            return Err(QueryError::Unsupported(
                "dataset is already spilled".into(),
            ));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| QueryError::Io(format!("create {}: {e}", dir.display())))?;
        let slots = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| write_slot(dir, i, &self.partition_column, p, &self.pool))
            .collect::<Result<Vec<_>, _>>()?;
        let budget = budget.unwrap_or_else(memory_budget_from_env);
        Ok(Dataset {
            pool: self.pool.clone(),
            partitions: Vec::new(),
            schemas: self.schemas.clone(),
            partition_column: self.partition_column.clone(),
            experiments: self.experiments.clone(),
            spill: Some(Arc::new(SpillStore::new(dir.to_path_buf(), budget, slots))),
        })
    }

    /// Reopens a spill directory cold: reads every footer (no data
    /// blocks), merges the file dictionaries into a fresh pool, rebuilds
    /// schemas and experiment order, and serves scans lazily under
    /// `budget` bytes.
    pub fn open_spill(dir: impl AsRef<Path>, budget: Option<u64>) -> Result<Dataset, QueryError> {
        let dir = dir.as_ref();
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| QueryError::Io(format!("open {}: {e}", dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == SLAB_FILE_EXTENSION))
            .collect();
        files.sort();
        let mut loaded: Vec<(PathBuf, PartitionFooter)> = files
            .into_iter()
            .map(|p| read_footer(&p).map(|f| (p, f)))
            .collect::<Result<_, _>>()?;
        // Canonical partition order — identical to in-memory ingest.
        loaded.sort_by_key(|(_, f)| (f.experiment_index, f.key));

        let mut pool = StringPool::new();
        let mut schemas: BTreeMap<String, TableSchema> = BTreeMap::new();
        let mut experiments: Vec<String> = Vec::new();
        let mut partition_column: Option<String> = None;
        let mut slots = Vec::with_capacity(loaded.len());
        for (path, footer) in loaded {
            match &partition_column {
                None => partition_column = Some(footer.partition_column.clone()),
                Some(pc) if *pc != footer.partition_column => {
                    return Err(QueryError::Corrupt(format!(
                        "{}: partition column {:?} differs from {pc:?}",
                        path.display(),
                        footer.partition_column
                    )));
                }
                _ => {}
            }
            let idx = footer.experiment_index as usize;
            if idx == experiments.len() {
                experiments.push(footer.experiment.clone());
            } else if experiments.get(idx) != Some(&footer.experiment) {
                return Err(QueryError::Corrupt(format!(
                    "{}: experiment index {idx} is not contiguous",
                    path.display()
                )));
            }
            for t in &footer.tables {
                let schema = TableSchema {
                    names: t.columns.iter().map(|c| c.name.clone()).collect(),
                    kinds: t.columns.iter().map(|c| c.kind).collect::<Vec<ColumnType>>(),
                };
                match schemas.get(&t.name) {
                    None => {
                        schemas.insert(t.name.clone(), schema);
                    }
                    Some(existing)
                        if existing.names != schema.names || existing.kinds != schema.kinds =>
                    {
                        return Err(QueryError::Corrupt(format!(
                            "{}: table {:?} schema differs across partitions",
                            path.display(),
                            t.name
                        )));
                    }
                    _ => {}
                }
            }
            let remap = footer.dict.iter().map(|s| pool.intern(s)).collect();
            slots.push(SpillSlot {
                path,
                footer,
                remap,
                cached: Mutex::new(None),
                last_used: AtomicU64::new(0),
            });
        }
        let budget = budget.unwrap_or_else(memory_budget_from_env);
        Ok(Dataset {
            pool,
            partitions: Vec::new(),
            schemas,
            partition_column: partition_column
                .unwrap_or_else(|| DEFAULT_PARTITION_COLUMN.to_string()),
            experiments,
            spill: Some(Arc::new(SpillStore::new(dir.to_path_buf(), budget, slots))),
        })
    }

    /// The spill store, if this dataset is spilled.
    pub fn spill_store(&self) -> Option<&SpillStore> {
        self.spill.as_deref()
    }
}

/// Streams packages into a spill directory one at a time: each package
/// is ingested, written out partition by partition, and dropped before
/// the next arrives — peak memory is one package, not the warehouse.
#[derive(Debug)]
pub struct SpillBuilder {
    dir: PathBuf,
    partition_column: String,
    pool: StringPool,
    schemas: BTreeMap<String, TableSchema>,
    experiments: Vec<String>,
    slots: Vec<SpillSlot>,
}

impl SpillBuilder {
    /// Starts a streaming spill into `dir` (created if missing), with
    /// the default `RunID` partitioning.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, QueryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| QueryError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(Self {
            dir,
            partition_column: DEFAULT_PARTITION_COLUMN.to_string(),
            pool: StringPool::new(),
            schemas: BTreeMap::new(),
            experiments: Vec::new(),
            slots: Vec::new(),
        })
    }

    /// Changes the partition column. Must precede the first package.
    pub fn partition_by(mut self, column: impl Into<String>) -> Self {
        assert!(
            self.experiments.is_empty(),
            "partition_by must precede add_package"
        );
        self.partition_column = column.into();
        self
    }

    /// Ingests one package and writes its partitions straight to disk.
    /// Returns the number of partitions written.
    pub fn add_package(&mut self, experiment: &str, db: &Database) -> Result<usize, QueryError> {
        let exp_index = self.experiments.len();
        self.experiments.push(experiment.to_string());
        let parts = ingest_package(
            &mut self.pool,
            &mut self.schemas,
            &self.partition_column,
            experiment,
            exp_index,
            db,
        )?;
        let written = parts.len();
        for p in parts {
            self.slots.push(write_slot(
                &self.dir,
                self.slots.len(),
                &self.partition_column,
                &p,
                &self.pool,
            )?);
        }
        Ok(written)
    }

    /// Finishes the stream: a spilled dataset over everything written,
    /// budgeted at `budget` bytes (`None` = env or default).
    pub fn finish(self, budget: Option<u64>) -> Dataset {
        let budget = budget.unwrap_or_else(memory_budget_from_env);
        Dataset {
            pool: self.pool,
            partitions: Vec::new(),
            schemas: self.schemas,
            partition_column: self.partition_column.clone(),
            experiments: self.experiments,
            spill: Some(Arc::new(SpillStore::new(self.dir, budget, self.slots))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Agg;
    use crate::expr::{col, lit};
    use excovery_store::records::{EventRow, RunInfoRow};
    use excovery_store::schema::create_level3_database;

    fn package(runs: u64, base: i64) -> Database {
        let mut db = create_level3_database();
        for run in 0..runs {
            RunInfoRow {
                run_id: run,
                node_id: "su".into(),
                start_time_ns: 0,
                time_diff_ns: 0,
            }
            .insert(&mut db)
            .unwrap();
            for k in 0..40i64 {
                EventRow {
                    run_id: run,
                    node_id: if k % 2 == 0 { "su" } else { "sp" }.into(),
                    common_time_ns: base + k,
                    event_type: if k % 5 == 0 { "sd_service_add" } else { "sd_probe" }.into(),
                    parameter: String::new(),
                }
                .insert(&mut db)
                .unwrap();
            }
        }
        db
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spill-{tag}-{}", std::process::id()))
    }

    fn query(ds: &Dataset, workers: usize) -> u64 {
        ds.scan("Events")
            .filter(col("NodeID").eq(lit("su")))
            .group_by(["RunID", "EventType"])
            .agg([Agg::count(), Agg::mean("CommonTime"), Agg::max("CommonTime")])
            .workers(workers)
            .collect()
            .unwrap()
            .digest()
    }

    #[test]
    fn spilled_scans_are_bit_identical_to_resident_scans() {
        let (a, b) = (package(4, 100), package(3, 9000));
        let ds = Dataset::from_packages(&[("a", &a), ("b", &b)]).unwrap();
        let dir = tmp("ident");
        let spilled = ds.spill_to(&dir, Some(DEFAULT_MEMORY_BUDGET)).unwrap();
        assert_eq!(spilled.partition_count(), ds.partition_count());
        assert_eq!(
            spilled.table_rows("Events").unwrap(),
            ds.table_rows("Events").unwrap()
        );
        for workers in [1, 4] {
            assert_eq!(query(&ds, workers), query(&spilled, workers));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_bounds_the_resident_set() {
        let ds = Dataset::from_database(&package(6, 0)).unwrap();
        let dir = tmp("evict");
        // A budget below one partition: every load evicts the previous.
        let spilled = ds.spill_to(&dir, Some(1)).unwrap();
        for workers in [1, 4] {
            assert_eq!(query(&ds, workers), query(&spilled, workers), "budget=1");
        }
        let store = spilled.spill_store().unwrap();
        let largest = store.footers().map(|f| f.decoded_bytes).max().unwrap();
        assert!(
            store.resident_bytes() <= largest,
            "resident {} exceeds one partition ({largest})",
            store.resident_bytes()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_spill_rebuilds_the_dataset_cold() {
        let (a, b) = (package(3, 50), package(2, 7000));
        let ds = Dataset::from_packages(&[("x", &a), ("y", &b)]).unwrap();
        let dir = tmp("open");
        ds.spill_to(&dir, None).unwrap();
        let cold = Dataset::open_spill(&dir, Some(DEFAULT_MEMORY_BUDGET)).unwrap();
        assert_eq!(cold.experiments(), ds.experiments());
        assert_eq!(cold.partition_column(), "RunID");
        assert_eq!(cold.partition_count(), ds.partition_count());
        assert_eq!(
            cold.table_rows("Events").unwrap(),
            ds.table_rows("Events").unwrap()
        );
        for workers in [1, 4] {
            assert_eq!(query(&ds, workers), query(&cold, workers));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_builder_matches_in_memory_ingest() {
        let (a, b) = (package(3, 10), package(2, 2000));
        let ds = Dataset::from_packages(&[("a", &a), ("b", &b)]).unwrap();
        let dir = tmp("stream");
        let mut builder = SpillBuilder::create(&dir).unwrap();
        assert_eq!(builder.add_package("a", &a).unwrap(), 3);
        assert_eq!(builder.add_package("b", &b).unwrap(), 2);
        let streamed = builder.finish(Some(DEFAULT_MEMORY_BUDGET));
        for workers in [1, 4] {
            assert_eq!(query(&ds, workers), query(&streamed, workers));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_datasets_prune_from_footers() {
        let ds = Dataset::from_database(&package(5, 0)).unwrap();
        let dir = tmp("prune");
        let spilled = ds.spill_to(&dir, None).unwrap();
        let f = spilled
            .scan("Events")
            .filter(col("RunID").eq(lit(2i64)))
            .agg([Agg::count()])
            .collect()
            .unwrap();
        assert_eq!(f.rows[0][0], crate::column::Value::I64(40));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_spill_is_a_typed_error() {
        let ds = Dataset::from_database(&package(1, 0)).unwrap();
        let dir = tmp("double");
        let spilled = ds.spill_to(&dir, None).unwrap();
        assert!(matches!(
            spilled.spill_to(&dir, None),
            Err(QueryError::Unsupported(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
