//! Dataset ingest: level-3 packages → partitioned column slabs.
//!
//! A [`Dataset`] snapshots one or more experiment packages into typed
//! column slabs, partitioned by experiment and run: every distinct value
//! of the partition column (`RunID` by default) in each package becomes
//! one partition, and rows whose partition cell is NULL — plus whole
//! tables that lack the partition column, like `ExperimentInfo` — land in
//! the package's meta partition. Partitions are ordered by
//! `(package, NULL-first run key)`, which makes partition-ordered
//! concatenation equal to the row engine's `ORDER BY RunID` with ties in
//! insertion order — the property the parity suite leans on.

use crate::column::{ColumnTable, IntStats, Slab, StringPool};
use crate::error::QueryError;
use crate::plan::Scan;
use excovery_store::{ColumnType, Database, Repository, SqlValue};
use std::collections::BTreeMap;

/// Default partition column: the run id shared by all measurement tables.
pub const DEFAULT_PARTITION_COLUMN: &str = "RunID";

/// The schema of one ingested table (identical across partitions).
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Column names in order.
    pub names: Vec<String>,
    /// Column type affinities in order.
    pub kinds: Vec<ColumnType>,
}

impl TableSchema {
    pub(crate) fn empty_slabs(&self) -> Vec<Slab> {
        self.kinds
            .iter()
            .map(|k| match k {
                ColumnType::Integer => Slab::empty_i64(),
                ColumnType::Real => Slab::empty_f64(),
                ColumnType::Text => Slab::empty_str(),
                ColumnType::Blob => Slab::empty_bytes(),
            })
            .collect()
    }
}

/// One horizontal slice of the dataset: all rows of one experiment whose
/// partition cell equals `key` (`None` = the meta partition).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Package (experiment) id the rows came from.
    pub experiment: String,
    /// Index of the package in ingest order.
    pub experiment_index: usize,
    /// Partition-column value; `None` for the meta partition.
    pub key: Option<i64>,
    /// Per-table column slabs (only tables with rows in this partition).
    pub tables: BTreeMap<String, ColumnTable>,
}

impl Partition {
    /// Integer min/max stats plus null count for a column of `table`,
    /// if present and integer-typed.
    pub(crate) fn int_column_stats(
        &self,
        table: &str,
        column: &str,
    ) -> Option<(Option<IntStats>, usize)> {
        let t = self.tables.get(table)?;
        let slab = &t.slabs[t.column_index(column)?];
        match slab {
            Slab::I64 { .. } => Some((slab.int_stats(), slab.null_count())),
            _ => None,
        }
    }
}

/// A columnar snapshot of one or more level-3 packages, ready to scan.
///
/// Build one with [`Dataset::builder`] (or the [`Dataset::from_database`]
/// / [`Dataset::from_packages`] / [`Dataset::from_repository`]
/// conveniences), then query it through [`Dataset::scan`]:
///
/// ```no_run
/// # fn demo(db: &excovery_store::Database) -> Result<(), excovery_query::QueryError> {
/// use excovery_query::{col, lit, Agg, Dataset};
/// let ds = Dataset::from_database(db)?;
/// let frame = ds
///     .scan("Events")
///     .filter(col("EventType").eq(lit("sd_service_add")))
///     .group_by(["RunID"])
///     .agg([Agg::count()])
///     .collect()?;
/// # let _ = frame; Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    pub(crate) pool: StringPool,
    pub(crate) partitions: Vec<Partition>,
    pub(crate) schemas: BTreeMap<String, TableSchema>,
    pub(crate) partition_column: String,
    pub(crate) experiments: Vec<String>,
    /// On-disk partition store; when set, `partitions` is empty and every
    /// partition loads lazily through the spill layer (see `spill.rs`).
    pub(crate) spill: Option<std::sync::Arc<crate::spill::SpillStore>>,
}

impl Dataset {
    /// Starts a dataset builder with the default `RunID` partitioning.
    pub fn builder() -> DatasetBuilder {
        DatasetBuilder {
            partition_column: DEFAULT_PARTITION_COLUMN.to_string(),
            dataset: Dataset {
                pool: StringPool::new(),
                partitions: Vec::new(),
                schemas: BTreeMap::new(),
                partition_column: DEFAULT_PARTITION_COLUMN.to_string(),
                experiments: Vec::new(),
                spill: None,
            },
        }
    }

    /// Ingests a single package under the experiment id `"default"`.
    pub fn from_database(db: &Database) -> Result<Self, QueryError> {
        Ok(Self::builder().add_package("default", db)?.build())
    }

    /// Ingests `(experiment id, package)` pairs in order.
    pub fn from_packages(packages: &[(&str, &Database)]) -> Result<Self, QueryError> {
        let mut b = Self::builder();
        for (id, db) in packages {
            b = b.add_package(id, db)?;
        }
        Ok(b.build())
    }

    /// Ingests every package of a level-4 repository, in index order.
    pub fn from_repository(repo: &Repository) -> Result<Self, QueryError> {
        let mut b = Self::builder();
        for entry in repo.index()? {
            let db = repo.load(&entry.id)?;
            b = b.add_package(&entry.id, &db)?;
        }
        Ok(b.build())
    }

    /// Starts a scan of `table`.
    pub fn scan(&self, table: impl Into<String>) -> Scan<'_> {
        Scan::new(self, table.into())
    }

    /// Ingested experiment ids, in ingest order.
    pub fn experiments(&self) -> &[String] {
        &self.experiments
    }

    /// The column used for partitioning.
    pub fn partition_column(&self) -> &str {
        &self.partition_column
    }

    /// Number of partitions (including meta partitions and partitions
    /// that currently live on disk).
    pub fn partition_count(&self) -> usize {
        match &self.spill {
            Some(store) => store.partition_count(),
            None => self.partitions.len(),
        }
    }

    /// The schema of an ingested table.
    pub fn schema(&self, table: &str) -> Result<&TableSchema, QueryError> {
        self.schemas
            .get(table)
            .ok_or_else(|| QueryError::NoSuchTable(table.to_string()))
    }

    /// Total ingested rows of `table` across all partitions. For spilled
    /// datasets this is answered from footer statistics alone — no
    /// partition is loaded.
    pub fn table_rows(&self, table: &str) -> Result<usize, QueryError> {
        self.schema(table)?;
        if let Some(store) = &self.spill {
            return Ok(store.table_rows(table));
        }
        Ok(self
            .partitions
            .iter()
            .filter_map(|p| p.tables.get(table))
            .map(|t| t.rows)
            .sum())
    }
}

/// Builds a [`Dataset`] package by package.
#[derive(Debug)]
pub struct DatasetBuilder {
    partition_column: String,
    dataset: Dataset,
}

impl DatasetBuilder {
    /// Changes the partition column (default `RunID`). Must be called
    /// before the first package is added.
    pub fn partition_by(mut self, column: impl Into<String>) -> Self {
        assert!(
            self.dataset.partitions.is_empty() && self.dataset.experiments.is_empty(),
            "partition_by must precede add_package"
        );
        self.partition_column = column.into();
        self.dataset.partition_column = self.partition_column.clone();
        self
    }

    /// Ingests one `(experiment id, package)` pair.
    pub fn add_package(mut self, experiment: &str, db: &Database) -> Result<Self, QueryError> {
        let exp_index = self.dataset.experiments.len();
        self.dataset.experiments.push(experiment.to_string());
        let parts = ingest_package(
            &mut self.dataset.pool,
            &mut self.dataset.schemas,
            &self.partition_column,
            experiment,
            exp_index,
            db,
        )?;
        self.dataset.partitions.extend(parts);
        Ok(self)
    }

    /// Finishes the build.
    pub fn build(self) -> Dataset {
        self.dataset
    }
}

/// Splits one package into partitions, interning strings into `pool` and
/// checking `schemas` for cross-package consistency. Shared by the
/// in-memory [`DatasetBuilder`], the streaming spill builder and the
/// incremental standing-query layer, so all three produce byte-identical
/// slabs for the same rows.
pub(crate) fn ingest_package(
    pool: &mut StringPool,
    schemas: &mut BTreeMap<String, TableSchema>,
    partition_column: &str,
    experiment: &str,
    exp_index: usize,
    db: &Database,
) -> Result<Vec<Partition>, QueryError> {
    // Partition key → table name → slabs; BTreeMap keeps keys in
    // ascending order with the meta (None) partition first, which is
    // exactly `ORDER BY RunID` order under cmp_sql (NULL first).
    let mut parts: BTreeMap<Option<i64>, BTreeMap<String, ColumnTable>> = BTreeMap::new();
    for name in db.table_names() {
        let table = db.table(name)?;
        let schema = TableSchema {
            names: table.columns.iter().map(|c| c.name.clone()).collect(),
            kinds: table.columns.iter().map(|c| c.ctype).collect(),
        };
        if let Some(existing) = schemas.get(name) {
            if existing.names != schema.names || existing.kinds != schema.kinds {
                return Err(QueryError::Unsupported(format!(
                    "table {name:?} has a different schema in package {experiment:?}"
                )));
            }
        } else {
            schemas.insert(name.to_string(), schema.clone());
        }
        let part_col = schema
            .names
            .iter()
            .position(|n| n == partition_column)
            .filter(|&i| schema.kinds[i] == ColumnType::Integer);
        for row in table.rows() {
            let key = part_col.and_then(|i| row[i].as_int());
            let dest = parts
                .entry(key)
                .or_default()
                .entry(name.to_string())
                .or_insert_with(|| ColumnTable::new(schema.names.clone(), schema.empty_slabs()));
            for (cell, slab) in row.iter().zip(dest.slabs.iter_mut()) {
                match cell {
                    SqlValue::Null => slab.push_null(),
                    SqlValue::Int(v) => match slab {
                        // Integers stored into a Real column widen,
                        // matching `SqlValue::as_real` and keeping
                        // cmp_sql's numeric kind class intact.
                        Slab::F64 { .. } => slab.push_f64(*v as f64),
                        _ => slab.push_i64(*v),
                    },
                    SqlValue::Real(v) => slab.push_f64(*v),
                    SqlValue::Text(s) => {
                        let id = pool.intern(s);
                        slab.push_str(id);
                    }
                    SqlValue::Blob(b) => slab.push_bytes(b),
                }
            }
            dest.rows += 1;
        }
    }
    Ok(parts
        .into_iter()
        .map(|(key, tables)| Partition {
            experiment: experiment.to_string(),
            experiment_index: exp_index,
            key,
            tables,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::records::{EventRow, RunInfoRow};
    use excovery_store::schema::create_level3_database;

    fn package(runs: u64) -> Database {
        let mut db = create_level3_database();
        for run in 0..runs {
            RunInfoRow {
                run_id: run,
                node_id: "su".into(),
                start_time_ns: run as i64 * 100,
                time_diff_ns: 0,
            }
            .insert(&mut db)
            .unwrap();
            for t in 0..3i64 {
                EventRow {
                    run_id: run,
                    node_id: "su".into(),
                    common_time_ns: t * 10,
                    event_type: "sd_probe".into(),
                    parameter: String::new(),
                }
                .insert(&mut db)
                .unwrap();
            }
        }
        db
    }

    #[test]
    fn partitions_split_by_run_with_meta_partition() {
        let db = package(3);
        let ds = Dataset::from_database(&db).unwrap();
        // Empty tables produce no partitions of their own; Events and
        // RunInfos have rows for runs 0..3. No NULL run ids → no meta
        // partition here.
        assert_eq!(ds.partition_count(), 3);
        assert_eq!(ds.partitions[0].key, Some(0));
        assert_eq!(ds.partitions[2].key, Some(2));
        assert_eq!(ds.table_rows("Events").unwrap(), 9);
        assert_eq!(ds.table_rows("RunInfos").unwrap(), 3);
        assert_eq!(ds.experiments(), ["default".to_string()]);
    }

    #[test]
    fn tables_without_partition_column_land_in_meta() {
        let mut db = package(1);
        excovery_store::ExperimentInfo {
            exp_xml: "<x/>".into(),
            ee_version: "v".into(),
            name: "n".into(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        let ds = Dataset::from_database(&db).unwrap();
        assert_eq!(ds.partitions[0].key, None, "meta partition sorts first");
        assert!(ds.partitions[0].tables.contains_key("ExperimentInfo"));
        assert_eq!(ds.table_rows("ExperimentInfo").unwrap(), 1);
    }

    #[test]
    fn packages_keep_ingest_order() {
        let a = package(2);
        let b = package(1);
        let ds = Dataset::from_packages(&[("exp-a", &a), ("exp-b", &b)]).unwrap();
        assert_eq!(ds.experiments(), ["exp-a".to_string(), "exp-b".to_string()]);
        assert_eq!(ds.partition_count(), 3);
        assert_eq!(ds.partitions[0].experiment, "exp-a");
        assert_eq!(ds.partitions[2].experiment, "exp-b");
        assert_eq!(ds.partitions[2].experiment_index, 1);
    }

    #[test]
    fn unknown_table_is_a_typed_error() {
        let ds = Dataset::from_database(&package(1)).unwrap();
        assert!(matches!(ds.schema("Nope"), Err(QueryError::NoSuchTable(_))));
        assert!(matches!(
            ds.table_rows("Nope"),
            Err(QueryError::NoSuchTable(_))
        ));
    }

    #[test]
    fn custom_partition_column() {
        let db = package(2);
        let ds = Dataset::builder()
            .partition_by("CommonTime")
            .add_package("x", &db)
            .unwrap()
            .build();
        // Events split by CommonTime (0, 10, 20); RunInfos lacks the
        // column entirely and lands in the meta partition.
        assert_eq!(ds.partition_column(), "CommonTime");
        assert_eq!(ds.partition_count(), 4);
        assert_eq!(ds.partitions[0].key, None);
        assert!(ds.partitions[0].tables.contains_key("RunInfos"));
    }
}
