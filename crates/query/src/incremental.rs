//! Standing queries: incremental plan execution over a growing campaign.
//!
//! A [`StandingQuery`] holds one serializable plan
//! ([`excovery_rpc::PlanSpec`]) plus per-partition scan state. Each time
//! a run completes, the scheduler (or a local caller) feeds the
//! experiment's current database back in with
//! [`ingest_package`](StandingQuery::ingest_package); only partitions
//! not seen before are scanned — completed run partitions are
//! immutable, so their state is computed once and kept. The meta
//! partition (rows with a NULL partition key: configuration tables,
//! experiment-level constants) *is* re-scanned every refresh, because
//! later slices may append to it.
//!
//! [`frame`](StandingQuery::frame) then merges the per-partition states
//! in canonical partition order — `(experiment index, partition key)`
//! with NULL first, the exact order a one-shot scan over the same data
//! uses — so the standing frame is **bit-identical** to
//! `Dataset::from_database(db)?.run_spec(&spec)` after every refresh,
//! at any ingest granularity and any arrival interleaving of runs
//! within an experiment. That equality is the correctness contract the
//! golden test (`tests/incremental_golden.rs`) pins down to
//! `f64::to_bits` level.

use crate::column::StringPool;
use crate::dataset::{self, Partition, TableSchema};
use crate::error::QueryError;
use crate::exec::{
    finalize_agg_frame, merge_groups, scan_partition_agg, scan_partition_rows, GroupMap, PlanCtx,
};
use crate::plan::Frame;
use crate::spec::{spec_to_agg, spec_to_expr};
use excovery_rpc::PlanSpec;
use excovery_store::Database;
use std::collections::BTreeMap;

/// Cached scan state of one partition under the standing plan.
#[derive(Debug, Clone)]
enum PartState {
    /// Aggregate mode: group key → one partial per aggregate.
    Agg(GroupMap),
    /// Row mode: the partition's filtered (and partition-locally
    /// sorted) projected rows.
    Rows(Vec<Vec<crate::column::Value>>),
}

/// An incrementally maintained query over runs as they land.
///
/// ```no_run
/// # use excovery_query::{Dataset, StandingQuery, Agg};
/// # use excovery_store::Database;
/// # fn demo(spec: excovery_rpc::PlanSpec, slices: Vec<Database>) {
/// let mut sq = StandingQuery::new(spec);
/// for db in &slices {
///     sq.ingest_package("exp-a", db).unwrap(); // scans only new runs
///     let frame = sq.frame().unwrap(); // == one-shot over db, bit for bit
///     println!("{} groups after {} refreshes", frame.len(), sq.refreshes());
/// }
/// # }
/// ```
pub struct StandingQuery {
    spec: PlanSpec,
    partition_column: String,
    pool: StringPool,
    schemas: BTreeMap<String, TableSchema>,
    /// Experiment names in first-ingest order; the index is the
    /// canonical partition sort key, exactly like `Dataset` packages.
    experiments: Vec<String>,
    /// `(experiment index, partition key)` → cached scan state. NULL
    /// keys (the meta partition) sort first, matching one-shot order.
    states: BTreeMap<(usize, Option<i64>), PartState>,
    refreshes: u64,
}

impl StandingQuery {
    /// A standing query for `spec`, partitioned by the default run-key
    /// column ([`crate::DEFAULT_PARTITION_COLUMN`]).
    pub fn new(spec: PlanSpec) -> StandingQuery {
        StandingQuery {
            spec,
            partition_column: crate::dataset::DEFAULT_PARTITION_COLUMN.to_string(),
            pool: StringPool::new(),
            schemas: BTreeMap::new(),
            experiments: Vec::new(),
            states: BTreeMap::new(),
            refreshes: 0,
        }
    }

    /// Overrides the partition column. Must match the `Dataset`
    /// partitioning this query's frames are compared against, and must
    /// be set before the first ingest.
    pub fn with_partition_column(mut self, column: impl Into<String>) -> StandingQuery {
        assert!(
            self.states.is_empty(),
            "with_partition_column must precede ingest_package"
        );
        self.partition_column = column.into();
        self
    }

    /// The plan this query maintains.
    pub fn spec(&self) -> &PlanSpec {
        &self.spec
    }

    /// Number of partitions with cached state.
    pub fn partitions(&self) -> usize {
        self.states.len()
    }

    /// Number of completed [`ingest_package`](Self::ingest_package)
    /// calls.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Folds the current state of one experiment's database in,
    /// scanning only partitions not seen before (plus the meta
    /// partition, which later slices may still append to). The database
    /// is a *cumulative* snapshot — feeding the same runs again is a
    /// no-op, so callers can simply hand over the whole experiment
    /// database after every slice.
    ///
    /// Returns the number of partitions (re)scanned.
    pub fn ingest_package(&mut self, experiment: &str, db: &Database) -> Result<usize, QueryError> {
        let t0 = excovery_obs::enabled().then(std::time::Instant::now);
        let exp_index = match self.experiments.iter().position(|e| e == experiment) {
            Some(i) => i,
            None => {
                self.experiments.push(experiment.to_string());
                self.experiments.len() - 1
            }
        };
        let partitions = dataset::ingest_package(
            &mut self.pool,
            &mut self.schemas,
            &self.partition_column,
            experiment,
            exp_index,
            db,
        )?;
        // The plan context depends only on the scanned table's schema,
        // which the ingest above may have just introduced.
        let ctx = match self.schemas.get(&self.spec.table) {
            Some(schema) => Some(plan_ctx(&self.spec, schema, &self.pool)?),
            None => None,
        };
        let mut scanned = 0usize;
        for p in &partitions {
            let slot = (exp_index, p.key);
            // Completed-run partitions are immutable: state computed
            // once. The meta partition (NULL key) can still grow.
            if p.key.is_some() && self.states.contains_key(&slot) {
                continue;
            }
            let Some(ctx) = &ctx else { continue };
            let Some(state) = scan_state(ctx, p, &self.pool)? else {
                continue;
            };
            self.states.insert(slot, state);
            scanned += 1;
        }
        self.refreshes += 1;
        if let Some(t0) = t0 {
            let reg = excovery_obs::global();
            reg.counter("query_standing_refresh_total", &[]).inc();
            reg.histogram("query_standing_refresh_ns", &[])
                .observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(scanned)
    }

    /// The plan's current result, merged from the cached per-partition
    /// states in canonical partition order — bit-identical to a
    /// one-shot `run_spec` over a dataset holding the same packages.
    pub fn frame(&self) -> Result<Frame, QueryError> {
        let schema = self
            .schemas
            .get(&self.spec.table)
            .ok_or_else(|| QueryError::NoSuchTable(self.spec.table.clone()))?;
        let ctx = plan_ctx(&self.spec, schema, &self.pool)?;
        if ctx.aggregate_mode() {
            let mut master = GroupMap::default();
            for state in self.states.values() {
                if let PartState::Agg(groups) = state {
                    merge_groups(&mut master, groups.clone());
                }
            }
            Ok(finalize_agg_frame(&ctx, master, &self.pool))
        } else {
            let mut rows = Vec::new();
            for state in self.states.values() {
                if let PartState::Rows(r) = state {
                    rows.extend(r.iter().cloned());
                }
            }
            Ok(Frame {
                columns: ctx.project.clone(),
                rows,
            })
        }
    }
}

/// Builds the resolved plan context a spec describes over `schema`.
fn plan_ctx(spec: &PlanSpec, schema: &TableSchema, pool: &StringPool) -> Result<PlanCtx, QueryError> {
    PlanCtx::new(
        schema,
        spec.table.clone(),
        spec.predicate.as_ref().map(spec_to_expr),
        spec.group_by.clone(),
        spec.aggs
            .iter()
            .map(spec_to_agg)
            .collect::<Result<Vec<_>, _>>()?,
        if spec.select.is_empty() {
            None
        } else {
            Some(spec.select.clone())
        },
        spec.sort_by.clone(),
        pool,
    )
}

/// Scans one partition under the plan; `None` when the partition has no
/// slice of the scanned table.
fn scan_state(
    ctx: &PlanCtx,
    p: &Partition,
    pool: &StringPool,
) -> Result<Option<PartState>, QueryError> {
    let Some(t) = p.tables.get(&ctx.table) else {
        return Ok(None);
    };
    Ok(Some(if ctx.aggregate_mode() {
        PartState::Agg(scan_partition_agg(ctx, t, pool)?)
    } else {
        PartState::Rows(scan_partition_rows(ctx, t, pool)?)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use excovery_rpc::{AggOp, AggSpec as WireAggSpec};
    use excovery_store::{Column, ColumnType, SqlValue};

    fn mean_by_run_spec() -> PlanSpec {
        PlanSpec {
            table: "Facts".into(),
            predicate: None,
            group_by: vec!["RunID".into()],
            aggs: vec![
                WireAggSpec {
                    op: AggOp::Count,
                    column: None,
                    name: None,
                    q: None,
                },
                WireAggSpec {
                    op: AggOp::Mean,
                    column: Some("Latency".into()),
                    name: Some("mean_lat".into()),
                    q: None,
                },
            ],
            select: Vec::new(),
            sort_by: None,
        }
    }

    fn db_with_runs(runs: &[i64]) -> Database {
        let mut db = Database::new();
        db.create_table(
            "Facts",
            vec![
                Column::new("RunID", ColumnType::Integer),
                Column::new("Latency", ColumnType::Real),
            ],
        )
        .unwrap();
        for &run in runs {
            for i in 0..4 {
                db.insert(
                    "Facts",
                    vec![
                        SqlValue::Int(run),
                        SqlValue::Real(0.25 * (run as f64) + 0.1 * f64::from(i)),
                    ],
                )
                .unwrap();
            }
        }
        db
    }

    #[test]
    fn cumulative_ingest_matches_one_shot_bit_for_bit() {
        let mut sq = StandingQuery::new(mean_by_run_spec());
        for end in 1..=5i64 {
            let runs: Vec<i64> = (0..end).collect();
            let db = db_with_runs(&runs);
            sq.ingest_package("exp", &db).unwrap();
            let one_shot = Dataset::from_database(&db)
                .unwrap()
                .run_spec(sq.spec())
                .unwrap();
            let standing = sq.frame().unwrap();
            assert_eq!(standing.digest(), one_shot.digest(), "after run {end}");
            assert_eq!(standing, one_shot);
        }
        assert_eq!(sq.refreshes(), 5);
        assert_eq!(sq.partitions(), 5);
    }

    #[test]
    fn reingesting_seen_runs_scans_nothing() {
        let mut sq = StandingQuery::new(mean_by_run_spec());
        let db = db_with_runs(&[0, 1]);
        assert_eq!(sq.ingest_package("exp", &db).unwrap(), 2);
        assert_eq!(sq.ingest_package("exp", &db).unwrap(), 0);
        assert_eq!(sq.refreshes(), 2);
    }

    #[test]
    fn frame_before_any_ingest_is_no_such_table() {
        let sq = StandingQuery::new(mean_by_run_spec());
        assert!(matches!(sq.frame(), Err(QueryError::NoSuchTable(_))));
    }

    #[test]
    fn multi_experiment_merge_order_matches_dataset_order() {
        let spec = PlanSpec {
            table: "Facts".into(),
            predicate: None,
            group_by: Vec::new(),
            aggs: vec![WireAggSpec {
                op: AggOp::Mean,
                column: Some("Latency".into()),
                name: None,
                q: None,
            }],
            select: Vec::new(),
            sort_by: None,
        };
        let db_a = db_with_runs(&[0, 1, 2]);
        let db_b = db_with_runs(&[0, 1]);
        let mut sq = StandingQuery::new(spec.clone());
        // Interleaved arrivals: b's runs land between a's.
        sq.ingest_package("a", &db_with_runs(&[0])).unwrap();
        sq.ingest_package("b", &db_with_runs(&[0])).unwrap();
        sq.ingest_package("a", &db_with_runs(&[0, 1, 2])).unwrap();
        sq.ingest_package("b", &db_b).unwrap();
        let ds = Dataset::builder()
            .add_package("a", &db_a)
            .unwrap()
            .add_package("b", &db_b)
            .unwrap()
            .build();
        assert_eq!(
            sq.frame().unwrap().digest(),
            ds.run_spec(&spec).unwrap().digest()
        );
    }

    #[test]
    fn row_mode_standing_query_accumulates_rows() {
        let spec = PlanSpec {
            table: "Facts".into(),
            predicate: None,
            group_by: Vec::new(),
            aggs: Vec::new(),
            select: vec!["RunID".into(), "Latency".into()],
            sort_by: Some("Latency".into()),
        };
        let db = db_with_runs(&[0, 1, 2]);
        let mut sq = StandingQuery::new(spec.clone());
        sq.ingest_package("exp", &db).unwrap();
        let one_shot = Dataset::from_database(&db)
            .unwrap()
            .run_spec(&spec)
            .unwrap();
        assert_eq!(sq.frame().unwrap().digest(), one_shot.digest());
    }
}
