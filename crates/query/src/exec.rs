//! Parallel scan execution with deterministic, partition-ordered merge.
//!
//! Partitions are scanned concurrently via the campaign fan-out primitive
//! (`excovery_netsim::run_indexed`), which returns per-partition results
//! in partition order regardless of scheduling. Aggregate partials are
//! then merged serially in that fixed order, so every scan is
//! bit-identical at any worker count — the same determinism contract the
//! replication campaigns established.

use crate::agg::AggPartial;
use crate::column::{CellRef, ColumnTable, StringPool, Value};
use crate::dataset::Partition;
use crate::error::QueryError;
use crate::plan::{Frame, Scan};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash-style) for the group-by maps. Map iteration
/// order never reaches the result (group keys are sorted before emission,
/// and merges are keyed), so SipHash's DoS resistance buys nothing in the
/// scan hot loop while costing most of its time.
#[derive(Default)]
struct FxHasher(u64);

const FX_SEED: u64 = 0x517cc1b727220a95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FX_SEED);
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FX_SEED);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FX_SEED);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A hashable group-by key cell (floats by bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Null,
    I64(i64),
    F64(u64),
    Str(u32),
    Bytes(Vec<u8>),
}

fn key_of(cell: CellRef<'_>) -> Key {
    match cell {
        CellRef::Null => Key::Null,
        CellRef::I64(v) => Key::I64(v),
        CellRef::F64(v) => Key::F64(v.to_bits()),
        CellRef::Str(id) => Key::Str(id),
        CellRef::Bytes(b) => Key::Bytes(b.to_vec()),
    }
}

fn key_value(key: &Key, pool: &StringPool) -> Value {
    match key {
        Key::Null => Value::Null,
        Key::I64(v) => Value::I64(*v),
        Key::F64(bits) => Value::F64(f64::from_bits(*bits)),
        Key::Str(id) => Value::Str(pool.resolve(*id).to_string()),
        Key::Bytes(b) => Value::Bytes(b.clone()),
    }
}

/// `cmp_sql` over key cells: NULL < numbers < text < blob.
fn cmp_key(a: &Key, b: &Key, pool: &StringPool) -> Ordering {
    fn kind(k: &Key) -> u8 {
        match k {
            Key::Null => 0,
            Key::I64(_) | Key::F64(_) => 1,
            Key::Str(_) => 2,
            Key::Bytes(_) => 3,
        }
    }
    fn num(k: &Key) -> f64 {
        match k {
            Key::I64(v) => *v as f64,
            Key::F64(bits) => f64::from_bits(*bits),
            _ => unreachable!(),
        }
    }
    kind(a).cmp(&kind(b)).then_with(|| match (a, b) {
        (Key::Null, Key::Null) => Ordering::Equal,
        (Key::Str(x), Key::Str(y)) => pool.resolve(*x).cmp(pool.resolve(*y)),
        (Key::Bytes(x), Key::Bytes(y)) => x.cmp(y),
        _ => num(a).partial_cmp(&num(b)).unwrap_or(Ordering::Equal),
    })
}

/// `cmp_sql` over cells of one column (used by `sort_by`).
fn cmp_cells(a: CellRef<'_>, b: CellRef<'_>, pool: &StringPool) -> Ordering {
    fn kind(c: &CellRef<'_>) -> u8 {
        match c {
            CellRef::Null => 0,
            CellRef::I64(_) | CellRef::F64(_) => 1,
            CellRef::Str(_) => 2,
            CellRef::Bytes(_) => 3,
        }
    }
    fn num(c: CellRef<'_>) -> f64 {
        match c {
            CellRef::I64(v) => v as f64,
            CellRef::F64(v) => v,
            _ => unreachable!(),
        }
    }
    kind(&a).cmp(&kind(&b)).then_with(|| match (a, b) {
        (CellRef::Null, CellRef::Null) => Ordering::Equal,
        (CellRef::Str(x), CellRef::Str(y)) => pool.resolve(x).cmp(pool.resolve(y)),
        (CellRef::Bytes(x), CellRef::Bytes(y)) => x.cmp(y),
        (a, b) => num(a).partial_cmp(&num(b)).unwrap_or(Ordering::Equal),
    })
}

/// Per-partition result of an aggregate scan.
struct PartAgg {
    groups: FxMap<Vec<Key>, Vec<AggPartial>>,
}

pub(crate) fn execute(scan: Scan<'_>) -> Result<Frame, QueryError> {
    let ds = scan.ds;
    let schema = ds.schema(&scan.table)?.clone();
    let col_index = |name: &str| -> Result<usize, QueryError> {
        schema
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| QueryError::NoSuchColumn {
                table: scan.table.clone(),
                column: name.to_string(),
            })
    };
    let group_cols: Vec<usize> = scan
        .group_by
        .iter()
        .map(|c| col_index(c))
        .collect::<Result<_, _>>()?;
    let agg_cols: Vec<Option<usize>> = scan
        .aggs
        .iter()
        .map(|a| a.input_column().map(&col_index).transpose())
        .collect::<Result<_, _>>()?;
    let agg_float: Vec<bool> = agg_cols
        .iter()
        .map(|c| c.is_some_and(|i| schema.kinds[i] == excovery_store::ColumnType::Real))
        .collect();
    let project: Vec<String> = scan.project.clone().unwrap_or_else(|| schema.names.clone());
    let proj_cols: Vec<usize> = project
        .iter()
        .map(|c| col_index(c))
        .collect::<Result<_, _>>()?;
    let sort_col = scan.sort.as_deref().map(&col_index).transpose()?;
    // Validate the filter's shape and column names once, against an
    // empty table of the scanned schema (per-partition binding would
    // miss tables absent from every partition).
    if let Some(f) = &scan.filter {
        let probe = ColumnTable::new(schema.names.clone(), schema.empty_slabs());
        f.bind(&scan.table, &probe, &ds.pool)?;
    }

    // Partition selection with min/max pruning.
    let mut parts: Vec<(&Partition, &ColumnTable)> = Vec::new();
    let mut pruned = 0usize;
    for p in &ds.partitions {
        let Some(t) = p.tables.get(&scan.table) else {
            continue;
        };
        if let Some(f) = &scan.filter {
            let stats = |col: &str| p.int_column_stats(&scan.table, col);
            if f.prunes(&stats) {
                pruned += 1;
                continue;
            }
        }
        parts.push((p, t));
    }
    let rows_total: usize = parts.iter().map(|(_, t)| t.rows).sum();
    if excovery_obs::enabled() {
        let reg = excovery_obs::global();
        reg.counter("query_partitions_scanned_total", &[])
            .add(parts.len() as u64);
        reg.counter("query_partitions_pruned_total", &[])
            .add(pruned as u64);
        reg.counter("query_rows_scanned_total", &[])
            .add(rows_total as u64);
    }

    let workers = scan
        .workers
        .unwrap_or_else(excovery_netsim::workers_from_env);
    let aggregate_mode = !scan.aggs.is_empty() || !scan.group_by.is_empty();

    if aggregate_mode {
        let partials = excovery_netsim::run_indexed(workers, parts.len(), |i| {
            let (_, t) = parts[i];
            timed_partition_scan(|| {
                scan_partition_agg(&scan, t, &group_cols, &agg_cols, &agg_float)
            })
        });
        // Serial merge in partition order: per-group merge order is
        // fixed, so float merges are deterministic too.
        let mut master: FxMap<Vec<Key>, Vec<AggPartial>> = FxMap::default();
        for part in partials {
            for (key, partial) in part?.groups {
                match master.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (a, b) in e.get_mut().iter_mut().zip(&partial) {
                            a.merge(b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(partial);
                    }
                }
            }
        }
        // A global aggregate (no group_by) over zero rows still yields
        // one row: count 0, everything else NULL — like the row engine.
        if scan.group_by.is_empty() && master.is_empty() {
            master.insert(
                Vec::new(),
                scan.aggs
                    .iter()
                    .zip(&agg_float)
                    .map(|(a, &f)| AggPartial::new(&a.spec, f))
                    .collect(),
            );
        }
        let mut keys: Vec<Vec<Key>> = master.keys().cloned().collect();
        keys.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| cmp_key(x, y, &ds.pool))
                .find(|o| *o != Ordering::Equal)
                .unwrap_or(Ordering::Equal)
        });
        let columns: Vec<String> = scan
            .group_by
            .iter()
            .cloned()
            .chain(scan.aggs.iter().map(|a| a.name.clone()))
            .collect();
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .map(|key| {
                let partials = &master[key];
                key.iter()
                    .map(|k| key_value(k, &ds.pool))
                    .chain(
                        partials
                            .iter()
                            .zip(&scan.aggs)
                            .map(|(p, a)| p.finalize(&a.spec)),
                    )
                    .collect()
            })
            .collect();
        Ok(Frame { columns, rows })
    } else {
        let chunks = excovery_netsim::run_indexed(workers, parts.len(), |i| {
            let (_, t) = parts[i];
            timed_partition_scan(|| scan_partition_rows(&scan, t, &proj_cols, sort_col))
        });
        let mut rows = Vec::new();
        for chunk in chunks {
            rows.extend(chunk?);
        }
        Ok(Frame {
            columns: project,
            rows,
        })
    }
}

/// Wraps one partition scan in an optional wall-clock observation.
fn timed_partition_scan<T>(f: impl FnOnce() -> T) -> T {
    let started = excovery_obs::enabled().then(std::time::Instant::now);
    let out = f();
    if let Some(t0) = started {
        excovery_obs::global()
            .histogram("query_partition_scan_ns", &[])
            .observe(t0.elapsed().as_nanos() as u64);
    }
    out
}

fn scan_partition_agg(
    scan: &Scan<'_>,
    t: &ColumnTable,
    group_cols: &[usize],
    agg_cols: &[Option<usize>],
    agg_float: &[bool],
) -> Result<PartAgg, QueryError> {
    let pool = &scan.ds.pool;
    let bound = scan
        .filter
        .as_ref()
        .map(|f| f.bind(&scan.table, t, pool))
        .transpose()?;
    let fresh_partials = || -> Vec<AggPartial> {
        scan.aggs
            .iter()
            .zip(agg_float)
            .map(|(a, &f)| AggPartial::new(&a.spec, f))
            .collect()
    };
    let update = |partials: &mut Vec<AggPartial>, i: usize| {
        for (partial, col) in partials.iter_mut().zip(agg_cols) {
            let cell = match col {
                Some(c) => t.slabs[*c].get(i),
                None => CellRef::Null,
            };
            partial.update(cell);
        }
    };
    let groups = if let [gc] = group_cols {
        // Single group column (the overwhelmingly common shape): key the
        // map by the bare `Key` so the hot loop allocates nothing per row.
        let mut fast: FxMap<Key, Vec<AggPartial>> = FxMap::default();
        for i in 0..t.rows {
            if let Some(b) = &bound {
                if !b.eval(t, i, pool) {
                    continue;
                }
            }
            let partials = fast
                .entry(key_of(t.slabs[*gc].get(i)))
                .or_insert_with(fresh_partials);
            update(partials, i);
        }
        fast.into_iter().map(|(k, v)| (vec![k], v)).collect()
    } else {
        let mut groups: FxMap<Vec<Key>, Vec<AggPartial>> = FxMap::default();
        for i in 0..t.rows {
            if let Some(b) = &bound {
                if !b.eval(t, i, pool) {
                    continue;
                }
            }
            let key: Vec<Key> = group_cols
                .iter()
                .map(|&c| key_of(t.slabs[c].get(i)))
                .collect();
            let partials = groups.entry(key).or_insert_with(fresh_partials);
            update(partials, i);
        }
        groups
    };
    Ok(PartAgg { groups })
}

fn scan_partition_rows(
    scan: &Scan<'_>,
    t: &ColumnTable,
    proj_cols: &[usize],
    sort_col: Option<usize>,
) -> Result<Vec<Vec<Value>>, QueryError> {
    let pool = &scan.ds.pool;
    let bound = scan
        .filter
        .as_ref()
        .map(|f| f.bind(&scan.table, t, pool))
        .transpose()?;
    let mut idx: Vec<usize> = (0..t.rows)
        .filter(|&i| bound.as_ref().is_none_or(|b| b.eval(t, i, pool)))
        .collect();
    if let Some(c) = sort_col {
        let slab = &t.slabs[c];
        // Stable, like the row engine's ORDER BY: equal keys keep
        // insertion order.
        idx.sort_by(|&a, &b| cmp_cells(slab.get(a), slab.get(b), pool));
    }
    Ok(idx
        .into_iter()
        .map(|i| {
            proj_cols
                .iter()
                .map(|&c| t.slabs[c].value(i, pool))
                .collect()
        })
        .collect())
}
