//! Parallel scan execution with deterministic, partition-ordered merge.
//!
//! Partitions are scanned concurrently via the campaign fan-out primitive
//! (`excovery_netsim::run_indexed`), which returns per-partition results
//! in partition order regardless of scheduling. Aggregate partials are
//! then merged serially in that fixed order, so every scan is
//! bit-identical at any worker count — the same determinism contract the
//! replication campaigns established.
//!
//! The pieces are factored so three callers share one code path and
//! therefore one byte-exact semantics:
//!
//! * [`execute`] — a one-shot [`Scan::collect`], over resident or
//!   spilled partitions alike;
//! * the incremental layer (`incremental.rs`) reuses [`PlanCtx`],
//!   [`scan_partition_agg`], [`merge_groups`] and [`finalize_agg_frame`]
//!   to refresh standing queries one partition at a time;
//! * spilled datasets (`spill.rs`) are pruned from footer statistics and
//!   loaded lazily inside the same fan-out.

use crate::agg::{Agg, AggPartial};
use crate::column::{CellRef, ColumnTable, Slab, StringPool, Value};
use crate::dataset::{Dataset, Partition, TableSchema};
use crate::error::QueryError;
use crate::expr::Expr;
use crate::plan::{Frame, Scan};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (FxHash-style) for the group-by maps. Map iteration
/// order never reaches the result (group keys are sorted before emission,
/// and merges are keyed), so SipHash's DoS resistance buys nothing in the
/// scan hot loop while costing most of its time.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

const FX_SEED: u64 = 0x517cc1b727220a95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FX_SEED);
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(FX_SEED);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FX_SEED);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Per-partition (and merged) group-by state: group key → one partial
/// per aggregate.
pub(crate) type GroupMap = FxMap<Vec<Key>, Vec<AggPartial>>;

/// A hashable group-by key cell (floats by bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    Null,
    I64(i64),
    F64(u64),
    Str(u32),
    Bytes(Vec<u8>),
}

fn key_of(cell: CellRef<'_>) -> Key {
    match cell {
        CellRef::Null => Key::Null,
        CellRef::I64(v) => Key::I64(v),
        CellRef::F64(v) => Key::F64(v.to_bits()),
        CellRef::Str(id) => Key::Str(id),
        CellRef::Bytes(b) => Key::Bytes(b.to_vec()),
    }
}

fn key_value(key: &Key, pool: &StringPool) -> Value {
    match key {
        Key::Null => Value::Null,
        Key::I64(v) => Value::I64(*v),
        Key::F64(bits) => Value::F64(f64::from_bits(*bits)),
        Key::Str(id) => Value::Str(pool.resolve(*id).to_string()),
        Key::Bytes(b) => Value::Bytes(b.clone()),
    }
}

/// `cmp_sql` over key cells: NULL < numbers < text < blob.
fn cmp_key(a: &Key, b: &Key, pool: &StringPool) -> Ordering {
    fn kind(k: &Key) -> u8 {
        match k {
            Key::Null => 0,
            Key::I64(_) | Key::F64(_) => 1,
            Key::Str(_) => 2,
            Key::Bytes(_) => 3,
        }
    }
    fn num(k: &Key) -> f64 {
        match k {
            Key::I64(v) => *v as f64,
            Key::F64(bits) => f64::from_bits(*bits),
            _ => unreachable!(),
        }
    }
    kind(a).cmp(&kind(b)).then_with(|| match (a, b) {
        (Key::Null, Key::Null) => Ordering::Equal,
        (Key::Str(x), Key::Str(y)) => pool.resolve(*x).cmp(pool.resolve(*y)),
        (Key::Bytes(x), Key::Bytes(y)) => x.cmp(y),
        _ => num(a).partial_cmp(&num(b)).unwrap_or(Ordering::Equal),
    })
}

/// `cmp_sql` over cells of one column (used by `sort_by`).
fn cmp_cells(a: CellRef<'_>, b: CellRef<'_>, pool: &StringPool) -> Ordering {
    fn kind(c: &CellRef<'_>) -> u8 {
        match c {
            CellRef::Null => 0,
            CellRef::I64(_) | CellRef::F64(_) => 1,
            CellRef::Str(_) => 2,
            CellRef::Bytes(_) => 3,
        }
    }
    fn num(c: CellRef<'_>) -> f64 {
        match c {
            CellRef::I64(v) => v as f64,
            CellRef::F64(v) => v,
            _ => unreachable!(),
        }
    }
    kind(&a).cmp(&kind(&b)).then_with(|| match (a, b) {
        (CellRef::Null, CellRef::Null) => Ordering::Equal,
        (CellRef::Str(x), CellRef::Str(y)) => pool.resolve(x).cmp(pool.resolve(y)),
        (CellRef::Bytes(x), CellRef::Bytes(y)) => x.cmp(y),
        (a, b) => num(a).partial_cmp(&num(b)).unwrap_or(Ordering::Equal),
    })
}

/// A fully resolved logical plan over one table schema: column names
/// validated and bound to indices, independent of any one partition (or
/// dataset). Built once per query, shared by every partition scan.
#[derive(Debug, Clone)]
pub(crate) struct PlanCtx {
    pub(crate) table: String,
    pub(crate) filter: Option<Expr>,
    pub(crate) group_by: Vec<String>,
    pub(crate) aggs: Vec<Agg>,
    pub(crate) project: Vec<String>,
    pub(crate) proj_cols: Vec<usize>,
    pub(crate) sort_col: Option<usize>,
    pub(crate) group_cols: Vec<usize>,
    pub(crate) agg_cols: Vec<Option<usize>>,
    pub(crate) agg_float: Vec<bool>,
    /// Every column the plan actually reads — the projected-decode set
    /// handed to the spill loader so unreferenced columns stay on disk.
    pub(crate) needed: Vec<String>,
}

impl PlanCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        schema: &TableSchema,
        table: String,
        filter: Option<Expr>,
        group_by: Vec<String>,
        aggs: Vec<Agg>,
        project: Option<Vec<String>>,
        sort: Option<String>,
        pool: &StringPool,
    ) -> Result<Self, QueryError> {
        let col_index = |name: &str| -> Result<usize, QueryError> {
            schema
                .names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| QueryError::NoSuchColumn {
                    table: table.clone(),
                    column: name.to_string(),
                })
        };
        let group_cols: Vec<usize> = group_by
            .iter()
            .map(|c| col_index(c))
            .collect::<Result<_, _>>()?;
        let agg_cols: Vec<Option<usize>> = aggs
            .iter()
            .map(|a| a.input_column().map(&col_index).transpose())
            .collect::<Result<_, _>>()?;
        let agg_float: Vec<bool> = agg_cols
            .iter()
            .map(|c| c.is_some_and(|i| schema.kinds[i] == excovery_store::ColumnType::Real))
            .collect();
        let project: Vec<String> = project.unwrap_or_else(|| schema.names.clone());
        let proj_cols: Vec<usize> = project
            .iter()
            .map(|c| col_index(c))
            .collect::<Result<_, _>>()?;
        let sort_col = sort.as_deref().map(&col_index).transpose()?;
        // Validate the filter's shape and column names once, against an
        // empty table of the scanned schema (per-partition binding would
        // miss tables absent from every partition).
        if let Some(f) = &filter {
            let probe = ColumnTable::new(schema.names.clone(), schema.empty_slabs());
            f.bind(&table, &probe, pool)?;
        }
        let mut needed: std::collections::BTreeSet<String> = group_by.iter().cloned().collect();
        for a in &aggs {
            if let Some(c) = a.input_column() {
                needed.insert(c.to_string());
            }
        }
        if let Some(f) = &filter {
            f.collect_columns(&mut needed);
        }
        if aggs.is_empty() && group_by.is_empty() {
            needed.extend(project.iter().cloned());
            if let Some(s) = &sort {
                needed.insert(s.clone());
            }
        }
        Ok(Self {
            table,
            filter,
            group_by,
            aggs,
            project,
            proj_cols,
            sort_col,
            group_cols,
            agg_cols,
            agg_float,
            needed: needed.into_iter().collect(),
        })
    }

    pub(crate) fn aggregate_mode(&self) -> bool {
        !self.aggs.is_empty() || !self.group_by.is_empty()
    }
}

/// One selected partition: resident in the dataset, or a spill slot.
enum Sel<'a> {
    Resident(&'a Partition),
    Spilled(usize),
}

pub(crate) fn execute(scan: Scan<'_>) -> Result<Frame, QueryError> {
    let ds = scan.ds;
    let schema = ds.schema(&scan.table)?;
    let ctx = PlanCtx::new(
        schema,
        scan.table.clone(),
        scan.filter.clone(),
        scan.group_by.clone(),
        scan.aggs.clone(),
        scan.project.clone(),
        scan.sort.clone(),
        &ds.pool,
    )?;
    let workers = scan
        .workers
        .unwrap_or_else(excovery_netsim::workers_from_env);
    execute_ctx(ds, &ctx, workers)
}

pub(crate) fn execute_ctx(ds: &Dataset, ctx: &PlanCtx, workers: usize) -> Result<Frame, QueryError> {
    // Partition selection with min/max pruning — from slab footers for
    // spilled datasets (no IO beyond the already-read footers), from the
    // resident slabs otherwise.
    let mut parts: Vec<Sel<'_>> = Vec::new();
    let mut pruned = 0usize;
    let mut rows_total = 0usize;
    if let Some(store) = &ds.spill {
        for (i, footer) in store.footers().enumerate() {
            let Some(rows) = footer.table_rows(&ctx.table) else {
                continue;
            };
            if let Some(f) = &ctx.filter {
                let stats = |col: &str| footer.int_column_stats(&ctx.table, col);
                if f.prunes(&stats) {
                    pruned += 1;
                    continue;
                }
            }
            rows_total += rows as usize;
            parts.push(Sel::Spilled(i));
        }
    } else {
        for p in &ds.partitions {
            let Some(t) = p.tables.get(&ctx.table) else {
                continue;
            };
            if let Some(f) = &ctx.filter {
                let stats = |col: &str| p.int_column_stats(&ctx.table, col);
                if f.prunes(&stats) {
                    pruned += 1;
                    continue;
                }
            }
            rows_total += t.rows;
            parts.push(Sel::Resident(p));
        }
    }
    if excovery_obs::enabled() {
        let reg = excovery_obs::global();
        reg.counter("query_partitions_scanned_total", &[])
            .add(parts.len() as u64);
        reg.counter("query_partitions_pruned_total", &[])
            .add(pruned as u64);
        reg.counter("query_rows_scanned_total", &[])
            .add(rows_total as u64);
    }

    // Scans one selected partition, loading it first when spilled. The
    // loaded `Arc` lives for the duration of the closure, so eviction
    // during a concurrent scan can never invalidate it.
    let with_table = |sel: &Sel<'_>, f: &mut dyn FnMut(&ColumnTable) -> Result<GroupMap, QueryError>| match sel {
        Sel::Resident(p) => f(p.tables.get(&ctx.table).expect("selected table present")),
        Sel::Spilled(slot) => {
            let part = ds
                .spill
                .as_ref()
                .expect("spilled selection")
                .load_projected(*slot, &ctx.table, &ctx.needed)?;
            f(part
                .tables
                .get(&ctx.table)
                .expect("footer promised this table"))
        }
    };

    if ctx.aggregate_mode() {
        let partials = excovery_netsim::run_indexed(workers, parts.len(), |i| {
            timed_partition_scan(|| {
                with_table(&parts[i], &mut |t| scan_partition_agg(ctx, t, &ds.pool))
            })
        });
        // Serial merge in partition order: per-group merge order is
        // fixed, so float merges are deterministic too.
        let mut master = GroupMap::default();
        for part in partials {
            merge_groups(&mut master, part?);
        }
        Ok(finalize_agg_frame(ctx, master, &ds.pool))
    } else {
        let chunks = excovery_netsim::run_indexed(workers, parts.len(), |i| {
            timed_partition_scan(|| match &parts[i] {
                Sel::Resident(p) => scan_partition_rows(
                    ctx,
                    p.tables.get(&ctx.table).expect("selected table present"),
                    &ds.pool,
                ),
                Sel::Spilled(slot) => {
                    let part = ds
                        .spill
                        .as_ref()
                        .expect("spilled selection")
                        .load_projected(*slot, &ctx.table, &ctx.needed)?;
                    scan_partition_rows(
                        ctx,
                        part.tables
                            .get(&ctx.table)
                            .expect("footer promised this table"),
                        &ds.pool,
                    )
                }
            })
        });
        let mut rows = Vec::new();
        for chunk in chunks {
            rows.extend(chunk?);
        }
        Ok(Frame {
            columns: ctx.project.clone(),
            rows,
        })
    }
}

/// Merges one partition's groups into the master map. Callers must feed
/// partitions in canonical partition order — per-group partial merges
/// then happen in that fixed sequence, which is what keeps float
/// aggregates bit-identical across worker counts and arrival orders.
pub(crate) fn merge_groups(master: &mut GroupMap, part: GroupMap) {
    for (key, partial) in part {
        match master.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for (a, b) in e.get_mut().iter_mut().zip(&partial) {
                    a.merge(b);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(partial);
            }
        }
    }
}

/// Sorts group keys SQL-style and emits the result frame, synthesising
/// the one-row output of a global aggregate over zero rows — shared by
/// one-shot scans and standing-query refreshes.
pub(crate) fn finalize_agg_frame(ctx: &PlanCtx, mut master: GroupMap, pool: &StringPool) -> Frame {
    // A global aggregate (no group_by) over zero rows still yields one
    // row: count 0, everything else NULL — like the row engine.
    if ctx.group_by.is_empty() && master.is_empty() {
        master.insert(
            Vec::new(),
            ctx.aggs
                .iter()
                .zip(&ctx.agg_float)
                .map(|(a, &f)| AggPartial::new(&a.spec, f))
                .collect(),
        );
    }
    let mut keys: Vec<Vec<Key>> = master.keys().cloned().collect();
    keys.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| cmp_key(x, y, pool))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
    let columns: Vec<String> = ctx
        .group_by
        .iter()
        .cloned()
        .chain(ctx.aggs.iter().map(|a| a.name.clone()))
        .collect();
    let rows: Vec<Vec<Value>> = keys
        .iter()
        .map(|key| {
            let partials = &master[key];
            key.iter()
                .map(|k| key_value(k, pool))
                .chain(
                    partials
                        .iter()
                        .zip(&ctx.aggs)
                        .map(|(p, a)| p.finalize(&a.spec)),
                )
                .collect()
        })
        .collect();
    Frame { columns, rows }
}

/// Wraps one partition scan in an optional wall-clock observation.
fn timed_partition_scan<T>(f: impl FnOnce() -> T) -> T {
    let started = excovery_obs::enabled().then(std::time::Instant::now);
    let out = f();
    if let Some(t0) = started {
        excovery_obs::global()
            .histogram("query_partition_scan_ns", &[])
            .observe(t0.elapsed().as_nanos() as u64);
    }
    out
}

pub(crate) fn scan_partition_agg(
    ctx: &PlanCtx,
    t: &ColumnTable,
    pool: &StringPool,
) -> Result<GroupMap, QueryError> {
    let bound = ctx
        .filter
        .as_ref()
        .map(|f| f.bind(&ctx.table, t, pool))
        .transpose()?;
    let fresh_partials = || -> Vec<AggPartial> {
        ctx.aggs
            .iter()
            .zip(&ctx.agg_float)
            .map(|(a, &f)| AggPartial::new(&a.spec, f))
            .collect()
    };
    let update = |partials: &mut Vec<AggPartial>, i: usize| {
        for (partial, col) in partials.iter_mut().zip(&ctx.agg_cols) {
            let cell = match col {
                Some(c) => t.slabs[*c].get(i),
                None => CellRef::Null,
            };
            partial.update(cell);
        }
    };
    let groups = if let [gc] = ctx.group_cols[..] {
        // Constant-key fast path: when the single group column is an
        // integer slab whose min == max with no nulls (true of the
        // partition column itself in every run partition), the whole
        // partition is one group — fold each aggregate column-at-a-time
        // with no per-row hashing. Row order is preserved inside each
        // column, so results stay bit-identical to the hashed path.
        if bound.is_none() && t.rows > 0 {
            if let Slab::I64 { .. } = &t.slabs[gc] {
                if let Some(s) = t.slabs[gc].int_stats() {
                    if s.min == s.max && t.slabs[gc].null_count() == 0 {
                        let mut partials = fresh_partials();
                        for (partial, col) in partials.iter_mut().zip(&ctx.agg_cols) {
                            match col {
                                Some(c) => partial.update_slab(&t.slabs[*c]),
                                None => partial.update_rows(t.rows),
                            }
                        }
                        let mut m = GroupMap::default();
                        m.insert(vec![Key::I64(s.min)], partials);
                        return Ok(m);
                    }
                }
            }
        }
        // Single group column (the overwhelmingly common shape): key the
        // map by the bare `Key` so the hot loop allocates nothing per row.
        let mut fast: FxMap<Key, Vec<AggPartial>> = FxMap::default();
        for i in 0..t.rows {
            if let Some(b) = &bound {
                if !b.eval(t, i, pool) {
                    continue;
                }
            }
            let partials = fast
                .entry(key_of(t.slabs[gc].get(i)))
                .or_insert_with(fresh_partials);
            update(partials, i);
        }
        fast.into_iter().map(|(k, v)| (vec![k], v)).collect()
    } else {
        let mut groups = GroupMap::default();
        for i in 0..t.rows {
            if let Some(b) = &bound {
                if !b.eval(t, i, pool) {
                    continue;
                }
            }
            let key: Vec<Key> = ctx
                .group_cols
                .iter()
                .map(|&c| key_of(t.slabs[c].get(i)))
                .collect();
            let partials = groups.entry(key).or_insert_with(fresh_partials);
            update(partials, i);
        }
        groups
    };
    Ok(groups)
}

pub(crate) fn scan_partition_rows(
    ctx: &PlanCtx,
    t: &ColumnTable,
    pool: &StringPool,
) -> Result<Vec<Vec<Value>>, QueryError> {
    let bound = ctx
        .filter
        .as_ref()
        .map(|f| f.bind(&ctx.table, t, pool))
        .transpose()?;
    let mut idx: Vec<usize> = (0..t.rows)
        .filter(|&i| bound.as_ref().is_none_or(|b| b.eval(t, i, pool)))
        .collect();
    if let Some(c) = ctx.sort_col {
        let slab = &t.slabs[c];
        // Stable, like the row engine's ORDER BY: equal keys keep
        // insertion order.
        idx.sort_by(|&a, &b| cmp_cells(slab.get(a), slab.get(b), pool));
    }
    Ok(idx
        .into_iter()
        .map(|i| {
            ctx.proj_cols
                .iter()
                .map(|&c| t.slabs[c].value(i, pool))
                .collect()
        })
        .collect())
}
