//! Typed errors of the query layer.

use excovery_store::StoreError;
use std::fmt;

/// Everything that can go wrong building a [`Dataset`] or running a scan.
///
/// [`Dataset`]: crate::Dataset
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// An underlying storage operation failed.
    Store(StoreError),
    /// The scanned table does not exist in the dataset.
    NoSuchTable(String),
    /// A referenced column does not exist in the scanned table.
    NoSuchColumn {
        /// Table being scanned.
        table: String,
        /// Missing column.
        column: String,
    },
    /// An operation was applied to a column of an incompatible type
    /// (e.g. `quantile` over a text column).
    TypeMismatch {
        /// Column involved.
        column: String,
        /// What the operation expected.
        expected: &'static str,
    },
    /// A plan shape the executor does not support (e.g. comparing two
    /// columns to each other).
    Unsupported(String),
    /// A slab file could not be read or written (the underlying
    /// `std::io::Error`, stringified so the error stays `Clone + Eq`).
    Io(String),
    /// A slab file failed validation: bad magic, truncated section,
    /// impossible lengths or a dangling dictionary reference.
    Corrupt(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Store(e) => write!(f, "query: {e}"),
            QueryError::NoSuchTable(t) => write!(f, "query: no such table: {t}"),
            QueryError::NoSuchColumn { table, column } => {
                write!(f, "query: no such column {column:?} in table {table:?}")
            }
            QueryError::TypeMismatch { column, expected } => {
                write!(f, "query: column {column:?} is not {expected}")
            }
            QueryError::Unsupported(what) => write!(f, "query: unsupported plan: {what}"),
            QueryError::Io(e) => write!(f, "query: slab io: {e}"),
            QueryError::Corrupt(what) => write!(f, "query: corrupt slab file: {what}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_errors_convert_and_chain() {
        let e: QueryError = StoreError("no such table: Events".into()).into();
        assert!(matches!(e, QueryError::Store(_)));
        assert!(e.to_string().contains("no such table"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn display_is_specific() {
        let e = QueryError::NoSuchColumn {
            table: "Events".into(),
            column: "Nope".into(),
        };
        assert_eq!(
            e.to_string(),
            "query: no such column \"Nope\" in table \"Events\""
        );
    }
}
