//! # excovery-query
//!
//! A columnar, parallel query layer over the ExCovery measurement storage
//! (levels 3 and 4). The paper stops at "accelerate data access" via a
//! relational package per experiment (§IV-F); this crate follows the
//! C-Store/MonetDB lineage instead: ingested packages become typed column
//! slabs partitioned by experiment and run, and analysis questions run as
//! small logical plans — projection, predicate pushdown with per-partition
//! min/max pruning, hash group-by and mergeable aggregates — fanned out
//! across scoped worker threads.
//!
//! ## Determinism contract
//!
//! Every scan is **bit-identical regardless of worker count**: partitions
//! are scanned concurrently but merged in partition order (the campaign
//! discipline), integer sums accumulate exactly in `i128`, and group rows
//! are emitted in SQL key order. `EXCOVERY_WORKERS` (or
//! [`Scan::workers`]) changes only the wall-clock, never a byte of any
//! [`Frame`].
//!
//! ## Entry point
//!
//! [`Dataset`] is the one entry point: build it from a package, a package
//! list or a level-4 [`Repository`], then
//! `scan(table).filter(…).group_by(…).agg(…).collect()`.
//!
//! [`Repository`]: excovery_store::Repository

pub mod agg;
pub mod column;
pub mod dataset;
pub mod error;
mod exec;
pub mod expr;
pub mod incremental;
pub mod plan;
pub mod slab_io;
pub mod spec;
pub mod spill;
pub mod warehouse;

pub use agg::{Agg, AggSpec};
pub use column::{Bitmap, CellRef, ColumnTable, IntStats, Slab, StringPool, Value};
pub use dataset::{Dataset, DatasetBuilder, Partition, TableSchema, DEFAULT_PARTITION_COLUMN};
pub use error::QueryError;
pub use expr::{col, lit, null, CmpOp, Expr};
pub use incremental::StandingQuery;
pub use plan::{Frame, Scan};
pub use slab_io::{read_footer, PartitionFooter, SLAB_FILE_EXTENSION};
pub use spec::{
    agg_to_spec, cell_to_value, expr_to_spec, frame_to_wire, spec_to_agg, spec_to_expr,
    value_to_cell, wire_to_frame,
};
pub use spill::{SpillBuilder, SpillStore, DEFAULT_MEMORY_BUDGET, MEMORY_BUDGET_ENV};

/// The one serializable logical-plan vocabulary, re-exported from the
/// rpc crate: [`Scan::to_spec`] lowers into it, [`Dataset::run_spec`]
/// executes it, and the server ships it over `query.run`.
pub use excovery_rpc::{ExprSpec, PlanSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::records::{EventRow, RunInfoRow};
    use excovery_store::schema::create_level3_database;
    use excovery_store::Database;

    /// A small two-package dataset with known contents.
    fn packages() -> (Database, Database) {
        let mut a = create_level3_database();
        let mut b = create_level3_database();
        for (db, runs, base) in [(&mut a, 3u64, 10i64), (&mut b, 2, 1000)] {
            for run in 0..runs {
                RunInfoRow {
                    run_id: run,
                    node_id: "su".into(),
                    start_time_ns: 0,
                    time_diff_ns: 0,
                }
                .insert(db)
                .unwrap();
                for k in 0..4i64 {
                    EventRow {
                        run_id: run,
                        node_id: if k % 2 == 0 { "su" } else { "sp" }.into(),
                        common_time_ns: base + k,
                        event_type: if k == 3 { "sd_service_add" } else { "sd_probe" }.into(),
                        parameter: String::new(),
                    }
                    .insert(db)
                    .unwrap();
                }
            }
        }
        (a, b)
    }

    #[test]
    fn group_by_count_over_two_packages() {
        let (a, b) = packages();
        let ds = Dataset::from_packages(&[("a", &a), ("b", &b)]).unwrap();
        let f = ds
            .scan("Events")
            .group_by(["RunID"])
            .agg([Agg::count()])
            .collect()
            .unwrap();
        assert_eq!(f.columns, vec!["RunID".to_string(), "count".to_string()]);
        // Runs 0..3 from package a and 0..2 from package b share ids.
        assert_eq!(f.rows.len(), 3);
        assert_eq!(f.rows[0], vec![Value::I64(0), Value::I64(8)]);
        assert_eq!(f.rows[2], vec![Value::I64(2), Value::I64(4)]);
    }

    #[test]
    fn filter_and_global_aggregate() {
        let (a, b) = packages();
        let ds = Dataset::from_packages(&[("a", &a), ("b", &b)]).unwrap();
        let f = ds
            .scan("Events")
            .filter(col("EventType").eq(lit("sd_service_add")))
            .agg([Agg::count(), Agg::mean("CommonTime")])
            .collect()
            .unwrap();
        assert_eq!(f.rows.len(), 1);
        assert_eq!(f.rows[0][0], Value::I64(5));
        // Mean of [13, 13, 13, 1003, 1003].
        assert_eq!(f.rows[0][1], Value::F64((13.0 * 3.0 + 1003.0 * 2.0) / 5.0));
    }

    #[test]
    fn row_scan_matches_row_engine_order() {
        let (a, _) = packages();
        let ds = Dataset::from_database(&a).unwrap();
        let f = ds
            .scan("Events")
            .select(["RunID", "CommonTime"])
            .sort_by("CommonTime")
            .collect()
            .unwrap();
        // Partition order (RunID) then CommonTime — the read_all order.
        let pairs: Vec<(i64, i64)> = f
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
        assert_eq!(pairs.len(), 12);
    }

    #[test]
    fn scans_are_digest_equal_at_any_worker_count() {
        let (a, b) = packages();
        let ds = Dataset::from_packages(&[("a", &a), ("b", &b)]).unwrap();
        let run = |workers: usize| {
            ds.scan("Events")
                .filter(col("NodeID").eq(lit("su")))
                .group_by(["RunID", "EventType"])
                .agg([
                    Agg::count(),
                    Agg::mean("CommonTime"),
                    Agg::max("CommonTime"),
                ])
                .workers(workers)
                .collect()
                .unwrap()
        };
        let serial = run(1);
        for w in [2, 4, 8] {
            let parallel = run(w);
            assert_eq!(serial, parallel, "workers={w}");
            assert_eq!(serial.digest(), parallel.digest(), "workers={w}");
        }
    }

    #[test]
    fn group_by_without_aggs_is_sorted_distinct() {
        let (a, _) = packages();
        let ds = Dataset::from_database(&a).unwrap();
        let f = ds.scan("Events").group_by(["EventType"]).collect().unwrap();
        let names: Vec<&str> = f.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["sd_probe", "sd_service_add"]);
    }

    #[test]
    fn pruning_skips_runs_outside_the_predicate() {
        let (a, _) = packages();
        let ds = Dataset::from_database(&a).unwrap();
        // RunID is the partition column, so Eq prunes 2 of 3 partitions;
        // the result is unaffected.
        let f = ds
            .scan("Events")
            .filter(col("RunID").eq(lit(1i64)))
            .agg([Agg::count()])
            .collect()
            .unwrap();
        assert_eq!(f.rows[0][0], Value::I64(4));
        let none = ds
            .scan("Events")
            .filter(col("RunID").gt(lit(99i64)))
            .agg([Agg::count()])
            .collect()
            .unwrap();
        assert_eq!(none.rows[0][0], Value::I64(0));
    }

    #[test]
    fn errors_are_typed() {
        let (a, _) = packages();
        let ds = Dataset::from_database(&a).unwrap();
        assert!(matches!(
            ds.scan("Nope").collect(),
            Err(QueryError::NoSuchTable(_))
        ));
        assert!(matches!(
            ds.scan("Events").group_by(["Nope"]).collect(),
            Err(QueryError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            ds.scan("Events")
                .filter(col("Nope").eq(lit(1i64)))
                .collect(),
            Err(QueryError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            ds.scan("Events").agg([Agg::mean("Nope")]).collect(),
            Err(QueryError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            ds.scan("Events").select(["Nope"]).collect(),
            Err(QueryError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            ds.scan("Events").sort_by("Nope").collect(),
            Err(QueryError::NoSuchColumn { .. })
        ));
    }
}
