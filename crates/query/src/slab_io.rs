//! On-disk column slabs: one binary, mmap-able file per partition.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..4)  magic "EXQS"
//! [4..8)  format version u32
//! [8..)   column data blocks, one per (table, column), addressed by
//!         footer offsets — dictionary ids for text, run-length runs or
//!         plain arrays for fixed-width columns, raw arenas for blobs
//! footer  partition metadata: schema, per-column encoding + offset,
//!         null counts, integer min/max statistics, the file-local
//!         string dictionary and resident-size estimates
//! [-20..) footer offset u64 | footer length u64 | magic "EXQF"
//! ```
//!
//! The trailer makes the footer reachable with two small reads, so the
//! spill layer answers `table_rows` and min/max pruning questions without
//! decoding a single data block. Data blocks are plain `std::fs` reads
//! here; the offsets-plus-trailer layout is exactly what an `mmap`-based
//! reader would want, without taking a platform dependency.
//!
//! Encodings per column kind:
//!
//! * `I64`/`F64`/`Str` — run-length runs `(null?, length, value)` when
//!   that is smaller, otherwise a plain value array followed by the
//!   packed null bitmap words. Run keys compare `f64` by bit pattern, so
//!   decode is exact.
//! * `Str` values are ids into a **file-local** dictionary (first
//!   appearance order) stored in the footer; the spill layer merges each
//!   file's dictionary into the dataset's global [`StringPool`] once at
//!   open time and hands decode a remap table, keeping the pool
//!   immutable during scans.
//! * `Bytes` — plain only: `rows + 1` offsets, the packed arena, the
//!   null bitmap.

use crate::column::{Bitmap, ColumnTable, IntStats, Slab, StringPool};
use crate::dataset::Partition;
use crate::error::QueryError;
use excovery_store::ColumnType;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// File extension of partition slab files (`part-000042.slab`).
pub const SLAB_FILE_EXTENSION: &str = "slab";

const SLAB_MAGIC: &[u8; 4] = b"EXQS";
const FOOTER_MAGIC: &[u8; 4] = b"EXQF";
const FORMAT_VERSION: u32 = 1;
const TRAILER_LEN: u64 = 8 + 8 + 4;

/// Per-column physical encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Plain value array plus packed null-bitmap words.
    Plain,
    /// Run-length runs of `(null flag, run length, value)`.
    Rle,
}

/// Footer metadata of one column block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Column type affinity.
    pub kind: ColumnType,
    /// Physical encoding of the data block.
    pub encoding: Encoding,
    /// Number of NULL cells.
    pub null_count: u64,
    /// Integer min/max over non-null cells (integer columns only).
    pub int_stats: Option<IntStats>,
    offset: u64,
    len: u64,
}

/// Footer metadata of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Per-column metadata, in schema order.
    pub columns: Vec<ColumnMeta>,
}

/// The decoded footer of a partition slab file: everything a reader
/// needs to prune, account for, or decode the partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionFooter {
    /// Partition column of the owning dataset (`RunID` by default).
    pub partition_column: String,
    /// Experiment (package) id the rows came from.
    pub experiment: String,
    /// Index of the package in ingest order.
    pub experiment_index: u64,
    /// Partition-column value; `None` for the meta partition.
    pub key: Option<i64>,
    /// File-local string dictionary, in first-appearance order.
    pub dict: Vec<String>,
    /// Per-table metadata.
    pub tables: Vec<TableMeta>,
    /// Total size of the encoded data blocks.
    pub encoded_bytes: u64,
    /// Estimated resident size of the decoded partition (platform-fixed
    /// arithmetic, so the estimate is deterministic everywhere).
    pub decoded_bytes: u64,
}

impl PartitionFooter {
    /// True if the partition holds rows of `table`.
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.iter().any(|t| t.name == table)
    }

    /// Row count of `table` in this partition, if present.
    pub fn table_rows(&self, table: &str) -> Option<u64> {
        self.tables.iter().find(|t| t.name == table).map(|t| t.rows)
    }

    /// Integer min/max stats plus null count for a column of `table` —
    /// the footer-level twin of `Partition::int_column_stats`, used for
    /// pruning without loading the partition.
    pub(crate) fn int_column_stats(
        &self,
        table: &str,
        column: &str,
    ) -> Option<(Option<IntStats>, usize)> {
        let t = self.tables.iter().find(|t| t.name == table)?;
        let c = t.columns.iter().find(|c| c.name == column)?;
        match c.kind {
            ColumnType::Integer => Some((c.int_stats, c.null_count as usize)),
            _ => None,
        }
    }
}

/// Deterministic estimate of a partition's decoded resident size, using
/// fixed per-element widths (8-byte lengths/offsets) so the number is
/// identical on every platform. The spill layer budgets with this.
pub(crate) fn partition_resident_bytes(p: &Partition) -> u64 {
    let mut total = 0u64;
    for t in p.tables.values() {
        let words = (t.rows as u64).div_ceil(64) * 8;
        for slab in &t.slabs {
            total += words
                + match slab {
                    Slab::I64 { vals, .. } => vals.len() as u64 * 8,
                    Slab::F64 { vals, .. } => vals.len() as u64 * 8,
                    Slab::Str { ids, .. } => ids.len() as u64 * 4,
                    Slab::Bytes { offsets, data, .. } => {
                        offsets.len() as u64 * 8 + data.len() as u64
                    }
                };
        }
    }
    total
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> QueryError {
    QueryError::Io(format!("{ctx} {}: {e}", path.display()))
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> QueryError {
    QueryError::Corrupt(format!("{}: {what}", path.display()))
}

// ---------------------------------------------------------------------
// Binary writer/reader helpers.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string too long for slab file"));
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a decoded byte section; every overrun is
/// a typed [`QueryError::Corrupt`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], QueryError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| QueryError::Corrupt(format!("truncated section: need {n} more bytes")))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, QueryError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, QueryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, QueryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, QueryError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, QueryError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| QueryError::Corrupt("non-UTF-8 string in footer".into()))
    }

    /// Guards a declared element count against the bytes that remain, so
    /// a hostile count cannot trigger a huge allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, QueryError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(QueryError::Corrupt(format!(
                "declared count {n} exceeds section size"
            )));
        }
        Ok(n)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------
// Column block encode/decode.
// ---------------------------------------------------------------------

/// One run of equal cells: `(is_null, length, value bits)`.
fn runs_of<T: PartialEq + Copy>(
    rows: usize,
    cell: impl Fn(usize) -> (bool, T),
) -> Vec<(bool, u32, T)> {
    let mut runs: Vec<(bool, u32, T)> = Vec::new();
    for i in 0..rows {
        let (null, v) = cell(i);
        match runs.last_mut() {
            Some((n, len, rv)) if *n == null && (*n || *rv == v) && *len < u32::MAX => *len += 1,
            _ => runs.push((null, 1, v)),
        }
    }
    runs
}

/// Encodes one slab, choosing the smaller of RLE and plain.
fn encode_slab(slab: &Slab, rows: usize, local_ids: Option<&[u32]>) -> (Encoding, Vec<u8>) {
    let words = rows.div_ceil(64);
    match slab {
        Slab::I64 { vals, nulls, .. } => {
            let runs = runs_of(rows, |i| (nulls.get(i), vals[i]));
            let rle_size = 8 + runs.iter().map(|(n, ..)| if *n { 5 } else { 13 }).sum::<usize>();
            if rle_size < rows * 8 + words * 8 {
                let mut out = Vec::with_capacity(rle_size);
                put_u64(&mut out, runs.len() as u64);
                for (null, len, v) in runs {
                    out.push(null as u8);
                    put_u32(&mut out, len);
                    if !null {
                        put_i64(&mut out, v);
                    }
                }
                (Encoding::Rle, out)
            } else {
                let mut out = Vec::with_capacity(rows * 8 + words * 8);
                for v in vals {
                    put_i64(&mut out, *v);
                }
                for w in nulls.words() {
                    put_u64(&mut out, *w);
                }
                (Encoding::Plain, out)
            }
        }
        Slab::F64 { vals, nulls } => {
            let runs = runs_of(rows, |i| (nulls.get(i), vals[i].to_bits()));
            let rle_size = 8 + runs.iter().map(|(n, ..)| if *n { 5 } else { 13 }).sum::<usize>();
            if rle_size < rows * 8 + words * 8 {
                let mut out = Vec::with_capacity(rle_size);
                put_u64(&mut out, runs.len() as u64);
                for (null, len, bits) in runs {
                    out.push(null as u8);
                    put_u32(&mut out, len);
                    if !null {
                        put_u64(&mut out, bits);
                    }
                }
                (Encoding::Rle, out)
            } else {
                let mut out = Vec::with_capacity(rows * 8 + words * 8);
                for v in vals {
                    put_u64(&mut out, v.to_bits());
                }
                for w in nulls.words() {
                    put_u64(&mut out, *w);
                }
                (Encoding::Plain, out)
            }
        }
        Slab::Str { nulls, .. } => {
            // `local_ids` already carries the file-local dictionary ids.
            let ids = local_ids.expect("string slab without local ids");
            let runs = runs_of(rows, |i| (nulls.get(i), ids[i]));
            let rle_size = 8 + runs.iter().map(|(n, ..)| if *n { 5 } else { 9 }).sum::<usize>();
            if rle_size < rows * 4 + words * 8 {
                let mut out = Vec::with_capacity(rle_size);
                put_u64(&mut out, runs.len() as u64);
                for (null, len, id) in runs {
                    out.push(null as u8);
                    put_u32(&mut out, len);
                    if !null {
                        put_u32(&mut out, id);
                    }
                }
                (Encoding::Rle, out)
            } else {
                let mut out = Vec::with_capacity(rows * 4 + words * 8);
                for id in ids {
                    put_u32(&mut out, *id);
                }
                for w in nulls.words() {
                    put_u64(&mut out, *w);
                }
                (Encoding::Plain, out)
            }
        }
        Slab::Bytes {
            offsets,
            data,
            nulls,
        } => {
            let mut out = Vec::with_capacity((rows + 1) * 8 + data.len() + words * 8);
            for o in offsets {
                put_u64(&mut out, *o as u64);
            }
            out.extend_from_slice(data);
            for w in nulls.words() {
                put_u64(&mut out, *w);
            }
            (Encoding::Plain, out)
        }
    }
}

/// Reads `rows` null-bitmap words off the tail of a plain block.
fn read_bitmap(r: &mut Reader<'_>, rows: usize) -> Result<Bitmap, QueryError> {
    let words = bulk_u64(r, rows.div_ceil(64))?;
    Ok(Bitmap::from_raw(words, rows))
}

/// Bulk-decodes `n` little-endian u64 values with one bounds check —
/// the hot path of plain blocks (`chunks_exact` vectorises cleanly,
/// where a per-value `Reader` round trip does not).
fn bulk_u64(r: &mut Reader<'_>, n: usize) -> Result<Vec<u64>, QueryError> {
    Ok(r.take(n.saturating_mul(8))?
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn bulk_i64(r: &mut Reader<'_>, n: usize) -> Result<Vec<i64>, QueryError> {
    Ok(r.take(n.saturating_mul(8))?
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

fn bulk_u32(r: &mut Reader<'_>, n: usize) -> Result<Vec<u32>, QueryError> {
    Ok(r.take(n.saturating_mul(4))?
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Decodes RLE runs: each run stores its value once; `on_run` fires
/// once per run with its length (`None` for null runs), so decoders can
/// append whole runs instead of paying a call per covered row.
fn decode_runs<T: Copy>(
    r: &mut Reader<'_>,
    rows: usize,
    mut read_value: impl FnMut(&mut Reader<'_>) -> Result<T, QueryError>,
    mut on_run: impl FnMut(Option<T>, usize),
) -> Result<(), QueryError> {
    let runs = r.count(5)?;
    let mut total = 0usize;
    for _ in 0..runs {
        let is_null = r.u8()? != 0;
        let len = r.u32()? as usize;
        total += len;
        if total > rows {
            return Err(QueryError::Corrupt("run lengths exceed row count".into()));
        }
        if is_null {
            on_run(None, len);
        } else {
            on_run(Some(read_value(r)?), len);
        }
    }
    if total != rows {
        return Err(QueryError::Corrupt(format!(
            "runs cover {total} rows, expected {rows}"
        )));
    }
    Ok(())
}

fn decode_slab(
    meta: &ColumnMeta,
    bytes: &[u8],
    rows: usize,
    remap: &[u32],
) -> Result<Slab, QueryError> {
    let mut r = Reader::new(bytes);
    let slab = match (meta.kind, meta.encoding) {
        (ColumnType::Integer, Encoding::Plain) => Slab::I64 {
            vals: bulk_i64(&mut r, rows)?,
            nulls: read_bitmap(&mut r, rows)?,
            stats: meta.int_stats,
        },
        (ColumnType::Integer, Encoding::Rle) => {
            let mut vals = Vec::with_capacity(rows);
            let mut nulls = Bitmap::new();
            decode_runs(
                &mut r,
                rows,
                |r| r.i64(),
                |v, len| {
                    vals.resize(vals.len() + len, v.unwrap_or(0));
                    nulls.push_n(v.is_none(), len);
                },
            )?;
            Slab::I64 {
                vals,
                nulls,
                stats: meta.int_stats,
            }
        }
        (ColumnType::Real, Encoding::Plain) => Slab::F64 {
            vals: bulk_u64(&mut r, rows)?
                .into_iter()
                .map(f64::from_bits)
                .collect(),
            nulls: read_bitmap(&mut r, rows)?,
        },
        (ColumnType::Real, Encoding::Rle) => {
            let mut vals = Vec::with_capacity(rows);
            let mut nulls = Bitmap::new();
            decode_runs(
                &mut r,
                rows,
                |r| r.u64(),
                |bits, len| {
                    vals.resize(vals.len() + len, f64::from_bits(bits.unwrap_or(0)));
                    nulls.push_n(bits.is_none(), len);
                },
            )?;
            Slab::F64 { vals, nulls }
        }
        (ColumnType::Text, enc) => {
            let global = |local: u32| -> Result<u32, QueryError> {
                remap
                    .get(local as usize)
                    .copied()
                    .ok_or_else(|| QueryError::Corrupt(format!("dangling dictionary id {local}")))
            };
            match enc {
                Encoding::Plain => {
                    let locals = bulk_u32(&mut r, rows)?;
                    let nulls = read_bitmap(&mut r, rows)?;
                    let mut ids = Vec::with_capacity(rows);
                    for (i, l) in locals.into_iter().enumerate() {
                        // Null rows carry id 0, which may dangle in an
                        // empty dictionary; they are never resolved.
                        ids.push(if nulls.get(i) { 0 } else { global(l)? });
                    }
                    Slab::Str { ids, nulls }
                }
                Encoding::Rle => {
                    let mut ids = Vec::with_capacity(rows);
                    let mut nulls = Bitmap::new();
                    decode_runs(
                        &mut r,
                        rows,
                        |r| global(r.u32()?),
                        |id, len| {
                            ids.resize(ids.len() + len, id.unwrap_or(0));
                            nulls.push_n(id.is_none(), len);
                        },
                    )?;
                    Slab::Str { ids, nulls }
                }
            }
        }
        (ColumnType::Blob, Encoding::Plain) => {
            let offsets: Vec<usize> = bulk_u64(&mut r, rows + 1)?
                .into_iter()
                .map(|v| v as usize)
                .collect();
            if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(QueryError::Corrupt("non-monotonic blob offsets".into()));
            }
            let data = r.take(offsets[rows])?.to_vec();
            Slab::Bytes {
                offsets,
                data,
                nulls: read_bitmap(&mut r, rows)?,
            }
        }
        (ColumnType::Blob, Encoding::Rle) => {
            return Err(QueryError::Corrupt("blob columns are never RLE".into()));
        }
    };
    if !r.done() {
        return Err(QueryError::Corrupt(format!(
            "{} trailing bytes after column block",
            bytes.len() - r.pos
        )));
    }
    Ok(slab)
}

// ---------------------------------------------------------------------
// Whole-file encode.
// ---------------------------------------------------------------------

/// Serializes one partition to `path` (written atomically). Strings are
/// re-keyed from the dataset's global pool into a file-local dictionary,
/// so slab files are self-contained and relocatable across datasets.
pub fn write_partition(
    path: &Path,
    partition_column: &str,
    p: &Partition,
    pool: &StringPool,
) -> Result<PartitionFooter, QueryError> {
    let mut dict: Vec<String> = Vec::new();
    let mut local_of: HashMap<u32, u32> = HashMap::new();
    let mut data: Vec<u8> = Vec::new();
    let mut tables: Vec<TableMeta> = Vec::new();
    for (name, t) in &p.tables {
        let mut columns = Vec::with_capacity(t.slabs.len());
        for (cname, slab) in t.names.iter().zip(&t.slabs) {
            // File-local dictionary ids, assigned in first-appearance
            // order (deterministic for a given partition).
            let local_ids: Option<Vec<u32>> = match slab {
                Slab::Str { ids, nulls } => Some(
                    ids.iter()
                        .enumerate()
                        .map(|(i, gid)| {
                            if nulls.get(i) {
                                return 0;
                            }
                            *local_of.entry(*gid).or_insert_with(|| {
                                let l = dict.len() as u32;
                                dict.push(pool.resolve(*gid).to_string());
                                l
                            })
                        })
                        .collect(),
                ),
                _ => None,
            };
            let (encoding, block) = encode_slab(slab, t.rows, local_ids.as_deref());
            let (kind, int_stats) = match slab {
                Slab::I64 { .. } => (ColumnType::Integer, slab.int_stats()),
                Slab::F64 { .. } => (ColumnType::Real, None),
                Slab::Str { .. } => (ColumnType::Text, None),
                Slab::Bytes { .. } => (ColumnType::Blob, None),
            };
            columns.push(ColumnMeta {
                name: cname.clone(),
                kind,
                encoding,
                null_count: slab.null_count() as u64,
                int_stats,
                offset: 8 + data.len() as u64,
                len: block.len() as u64,
            });
            data.extend_from_slice(&block);
        }
        tables.push(TableMeta {
            name: name.clone(),
            rows: t.rows as u64,
            columns,
        });
    }
    let footer = PartitionFooter {
        partition_column: partition_column.to_string(),
        experiment: p.experiment.clone(),
        experiment_index: p.experiment_index as u64,
        key: p.key,
        dict,
        tables,
        encoded_bytes: data.len() as u64,
        decoded_bytes: partition_resident_bytes(p),
    };

    let mut file = Vec::with_capacity(8 + data.len() + 256);
    file.extend_from_slice(SLAB_MAGIC);
    put_u32(&mut file, FORMAT_VERSION);
    file.extend_from_slice(&data);
    let footer_offset = file.len() as u64;
    encode_footer(&mut file, &footer);
    let footer_len = file.len() as u64 - footer_offset;
    put_u64(&mut file, footer_offset);
    put_u64(&mut file, footer_len);
    file.extend_from_slice(FOOTER_MAGIC);
    excovery_store::atomic_write(path, &file).map_err(|e| QueryError::Io(e.0))?;
    if excovery_obs::enabled() {
        excovery_obs::global()
            .counter("query_slab_bytes_written_total", &[])
            .add(file.len() as u64);
    }
    Ok(footer)
}

fn encode_footer(out: &mut Vec<u8>, f: &PartitionFooter) {
    put_str(out, &f.partition_column);
    put_str(out, &f.experiment);
    put_u64(out, f.experiment_index);
    match f.key {
        None => out.push(0),
        Some(k) => {
            out.push(1);
            put_i64(out, k);
        }
    }
    put_u64(out, f.encoded_bytes);
    put_u64(out, f.decoded_bytes);
    put_u64(out, f.dict.len() as u64);
    for s in &f.dict {
        put_str(out, s);
    }
    put_u64(out, f.tables.len() as u64);
    for t in &f.tables {
        put_str(out, &t.name);
        put_u64(out, t.rows);
        put_u64(out, t.columns.len() as u64);
        for c in &t.columns {
            put_str(out, &c.name);
            out.push(match c.kind {
                ColumnType::Integer => 0,
                ColumnType::Real => 1,
                ColumnType::Text => 2,
                ColumnType::Blob => 3,
            });
            out.push(match c.encoding {
                Encoding::Plain => 0,
                Encoding::Rle => 1,
            });
            put_u64(out, c.offset);
            put_u64(out, c.len);
            put_u64(out, c.null_count);
            match c.int_stats {
                None => out.push(0),
                Some(s) => {
                    out.push(1);
                    put_i64(out, s.min);
                    put_i64(out, s.max);
                }
            }
        }
    }
}

fn decode_footer(bytes: &[u8], path: &Path) -> Result<PartitionFooter, QueryError> {
    let mut r = Reader::new(bytes);
    let partition_column = r.str()?;
    let experiment = r.str()?;
    let experiment_index = r.u64()?;
    let key = match r.u8()? {
        0 => None,
        1 => Some(r.i64()?),
        t => return Err(corrupt(path, format!("bad key tag {t}"))),
    };
    let encoded_bytes = r.u64()?;
    let decoded_bytes = r.u64()?;
    let dict: Vec<String> = (0..r.count(4)?).map(|_| r.str()).collect::<Result<_, _>>()?;
    let ntables = r.count(1)?;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let rows = r.u64()?;
        let ncols = r.count(1)?;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = r.str()?;
            let kind = match r.u8()? {
                0 => ColumnType::Integer,
                1 => ColumnType::Real,
                2 => ColumnType::Text,
                3 => ColumnType::Blob,
                t => return Err(corrupt(path, format!("bad column kind {t}"))),
            };
            let encoding = match r.u8()? {
                0 => Encoding::Plain,
                1 => Encoding::Rle,
                t => return Err(corrupt(path, format!("bad encoding tag {t}"))),
            };
            let offset = r.u64()?;
            let len = r.u64()?;
            let null_count = r.u64()?;
            let int_stats = match r.u8()? {
                0 => None,
                1 => Some(IntStats {
                    min: r.i64()?,
                    max: r.i64()?,
                }),
                t => return Err(corrupt(path, format!("bad stats tag {t}"))),
            };
            columns.push(ColumnMeta {
                name: cname,
                kind,
                encoding,
                null_count,
                int_stats,
                offset,
                len,
            });
        }
        tables.push(TableMeta {
            name,
            rows,
            columns,
        });
    }
    if !r.done() {
        return Err(corrupt(path, "trailing bytes after footer"));
    }
    Ok(PartitionFooter {
        partition_column,
        experiment,
        experiment_index,
        key,
        dict,
        tables,
        encoded_bytes,
        decoded_bytes,
    })
}

// ---------------------------------------------------------------------
// Whole-file decode.
// ---------------------------------------------------------------------

/// Reads only the footer of a slab file: two small seeks, no data-block
/// IO. This is what makes stats-based pruning and byte budgeting free
/// for cold partitions.
pub fn read_footer(path: &Path) -> Result<PartitionFooter, QueryError> {
    let mut f = std::fs::File::open(path).map_err(|e| io_err("open", path, e))?;
    let size = f
        .metadata()
        .map_err(|e| io_err("stat", path, e))?
        .len();
    if size < 8 + TRAILER_LEN {
        return Err(corrupt(path, "file smaller than header + trailer"));
    }
    let mut head = [0u8; 8];
    f.read_exact(&mut head).map_err(|e| io_err("read", path, e))?;
    if &head[0..4] != SLAB_MAGIC {
        return Err(corrupt(path, "bad header magic"));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(corrupt(path, format!("unsupported format version {version}")));
    }
    f.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
        .map_err(|e| io_err("seek", path, e))?;
    let mut trailer = [0u8; TRAILER_LEN as usize];
    f.read_exact(&mut trailer)
        .map_err(|e| io_err("read", path, e))?;
    if &trailer[16..20] != FOOTER_MAGIC {
        return Err(corrupt(path, "bad trailer magic"));
    }
    let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    let footer_len = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
    if footer_offset
        .checked_add(footer_len)
        .is_none_or(|end| end > size - TRAILER_LEN)
    {
        return Err(corrupt(path, "footer span out of bounds"));
    }
    f.seek(SeekFrom::Start(footer_offset))
        .map_err(|e| io_err("seek", path, e))?;
    let mut buf = vec![0u8; footer_len as usize];
    f.read_exact(&mut buf).map_err(|e| io_err("read", path, e))?;
    decode_footer(&buf, path)
}

/// Decodes the partition body. `remap` maps file-local dictionary ids to
/// global [`StringPool`] ids (one entry per `footer.dict` string) — the
/// pool itself is not touched, so concurrent scans can share it freely.
pub fn read_partition(
    path: &Path,
    footer: &PartitionFooter,
    remap: &[u32],
) -> Result<Partition, QueryError> {
    read_partition_impl(path, footer, remap, None)
}

/// Projected decode: reads only the named `columns` of `table`. Other
/// tables are omitted entirely and unrequested columns of the target
/// table become empty placeholder slabs (right name, right kind, footer
/// stats, zero rows of data) — callers must only touch the columns they
/// asked for. The executor's plan context guarantees exactly that, which
/// is what lets a narrow aggregate over a wide warehouse skip most of
/// the decode work.
pub fn read_partition_projected(
    path: &Path,
    footer: &PartitionFooter,
    remap: &[u32],
    table: &str,
    columns: &[String],
) -> Result<Partition, QueryError> {
    read_partition_impl(path, footer, remap, Some((table, columns)))
}

/// An un-decoded stand-in slab for a projected-out column. Integer
/// placeholders keep the footer stats so pruning answers stay exact.
fn placeholder_slab(meta: &ColumnMeta) -> Slab {
    match meta.kind {
        ColumnType::Integer => Slab::I64 {
            vals: Vec::new(),
            nulls: Bitmap::new(),
            stats: meta.int_stats,
        },
        ColumnType::Real => Slab::F64 {
            vals: Vec::new(),
            nulls: Bitmap::new(),
        },
        ColumnType::Text => Slab::Str {
            ids: Vec::new(),
            nulls: Bitmap::new(),
        },
        ColumnType::Blob => Slab::Bytes {
            offsets: vec![0],
            data: Vec::new(),
            nulls: Bitmap::new(),
        },
    }
}

fn read_partition_impl(
    path: &Path,
    footer: &PartitionFooter,
    remap: &[u32],
    keep: Option<(&str, &[String])>,
) -> Result<Partition, QueryError> {
    if remap.len() != footer.dict.len() {
        return Err(corrupt(
            path,
            format!(
                "remap table has {} entries for {} dictionary strings",
                remap.len(),
                footer.dict.len()
            ),
        ));
    }
    let mut f = std::fs::File::open(path).map_err(|e| io_err("open", path, e))?;
    let size = f.metadata().map_err(|e| io_err("stat", path, e))?.len();
    let mut tables = BTreeMap::new();
    let mut read_total = 0u64;
    for t in &footer.tables {
        if let Some((target, _)) = keep {
            if t.name != target {
                continue;
            }
        }
        let rows = t.rows as usize;
        let mut names = Vec::with_capacity(t.columns.len());
        let mut slabs = Vec::with_capacity(t.columns.len());
        for c in &t.columns {
            if let Some((_, cols)) = keep {
                if !cols.iter().any(|n| n == &c.name) {
                    names.push(c.name.clone());
                    slabs.push(placeholder_slab(c));
                    continue;
                }
            }
            if c.offset.checked_add(c.len).is_none_or(|end| end > size) {
                return Err(corrupt(path, format!("column {:?} span out of bounds", c.name)));
            }
            f.seek(SeekFrom::Start(c.offset))
                .map_err(|e| io_err("seek", path, e))?;
            let mut buf = vec![0u8; c.len as usize];
            f.read_exact(&mut buf).map_err(|e| io_err("read", path, e))?;
            read_total += c.len;
            let slab = decode_slab(c, &buf, rows, remap)
                .map_err(|e| match e {
                    QueryError::Corrupt(msg) => {
                        corrupt(path, format!("column {:?}: {msg}", c.name))
                    }
                    other => other,
                })?;
            names.push(c.name.clone());
            slabs.push(slab);
        }
        let mut table = ColumnTable::new(names, slabs);
        table.rows = rows;
        tables.insert(t.name.clone(), table);
    }
    if excovery_obs::enabled() {
        excovery_obs::global()
            .counter("query_slab_bytes_read_total", &[])
            .add(read_total);
    }
    Ok(Partition {
        experiment: footer.experiment.clone(),
        experiment_index: footer.experiment_index as usize,
        key: footer.key,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Value;
    use crate::dataset::Dataset;
    use excovery_store::{Column, Database, SqlValue};

    fn sample_db() -> Database {
        use ColumnType::*;
        let mut db = Database::new();
        db.create_table(
            "Events",
            vec![
                Column::new("RunID", Integer),
                Column::new("Kind", Text),
                Column::new("Time", Real),
                Column::new("Payload", Blob),
            ],
        )
        .unwrap();
        for run in 0..3i64 {
            for k in 0..50i64 {
                db.insert(
                    "Events",
                    vec![
                        SqlValue::Int(run),
                        if k % 7 == 0 {
                            SqlValue::Null
                        } else {
                            SqlValue::Text(format!("kind-{}", k % 3))
                        },
                        SqlValue::Real(run as f64 + k as f64 / 10.0),
                        SqlValue::Blob(vec![run as u8; (k % 4) as usize]),
                    ],
                )
                .unwrap();
            }
        }
        db
    }

    /// Interns the footer dictionary into a pool, producing the remap.
    fn remap_into(pool: &mut StringPool, footer: &PartitionFooter) -> Vec<u32> {
        footer.dict.iter().map(|s| pool.intern(s)).collect()
    }

    #[test]
    fn partition_roundtrips_bit_for_bit() {
        let db = sample_db();
        let ds = Dataset::from_database(&db).unwrap();
        let dir = std::env::temp_dir().join(format!("slab-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (i, p) in ds.partitions.iter().enumerate() {
            let path = dir.join(format!("part-{i:06}.{SLAB_FILE_EXTENSION}"));
            let footer = write_partition(&path, "RunID", p, &ds.pool).unwrap();
            assert_eq!(footer.key, p.key);
            assert_eq!(footer.table_rows("Events"), Some(50));

            let mut pool = StringPool::new();
            let remap = remap_into(&mut pool, &footer);
            let back = read_partition(&path, &footer, &remap).unwrap();
            let (a, b) = (&p.tables["Events"], &back.tables["Events"]);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.names, b.names);
            for row in 0..a.rows {
                for col in 0..a.slabs.len() {
                    let (x, y) = (
                        a.slabs[col].value(row, &ds.pool),
                        b.slabs[col].value(row, &pool),
                    );
                    match (&x, &y) {
                        (Value::F64(l), Value::F64(r)) => assert_eq!(l.to_bits(), r.to_bits()),
                        _ => assert_eq!(x, y, "row {row} col {col}"),
                    }
                }
            }
            // Decoded stats survive for pruning.
            assert_eq!(
                back.tables["Events"].slabs[0].int_stats(),
                p.tables["Events"].slabs[0].int_stats()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footer_reads_answer_pruning_without_data_io() {
        let db = sample_db();
        let ds = Dataset::from_database(&db).unwrap();
        let dir = std::env::temp_dir().join(format!("slab-ft-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.slab");
        let written = write_partition(&path, "RunID", &ds.partitions[1], &ds.pool).unwrap();
        let footer = read_footer(&path).unwrap();
        assert_eq!(footer, written);
        assert_eq!(footer.partition_column, "RunID");
        assert!(footer.has_table("Events"));
        assert!(!footer.has_table("Nope"));
        let (stats, nulls) = footer.int_column_stats("Events", "RunID").unwrap();
        assert_eq!(stats, Some(IntStats { min: 1, max: 1 }));
        assert_eq!(nulls, 0);
        assert_eq!(footer.int_column_stats("Events", "Kind"), None);
        assert!(footer.encoded_bytes > 0);
        assert!(footer.decoded_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn constant_columns_choose_rle_and_shrink() {
        let db = sample_db();
        let ds = Dataset::from_database(&db).unwrap();
        let dir = std::env::temp_dir().join(format!("slab-rle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.slab");
        let footer = write_partition(&path, "RunID", &ds.partitions[0], &ds.pool).unwrap();
        let run_id = footer.tables[0]
            .columns
            .iter()
            .find(|c| c.name == "RunID")
            .unwrap();
        assert_eq!(run_id.encoding, Encoding::Rle, "constant RunID should RLE");
        assert!(
            footer.encoded_bytes < footer.decoded_bytes,
            "encoded {} !< decoded {}",
            footer.encoded_bytes,
            footer.decoded_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_are_typed_errors_not_panics() {
        let dir = std::env::temp_dir().join(format!("slab-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.slab");

        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(read_footer(&path), Err(QueryError::Corrupt(_))));

        let mut junk = Vec::new();
        junk.extend_from_slice(b"NOPE\x01\x00\x00\x00");
        junk.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &junk).unwrap();
        assert!(matches!(read_footer(&path), Err(QueryError::Corrupt(_))));

        // Valid header/trailer but a footer that lies about its span.
        let db = sample_db();
        let ds = Dataset::from_database(&db).unwrap();
        let good = dir.join("good.slab");
        write_partition(&good, "RunID", &ds.partitions[0], &ds.pool).unwrap();
        let mut bytes = std::fs::read(&good).unwrap();
        let n = bytes.len();
        bytes[n - 20..n - 12].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_footer(&path), Err(QueryError::Corrupt(_))));

        assert!(matches!(
            read_footer(&dir.join("missing.slab")),
            Err(QueryError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
