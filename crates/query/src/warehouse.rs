//! Warehouse aggregates as `Dataset` pipelines.
//!
//! The star-schema warehouse (`excovery_store::warehouse`) used to answer
//! its one canned question with a hand-rolled row scan; here the same
//! slice is a one-line columnar query, partitioned by `RunKey` so it
//! shards across workers. The result is bit-identical to the old
//! `mean_response_time_by_experiment` (the parity suite pins this).

use crate::agg::Agg;
use crate::column::Value;
use crate::dataset::Dataset;
use crate::error::QueryError;
use excovery_store::Database;
use std::collections::BTreeMap;

/// Mean response time (seconds) per experiment key of a warehouse built
/// by `excovery_store::warehouse::build_warehouse`.
///
/// Replacement for the deprecated
/// `excovery_store::warehouse::mean_response_time_by_experiment`.
pub fn mean_response_time_by_experiment(wh: &Database) -> Result<BTreeMap<i64, f64>, QueryError> {
    let ds = Dataset::builder()
        .partition_by("RunKey")
        .add_package("warehouse", wh)?
        .build();
    mean_response_time_by_experiment_on(&ds)
}

/// Same slice over an already-ingested warehouse dataset (partitioned by
/// `RunKey`), for callers issuing several queries against one snapshot.
pub fn mean_response_time_by_experiment_on(ds: &Dataset) -> Result<BTreeMap<i64, f64>, QueryError> {
    let frame = ds
        .scan("FactDiscovery")
        .group_by(["ExpKey"])
        .agg([Agg::mean("ResponseTimeNs").named("mean_ns")])
        .collect()?;
    let mut out = BTreeMap::new();
    for row in &frame.rows {
        let (Value::I64(key), Value::F64(mean_ns)) = (&row[0], &row[1]) else {
            // NULL keys or empty groups mirror the old path's skips.
            continue;
        };
        out.insert(*key, mean_ns / 1e9);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_store::records::{EventRow, ExperimentInfo, RunInfoRow};
    use excovery_store::schema::{create_level3_database, EE_VERSION};
    use excovery_store::warehouse::build_warehouse;

    fn package(name: &str, t_r_ns: i64) -> Database {
        let mut db = create_level3_database();
        ExperimentInfo {
            exp_xml: String::new(),
            ee_version: EE_VERSION.into(),
            name: name.into(),
            comment: String::new(),
        }
        .insert(&mut db)
        .unwrap();
        RunInfoRow {
            run_id: 0,
            node_id: "su".into(),
            start_time_ns: 0,
            time_diff_ns: 0,
        }
        .insert(&mut db)
        .unwrap();
        for (t, ev, param) in [
            (100, "sd_start_search", ""),
            (100 + t_r_ns, "sd_service_add", "service=sm"),
        ] {
            EventRow {
                run_id: 0,
                node_id: "su".into(),
                common_time_ns: t,
                event_type: ev.into(),
                parameter: param.into(),
            }
            .insert(&mut db)
            .unwrap();
        }
        db
    }

    #[test]
    fn matches_the_row_engine_slice_bit_for_bit() {
        let a = package("fast", 1_000_000);
        let b = package("slow", 9_000_000);
        let wh = build_warehouse(&[("fast", &a), ("slow", &b)]).unwrap();
        #[allow(deprecated)]
        let old = excovery_store::warehouse::mean_response_time_by_experiment(&wh).unwrap();
        let new = mean_response_time_by_experiment(&wh).unwrap();
        assert_eq!(old.len(), new.len());
        for (k, v) in &old {
            assert_eq!(
                v.to_bits(),
                new[k].to_bits(),
                "experiment {k}: {} vs {}",
                v,
                new[k]
            );
        }
    }

    #[test]
    fn empty_warehouse_yields_empty_map() {
        let wh = build_warehouse(&[]).unwrap();
        assert!(mean_response_time_by_experiment(&wh).unwrap().is_empty());
    }
}
