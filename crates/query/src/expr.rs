//! Filter expressions, mirroring the row engine's `Predicate` semantics.
//!
//! Comparisons follow `SqlValue::cmp_sql` exactly: a total order with
//! NULL < numbers < text < blob, `NULL = NULL` true, and mixed
//! integer/float comparing numerically. The executor binds an [`Expr`]
//! against one partition's column layout once, then evaluates the bound
//! form per row without name lookups or allocation.

use crate::column::{CellRef, ColumnTable, IntStats, StringPool, Value};
use crate::error::QueryError;
use std::cmp::Ordering;

/// What a partition knows about one integer column: min/max stats (absent
/// for all-null columns) plus the null count. `None` when the column is
/// missing or not integer-typed.
pub(crate) type ColumnStats = Option<(Option<IntStats>, usize)>;

/// Comparison operators of `Expr::cmp` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal under SQL ordering (`NULL = NULL` holds).
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A filter expression over one table's columns.
///
/// Built with [`col`] and [`lit`]:
///
/// ```
/// use excovery_query::{col, lit};
/// let f = col("RunID").eq(lit(3i64)).and(col("EventType").eq(lit("sd_service_add")));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named column reference.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Comparison of a column against a literal (either side).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Both sub-expressions hold.
    And(Box<Expr>, Box<Expr>),
    /// Either sub-expression holds.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// A column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// A literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// The NULL literal.
pub fn null() -> Expr {
    Expr::Lit(Value::Null)
}

impl Expr {
    fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ne, other)
    }

    /// `self < other` (SQL ordering: NULL sorts below every number).
    pub fn lt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Lt, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Le, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Gt, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        self.cmp(CmpOp::Ge, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Accumulates every column name the expression references, for the
    /// executor's projected-decode column set.
    pub(crate) fn collect_columns(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
        }
    }

    /// Binds the expression against one partition's column layout,
    /// resolving column names to slab indices and pre-interning string
    /// literals for the id-equality fast path.
    pub(crate) fn bind(
        &self,
        table_name: &str,
        table: &ColumnTable,
        pool: &StringPool,
    ) -> Result<BoundExpr, QueryError> {
        match self {
            Expr::Col(_) | Expr::Lit(_) => Err(QueryError::Unsupported(
                "bare column/literal used as a filter (compare it with eq/lt/…)".into(),
            )),
            Expr::Cmp(op, a, b) => {
                // Normalise to column-op-literal, flipping the operator
                // when the literal is on the left.
                let (name, value, op) = match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(c), Expr::Lit(v)) => (c, v, *op),
                    (Expr::Lit(v), Expr::Col(c)) => (c, v, flip(*op)),
                    _ => {
                        return Err(QueryError::Unsupported(
                            "comparison must be between a column and a literal".into(),
                        ))
                    }
                };
                let idx = table
                    .column_index(name)
                    .ok_or_else(|| QueryError::NoSuchColumn {
                        table: table_name.to_string(),
                        column: name.clone(),
                    })?;
                let lit = match value {
                    Value::Null => BoundLit::Null,
                    Value::I64(v) => BoundLit::Num(*v as f64),
                    Value::F64(v) => BoundLit::Num(*v),
                    Value::Str(s) => BoundLit::Str(s.clone(), pool.lookup(s)),
                    Value::Bytes(b) => BoundLit::Bytes(b.clone()),
                };
                Ok(BoundExpr::Cmp(op, idx, lit))
            }
            Expr::And(a, b) => Ok(BoundExpr::And(
                Box::new(a.bind(table_name, table, pool)?),
                Box::new(b.bind(table_name, table, pool)?),
            )),
            Expr::Or(a, b) => Ok(BoundExpr::Or(
                Box::new(a.bind(table_name, table, pool)?),
                Box::new(b.bind(table_name, table, pool)?),
            )),
            Expr::Not(e) => Ok(BoundExpr::Not(Box::new(e.bind(table_name, table, pool)?))),
        }
    }

    /// Conservative partition pruning: `true` only if NO row of a
    /// partition whose integer column stats are given by `stats` can
    /// match. `stats` returns `(min/max, null_count)` for integer
    /// columns it knows about and `None` otherwise.
    pub(crate) fn prunes(&self, stats: &dyn Fn(&str) -> ColumnStats) -> bool {
        match self {
            Expr::Cmp(op, a, b) => {
                let (name, value, op) = match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(c), Expr::Lit(v)) => (c, v, *op),
                    (Expr::Lit(v), Expr::Col(c)) => (c, v, flip(*op)),
                    _ => return false,
                };
                let Value::I64(v) = value else { return false };
                let v = *v;
                let Some((range, null_count)) = stats(name) else {
                    return false;
                };
                // NULL cells sort below every integer: they match Lt/Le
                // against any integer literal, and never match Eq/Gt/Ge.
                match (op, range) {
                    // All cells NULL: only Lt/Le/Ne match NULL rows.
                    (CmpOp::Eq | CmpOp::Gt | CmpOp::Ge, None) => true,
                    (CmpOp::Eq, Some(s)) => null_count == 0 && (v < s.min || v > s.max),
                    (CmpOp::Ne, Some(s)) => null_count == 0 && s.min == v && s.max == v,
                    (CmpOp::Lt, Some(s)) => null_count == 0 && s.min >= v,
                    (CmpOp::Le, Some(s)) => null_count == 0 && s.min > v,
                    (CmpOp::Gt, Some(s)) => s.max <= v,
                    (CmpOp::Ge, Some(s)) => s.max < v,
                    _ => false,
                }
            }
            Expr::And(a, b) => a.prunes(stats) || b.prunes(stats),
            Expr::Or(a, b) => a.prunes(stats) && b.prunes(stats),
            // `NOT e` could prune when e provably matches every row, but
            // the stats cannot show that; stay conservative.
            _ => false,
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// A literal bound for per-row comparison.
#[derive(Debug, Clone)]
pub(crate) enum BoundLit {
    Null,
    /// Integer and float literals both compare numerically (`cmp_sql`
    /// puts them in one kind class).
    Num(f64),
    /// String literal plus its pool id, if interned anywhere in the
    /// dataset (id equality is the Eq fast path).
    Str(String, Option<u32>),
    Bytes(Vec<u8>),
}

/// An [`Expr`] bound to one partition's column layout.
#[derive(Debug, Clone)]
pub(crate) enum BoundExpr {
    Cmp(CmpOp, usize, BoundLit),
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
}

/// Kind rank of `cmp_sql`'s total order: NULL < numbers < text < blob.
fn lit_kind(lit: &BoundLit) -> u8 {
    match lit {
        BoundLit::Null => 0,
        BoundLit::Num(_) => 1,
        BoundLit::Str(..) => 2,
        BoundLit::Bytes(_) => 3,
    }
}

fn cell_kind(cell: &CellRef<'_>) -> u8 {
    match cell {
        CellRef::Null => 0,
        CellRef::I64(_) | CellRef::F64(_) => 1,
        CellRef::Str(_) => 2,
        CellRef::Bytes(_) => 3,
    }
}

/// `cmp_sql(cell, literal)` over the columnar representation.
fn cmp_cell(cell: CellRef<'_>, lit: &BoundLit, pool: &StringPool) -> Ordering {
    let (ka, kb) = (cell_kind(&cell), lit_kind(lit));
    if ka != kb {
        return ka.cmp(&kb);
    }
    match (cell, lit) {
        (CellRef::Null, BoundLit::Null) => Ordering::Equal,
        (CellRef::I64(a), BoundLit::Num(b)) => (a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
        (CellRef::F64(a), BoundLit::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
        (CellRef::Str(id), BoundLit::Str(s, interned)) => {
            if *interned == Some(id) {
                Ordering::Equal
            } else {
                pool.resolve(id).cmp(s.as_str())
            }
        }
        (CellRef::Bytes(a), BoundLit::Bytes(b)) => a.cmp(b.as_slice()),
        _ => Ordering::Equal, // unreachable: kinds already matched
    }
}

impl BoundExpr {
    /// Evaluates the filter for row `i` of `table`.
    pub(crate) fn eval(&self, table: &ColumnTable, i: usize, pool: &StringPool) -> bool {
        match self {
            BoundExpr::Cmp(op, idx, lit) => {
                op.matches(cmp_cell(table.slabs[*idx].get(i), lit, pool))
            }
            BoundExpr::And(a, b) => a.eval(table, i, pool) && b.eval(table, i, pool),
            BoundExpr::Or(a, b) => a.eval(table, i, pool) || b.eval(table, i, pool),
            BoundExpr::Not(e) => !e.eval(table, i, pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{IntStats, Slab};

    fn table(pool: &mut StringPool) -> ColumnTable {
        let mut ids = Slab::empty_i64();
        let mut names = Slab::empty_str();
        for (id, name) in [(3i64, "a"), (5, "b"), (7, "a")] {
            ids.push_i64(id);
            names.push_str(pool.intern(name));
        }
        ids.push_null();
        names.push_null();
        let mut t = ColumnTable::new(vec!["Id".into(), "Name".into()], vec![ids, names]);
        t.rows = 4;
        t
    }

    fn matches(e: &Expr, t: &ColumnTable, pool: &StringPool) -> Vec<usize> {
        let b = e.bind("T", t, pool).unwrap();
        (0..t.rows).filter(|&i| b.eval(t, i, pool)).collect()
    }

    #[test]
    fn comparisons_follow_sql_ordering() {
        let mut pool = StringPool::new();
        let t = table(&mut pool);
        assert_eq!(matches(&col("Id").eq(lit(5i64)), &t, &pool), vec![1]);
        // NULL < every integer, so Lt matches the NULL row too.
        assert_eq!(matches(&col("Id").lt(lit(5i64)), &t, &pool), vec![0, 3]);
        assert_eq!(matches(&col("Id").gt(lit(3i64)), &t, &pool), vec![1, 2]);
        assert_eq!(matches(&col("Id").ge(lit(5i64)), &t, &pool), vec![1, 2]);
        assert_eq!(matches(&col("Id").ne(lit(3i64)), &t, &pool), vec![1, 2, 3]);
        // NULL = NULL holds (cmp_sql simplification).
        assert_eq!(matches(&col("Id").eq(null()), &t, &pool), vec![3]);
        // Integers sort below text.
        assert_eq!(
            matches(&col("Id").lt(lit("z")), &t, &pool),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn string_eq_uses_interned_ids_and_falls_back() {
        let mut pool = StringPool::new();
        let t = table(&mut pool);
        assert_eq!(matches(&col("Name").eq(lit("a")), &t, &pool), vec![0, 2]);
        // A never-interned literal matches nothing but still orders.
        assert_eq!(
            matches(&col("Name").eq(lit("zz")), &t, &pool),
            Vec::<usize>::new()
        );
        assert_eq!(matches(&col("Name").lt(lit("b")), &t, &pool), vec![0, 2, 3]);
    }

    #[test]
    fn boolean_connectives_and_flipped_literals() {
        let mut pool = StringPool::new();
        let t = table(&mut pool);
        let e = col("Id").gt(lit(3i64)).and(col("Name").eq(lit("a")));
        assert_eq!(matches(&e, &t, &pool), vec![2]);
        let e = col("Id").eq(lit(3i64)).or(col("Id").eq(lit(7i64)));
        assert_eq!(matches(&e, &t, &pool), vec![0, 2]);
        assert_eq!(
            matches(&col("Id").eq(lit(3i64)).not(), &t, &pool),
            vec![1, 2, 3]
        );
        // lit < col is col > lit.
        assert_eq!(matches(&lit(3i64).lt(col("Id")), &t, &pool), vec![1, 2]);
    }

    #[test]
    fn bad_shapes_are_typed_errors() {
        let mut pool = StringPool::new();
        let t = table(&mut pool);
        assert!(matches!(
            col("Nope").eq(lit(1i64)).bind("T", &t, &pool),
            Err(QueryError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            col("Id").bind("T", &t, &pool),
            Err(QueryError::Unsupported(_))
        ));
        assert!(matches!(
            col("Id").eq(col("Name")).bind("T", &t, &pool),
            Err(QueryError::Unsupported(_))
        ));
    }

    #[test]
    fn pruning_respects_null_semantics() {
        let some = |min: i64, max: i64, nulls: usize| {
            move |name: &str| (name == "Id").then_some((Some(IntStats { min, max }), nulls))
        };
        // Eq outside range prunes only when null-free.
        assert!(col("Id").eq(lit(99i64)).prunes(&some(1, 10, 0)));
        assert!(!col("Id").eq(lit(99i64)).prunes(&some(1, 10, 1)));
        assert!(!col("Id").eq(lit(5i64)).prunes(&some(1, 10, 0)));
        // Lt matches NULL cells, so it never prunes a column with nulls.
        assert!(col("Id").lt(lit(1i64)).prunes(&some(1, 10, 0)));
        assert!(!col("Id").lt(lit(1i64)).prunes(&some(1, 10, 3)));
        // Gt never matches NULLs; nulls don't block the prune.
        assert!(col("Id").gt(lit(10i64)).prunes(&some(1, 10, 5)));
        assert!(!col("Id").gt(lit(9i64)).prunes(&some(1, 10, 0)));
        // All-null column: Eq/Gt/Ge can never match.
        let all_null = |name: &str| (name == "Id").then_some((None, 4usize));
        assert!(col("Id").eq(lit(1i64)).prunes(&all_null));
        assert!(col("Id").gt(lit(1i64)).prunes(&all_null));
        assert!(!col("Id").lt(lit(1i64)).prunes(&all_null));
        // Connectives: And prunes if either side does, Or needs both.
        assert!(col("Id")
            .eq(lit(99i64))
            .and(col("Id").eq(lit(5i64)))
            .prunes(&some(1, 10, 0)));
        assert!(!col("Id")
            .eq(lit(99i64))
            .or(col("Id").eq(lit(5i64)))
            .prunes(&some(1, 10, 0)));
        // Unknown column/type: never prune.
        assert!(!col("Name").eq(lit("x")).prunes(&some(1, 10, 0)));
    }
}
