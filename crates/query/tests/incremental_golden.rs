//! Golden equivalence: a [`StandingQuery`] fed runs one at a time must
//! produce `Frame`s that are **bit-identical** (`f64::to_bits`-level)
//! to a cold one-shot scan of the same data — at every arrival step,
//! at worker counts 1 and 4, and whether the one-shot side scans a
//! resident dataset or a spilled one under a one-byte memory budget.

use std::path::PathBuf;

use excovery_query::{Dataset, Frame, StandingQuery, Value};
use excovery_rpc::{AggOp, AggSpec, CellValue, ExprSpec, FilterOp, PlanSpec};
use excovery_store::{Column, ColumnType, Database, SqlValue};

/// Deterministic, float-heavy synthetic run: latencies exercise the
/// full mantissa so any summation reorder would change the mean bits.
fn push_run(db: &mut Database, run: i64) {
    for i in 0..24i64 {
        let latency = ((run * 7919 + i * 104_729) % 100_003) as f64 / 97.0 + 1e-9 * i as f64;
        db.insert(
            "Facts",
            vec![
                SqlValue::Int(run),
                SqlValue::Text(format!("svc{}", (run + i) % 3)),
                SqlValue::Real(latency),
                if i % 7 == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Int(i * 3)
                },
            ],
        )
        .unwrap();
    }
}

fn db_with_runs(end: i64) -> Database {
    let mut db = Database::new();
    db.create_table(
        "Facts",
        vec![
            Column::new("RunID", ColumnType::Integer),
            Column::new("Service", ColumnType::Text),
            Column::new("Latency", ColumnType::Real),
            Column::new("Retries", ColumnType::Integer),
        ],
    )
    .unwrap();
    for run in 0..end {
        push_run(&mut db, run);
    }
    db
}

fn agg(op: AggOp, column: Option<&str>, name: Option<&str>) -> AggSpec {
    AggSpec {
        op,
        column: column.map(String::from),
        name: name.map(String::from),
        q: None,
    }
}

/// A plan covering every aggregate shape the engine merges: count,
/// exact integer sum, float mean, min/max and a quantile.
fn golden_plan() -> PlanSpec {
    PlanSpec {
        table: "Facts".into(),
        predicate: Some(ExprSpec::Cmp {
            column: "Service".into(),
            op: FilterOp::Ne,
            value: CellValue::Str("svc9".into()),
        }),
        group_by: vec!["RunID".into(), "Service".into()],
        aggs: vec![
            agg(AggOp::Count, None, None),
            agg(AggOp::Sum, Some("Retries"), Some("retries")),
            agg(AggOp::Mean, Some("Latency"), Some("mean_lat")),
            agg(AggOp::Min, Some("Latency"), Some("min_lat")),
            agg(AggOp::Max, Some("Latency"), Some("max_lat")),
            AggSpec {
                op: AggOp::Quantile,
                column: Some("Latency".into()),
                name: Some("p50_lat".into()),
                q: Some(0.5),
            },
        ],
        select: Vec::new(),
        sort_by: None,
    }
}

/// A row-mode plan (select + sort) so both execution modes are golden.
fn row_plan() -> PlanSpec {
    PlanSpec {
        table: "Facts".into(),
        predicate: None,
        group_by: Vec::new(),
        aggs: Vec::new(),
        select: vec!["RunID".into(), "Service".into(), "Latency".into()],
        sort_by: Some("Latency".into()),
    }
}

/// `f64::to_bits`-level equality: every cell compared exactly, floats
/// by their bit pattern (so `-0.0 != 0.0` and NaN payloads matter).
fn assert_bit_identical(a: &Frame, b: &Frame, what: &str) {
    assert_eq!(a.columns, b.columns, "{what}: column names");
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for (r, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        for (c, (va, vb)) in ra.iter().zip(rb).enumerate() {
            match (va, vb) {
                (Value::F64(x), Value::F64(y)) => {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{what}: row {r} col {c}: {x} vs {y}"
                    );
                }
                _ => assert_eq!(va, vb, "{what}: row {r} col {c}"),
            }
        }
    }
    assert_eq!(a.digest(), b.digest(), "{what}: digest");
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("golden-{tag}-{}", std::process::id()))
}

/// The golden property, all in one test so the `EXCOVERY_WORKERS`
/// override (process-global) cannot race a sibling test thread.
#[test]
fn incremental_frames_match_one_shot_bit_for_bit_at_workers_1_and_4() {
    const RUNS: i64 = 6;
    for workers in ["1", "4"] {
        std::env::set_var("EXCOVERY_WORKERS", workers);

        for plan in [golden_plan(), row_plan()] {
            let mut sq = StandingQuery::new(plan.clone());
            for end in 1..=RUNS {
                // Feed runs one at a time: the cumulative snapshot now
                // holds runs 0..end; the standing query scans only the
                // newly arrived one.
                let db = db_with_runs(end);
                let scanned = sq.ingest_package("exp", &db).unwrap();
                assert_eq!(scanned, 1, "exactly the new run is scanned");

                let standing = sq.frame().unwrap();
                let what = format!("workers={workers} end={end}");

                // Cold one-shot over the same snapshot, resident.
                let ds = Dataset::from_database(&db).unwrap();
                let one_shot = ds.run_spec(&plan).unwrap();
                assert_bit_identical(&standing, &one_shot, &what);

                // And spilled under a one-byte budget, so every
                // partition loads from its slab file and evicts.
                let dir = tmp(&format!("w{workers}-e{end}"));
                let spilled = ds.spill_to(&dir, Some(1)).unwrap();
                let from_disk = spilled.run_spec(&plan).unwrap();
                assert_bit_identical(&standing, &from_disk, &format!("{what} (spilled)"));
                drop(spilled);
                std::fs::remove_dir_all(&dir).ok();
            }
            assert_eq!(sq.refreshes(), RUNS as u64);
        }
    }
    std::env::remove_var("EXCOVERY_WORKERS");
}
