//! Property: **one plan vocabulary, lossless end-to-end.** Any `Scan`
//! builder chain lowers to a [`PlanSpec`] via `to_spec()`, survives the
//! actual XML-RPC wire (`pack_plan` → XML → `unpack_plan`), and
//! `run_spec` on the unpacked spec returns a `Frame` bit-identical to
//! `collect()` on the original builder — including every float bit.

use excovery_query::{col, lit, Agg, Dataset, Expr, Frame, Value};
use excovery_rpc::{pack_plan, unpack_plan, MethodCall};
use excovery_store::{Column, ColumnType, Database, SqlValue};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// A deterministic fixture warehouse: two experiments, float-heavy
/// measurements, a nullable column and repeated group keys.
fn fixture() -> Dataset {
    let mut db0 = Database::new();
    let mut db1 = Database::new();
    fill_package(&mut db0, 11);
    fill_package(&mut db1, 7001);
    Dataset::from_packages(&[("exp0", &db0), ("exp1", &db1)]).unwrap()
}

/// Plain data describing a builder chain, so strategies stay `'static`
/// while the borrowed `Scan` is assembled per case.
#[derive(Debug, Clone)]
enum AggShape {
    Count,
    SumRetries,
    MeanLatency,
    MinLatency,
    MaxLatency,
    Quantile(f64),
}

impl AggShape {
    fn build(&self) -> Agg {
        match self {
            AggShape::Count => Agg::count(),
            AggShape::SumRetries => Agg::sum("Retries").named("retries"),
            AggShape::MeanLatency => Agg::mean("Latency"),
            AggShape::MinLatency => Agg::min("Latency"),
            AggShape::MaxLatency => Agg::max("Latency"),
            AggShape::Quantile(q) => Agg::quantile("Latency", *q).named("q_lat"),
        }
    }
}

#[derive(Debug, Clone)]
enum Pred {
    RunCmp(u8, i64),
    ServiceEq(u8),
    LatencyLt(f64),
    RetriesNull(bool),
}

impl Pred {
    fn build(&self) -> Expr {
        match self {
            Pred::RunCmp(op, v) => {
                let c = col("RunID");
                let l = lit(*v);
                match op % 6 {
                    0 => c.eq(l),
                    1 => c.ne(l),
                    2 => c.lt(l),
                    3 => c.le(l),
                    4 => c.gt(l),
                    _ => c.ge(l),
                }
            }
            Pred::ServiceEq(n) => col("Service").eq(lit(format!("svc{}", n % 4))),
            Pred::LatencyLt(v) => col("Latency").lt(lit(*v)),
            Pred::RetriesNull(yes) => {
                let e = col("Retries").eq(excovery_query::null());
                if *yes {
                    e
                } else {
                    e.not()
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct PlanShape {
    filter: Vec<Pred>,
    any_or: bool,
    group_by: Vec<&'static str>,
    aggs: Vec<AggShape>,
    select: Vec<&'static str>,
    sort: Option<&'static str>,
    workers: usize,
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (any::<u8>(), -1i64..4).prop_map(|(op, v)| Pred::RunCmp(op, v)),
        any::<u8>().prop_map(Pred::ServiceEq),
        (0.0f64..40.0).prop_map(Pred::LatencyLt),
        any::<bool>().prop_map(Pred::RetriesNull),
    ]
}

fn agg_strategy() -> impl Strategy<Value = AggShape> {
    prop_oneof![
        Just(AggShape::Count),
        Just(AggShape::SumRetries),
        Just(AggShape::MeanLatency),
        Just(AggShape::MinLatency),
        Just(AggShape::MaxLatency),
        (0.0f64..1.0).prop_map(AggShape::Quantile),
    ]
}

const GROUP_COLS: &[&str] = &["RunID", "Service"];
const ROW_COLS: &[&str] = &["RunID", "Service", "Latency", "Retries"];

/// Interprets a bitmask as a subset of `cols`, preserving order.
fn subset(cols: &[&'static str], mask: u8) -> Vec<&'static str> {
    cols.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, c)| *c)
        .collect()
}

fn shape_strategy() -> impl Strategy<Value = PlanShape> {
    let filter = || (prop::collection::vec(pred_strategy(), 0..3), any::<bool>());
    let agg_mode = (
        filter(),
        any::<u8>(),
        prop::collection::vec(agg_strategy(), 1..4),
        1usize..5,
    )
        .prop_map(|((filter, any_or), group_mask, aggs, workers)| PlanShape {
            filter,
            any_or,
            group_by: subset(GROUP_COLS, group_mask),
            aggs,
            select: Vec::new(),
            sort: None,
            workers,
        });
    let row_mode = (
        filter(),
        1u8..16, // non-empty projection: empty select has no spec form
        prop::option::of(0usize..ROW_COLS.len()),
        1usize..5,
    )
        .prop_map(|((filter, any_or), select_mask, sort_idx, workers)| PlanShape {
            filter,
            any_or,
            group_by: Vec::new(),
            aggs: Vec::new(),
            select: subset(ROW_COLS, select_mask),
            sort: sort_idx.map(|i| ROW_COLS[i]),
            workers,
        });
    prop_oneof![agg_mode, row_mode]
}

fn apply<'d>(ds: &'d Dataset, shape: &PlanShape) -> excovery_query::Scan<'d> {
    let mut scan = ds.scan("Facts").workers(shape.workers);
    let mut preds = shape.filter.iter().map(Pred::build);
    if let Some(first) = preds.next() {
        let combined = preds.fold(first, |acc, p| {
            if shape.any_or {
                acc.or(p)
            } else {
                acc.and(p)
            }
        });
        scan = scan.filter(combined);
    }
    if !shape.group_by.is_empty() || !shape.aggs.is_empty() {
        scan = scan
            .group_by(shape.group_by.iter().copied())
            .agg(shape.aggs.iter().map(AggShape::build));
    } else {
        scan = scan.select(shape.select.iter().copied());
        if let Some(s) = shape.sort {
            scan = scan.sort_by(s);
        }
    }
    scan
}

fn assert_bits_equal(a: &Frame, b: &Frame) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.columns, &b.columns);
    prop_assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::F64(x), Value::F64(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                _ => prop_assert_eq!(va, vb),
            }
        }
    }
    prop_assert_eq!(a.digest(), b.digest());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// builder → `to_spec` → XML wire → `unpack_plan` → `run_spec`
    /// equals `collect()` on the original chain, bit for bit.
    #[test]
    fn builder_chains_roundtrip_the_wire_bit_identically(shape in shape_strategy()) {
        let ds = fixture();
        let scan = apply(&ds, &shape);
        let spec = scan.to_spec().unwrap();
        let direct = apply(&ds, &shape).collect().unwrap();

        // Through the actual XML-RPC wire format.
        let call = MethodCall::new("query.run", vec![pack_plan(&spec)]);
        let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
        let unpacked = unpack_plan(&rewired.params[0]).unwrap();
        prop_assert_eq!(&unpacked, &spec, "spec must survive the wire losslessly");

        let via_spec = ds.run_spec(&unpacked).unwrap();
        assert_bits_equal(&direct, &via_spec)?;
    }

    /// The spec also replays identically through a standing query fed
    /// the same packages, whatever the plan shape (aggregate or row).
    #[test]
    fn specs_replay_bit_identically_through_standing_queries(shape in shape_strategy()) {
        let ds = fixture();
        let spec = apply(&ds, &shape).to_spec().unwrap();
        let one_shot = ds.run_spec(&spec).unwrap();

        let mut sq = excovery_query::StandingQuery::new(spec);
        // Rebuild the identical packages and feed them in order.
        let mut db0 = Database::new();
        let mut db1 = Database::new();
        fill_package(&mut db0, 11);
        fill_package(&mut db1, 7001);
        sq.ingest_package("exp0", &db0).unwrap();
        sq.ingest_package("exp1", &db1).unwrap();
        assert_bits_equal(&one_shot, &sq.frame().unwrap())?;
    }
}

/// One fixture experiment package: float-heavy measurements, a
/// nullable column and repeated group keys, seeded by `base`.
fn fill_package(db: &mut Database, base: i64) {
    db.create_table(
        "Facts",
        vec![
            Column::new("RunID", ColumnType::Integer),
            Column::new("Service", ColumnType::Text),
            Column::new("Latency", ColumnType::Real),
            Column::new("Retries", ColumnType::Integer),
        ],
    )
    .unwrap();
    for run in 0..3i64 {
        for i in 0..10i64 {
            db.insert(
                "Facts",
                vec![
                    SqlValue::Int(run),
                    SqlValue::Text(format!("svc{}", (base + run + i) % 3)),
                    SqlValue::Real(((base * 31 + run * 17 + i * 13) % 997) as f64 / 31.0),
                    if i % 4 == 0 {
                        SqlValue::Null
                    } else {
                        SqlValue::Int(i)
                    },
                ],
            )
            .unwrap();
        }
    }
}
