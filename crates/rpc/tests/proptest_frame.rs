//! Property tests for the framed-TCP codec and the batch-frame codec:
//! arbitrary payloads survive the length-prefixed wire (including split
//! and partial reads), oversized frames are rejected at the 16 MiB cap,
//! and batch pack/unpack are inverse functions. Runs fully offline.

use excovery_obs::frame::{read_frame, write_frame};
use excovery_rpc::tcp::MAX_FRAME_BYTES;
use excovery_rpc::{
    pack_batch, pack_batch_response, unpack_batch, unpack_batch_response, BatchEntry, Fault,
    MethodCall, Value,
};
use proptest::prelude::*;
use std::io::{Cursor, Read};

/// A reader that hands out at most `chunk` bytes per `read` call — the
/// shape of a socket delivering a frame in arbitrary fragments.
struct Trickle<R> {
    inner: R,
    chunk: usize,
}

impl<R: Read> Read for Trickle<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = buf.len().min(self.chunk);
        self.inner.read(&mut buf[..cap])
    }
}

fn leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[ -~]{0,16}".prop_map(Value::String),
        (-1e9f64..1e9).prop_map(Value::Double),
    ]
}

fn entry_strategy() -> impl Strategy<Value = BatchEntry> {
    (
        "[a-z][a-z0-9_]{0,8}",
        "[a-z][a-z0-9_]{0,12}",
        prop::collection::vec(leaf_value(), 0..3),
        "[0-9]{1,4}:[0-9]{1,2}:[0-9]{1,6}",
    )
        .prop_map(|(node_id, method, params, idem_key)| BatchEntry {
            node_id,
            method,
            params,
            idem_key,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any payload sequence round-trips frame for frame, ending in a
    /// clean EOF at the frame boundary.
    #[test]
    fn frames_roundtrip(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..512), 1..5)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap().unwrap(), p);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// Fragmented delivery — down to one byte per read — never corrupts
    /// a frame; `read_frame` reassembles exactly what was written.
    #[test]
    fn split_and_partial_reads_reassemble(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..17,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut trickle = Trickle { inner: Cursor::new(buf), chunk };
        prop_assert_eq!(read_frame(&mut trickle).unwrap().unwrap(), payload);
        prop_assert!(read_frame(&mut trickle).unwrap().is_none());
    }

    /// A length prefix above the cap is rejected before any allocation,
    /// whatever follows the header.
    #[test]
    fn oversized_lengths_are_rejected_at_the_cap(
        excess in 1u32..1024,
        trailer in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut buf = (MAX_FRAME_BYTES + excess).to_be_bytes().to_vec();
        buf.extend_from_slice(&trailer);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        prop_assert!(err.to_string().contains("exceeds"), "{}", err);
    }

    /// Truncating a written frame anywhere inside the payload surfaces as
    /// an error (or, cut inside the header, as clean EOF) — never a
    /// short, silently-wrong payload.
    #[test]
    fn truncated_frames_never_yield_wrong_payloads(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let mut cursor = Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut cursor) {
            Ok(Some(got)) => prop_assert_eq!(got, payload),
            Ok(None) => prop_assert!(cut < 4, "EOF only inside the header"),
            Err(_) => prop_assert!(cut >= 4, "errors only inside the payload"),
        }
    }

    /// `unpack_batch` is the left inverse of `pack_batch`, both directly
    /// and through the actual XML wire format.
    #[test]
    fn batch_pack_unpack_inverse(entries in prop::collection::vec(entry_strategy(), 0..5)) {
        let call = pack_batch(&entries);
        prop_assert_eq!(unpack_batch(&call).unwrap(), entries.clone());
        let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
        prop_assert_eq!(unpack_batch(&rewired).unwrap(), entries);
    }

    /// `unpack_batch_response` is the left inverse of
    /// `pack_batch_response` for any mix of per-node values and faults.
    #[test]
    fn batch_response_pack_unpack_inverse(
        results in prop::collection::vec(
            (
                "[a-z][a-z0-9_]{0,8}",
                prop_oneof![
                    leaf_value().prop_map(Ok),
                    (any::<i32>(), "[ -~]{0,24}")
                        .prop_map(|(code, msg)| Err(Fault::new(code, msg))),
                ],
            ),
            0..5,
        )
    ) {
        let packed = pack_batch_response(&results);
        prop_assert_eq!(unpack_batch_response(&packed).unwrap(), results);
    }

    /// The batch unpacker is total over arbitrary parameter lists: it
    /// rejects malformed entries with a fault, never a panic.
    #[test]
    fn batch_unpack_total(params in prop::collection::vec(leaf_value(), 0..4)) {
        let call = MethodCall::new("__batch", params);
        let _ = unpack_batch(&call);
    }
}

// ---- job.* codec properties ------------------------------------------------

use excovery_rpc::{
    pack_frame, pack_plan, pack_results_page, pack_status, pack_status_list, pack_submit,
    pack_submit_response, unpack_frame, unpack_plan, unpack_results_page, unpack_status,
    unpack_status_list, unpack_submit, unpack_submit_response, AggOp, AggSpec, CellValue, Channel,
    ExprSpec, FilterOp, JobState, JobStatus, PlanSpec, ResultsPage, ServerRegistry, SubmitRequest,
    WireFrame, JOB_SUBMIT,
};

/// Re-serializes a value through the actual XML wire format.
fn through_xml(v: &Value) -> Value {
    let call = MethodCall::new("x", vec![v.clone()]);
    let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
    rewired.params.into_iter().next().unwrap()
}

fn job_state_strategy() -> impl Strategy<Value = JobState> {
    prop_oneof![
        Just(JobState::Queued),
        Just(JobState::Running),
        Just(JobState::Completed),
        Just(JobState::Failed),
    ]
}

fn status_strategy() -> impl Strategy<Value = JobStatus> {
    (
        (any::<u64>(), "[a-z]{1,8}", "[ -~]{0,16}", "[a-z_]{1,12}"),
        (
            job_state_strategy(),
            any::<u64>(),
            any::<u64>(),
            prop::option::of(any::<u64>()),
            prop::option::of("[ -~]{0,24}"),
        ),
    )
        .prop_map(
            |(
                (job_id, tenant, name, preset),
                (state, runs_total, runs_completed, digest, error),
            )| {
                JobStatus {
                    job_id,
                    tenant,
                    name,
                    preset,
                    state,
                    runs_total,
                    runs_completed,
                    digest,
                    error,
                }
            },
        )
}

fn cell_strategy() -> impl Strategy<Value = CellValue> {
    prop_oneof![
        Just(CellValue::Null),
        any::<i64>().prop_map(CellValue::I64),
        (-1e9f64..1e9).prop_map(CellValue::F64),
        "[ -~]{0,12}".prop_map(CellValue::Str),
        prop::collection::vec(any::<u8>(), 0..16).prop_map(CellValue::Bytes),
    ]
}

fn frame_strategy() -> impl Strategy<Value = WireFrame> {
    (1usize..4).prop_flat_map(|width| {
        (
            prop::collection::vec("[a-z]{1,6}", width..width + 1),
            prop::collection::vec(
                prop::collection::vec(cell_strategy(), width..width + 1),
                0..4,
            ),
        )
            .prop_map(|(columns, rows)| WireFrame { columns, rows })
    })
}

fn cmp_op_strategy() -> impl Strategy<Value = FilterOp> {
    prop_oneof![
        Just(FilterOp::Eq),
        Just(FilterOp::Ne),
        Just(FilterOp::Lt),
        Just(FilterOp::Le),
        Just(FilterOp::Gt),
        Just(FilterOp::Ge),
    ]
}

/// Arbitrary predicate trees: comparison leaves composed with
/// `and`/`or`/`not` up to a few levels deep.
fn expr_strategy() -> impl Strategy<Value = ExprSpec> {
    let leaf = ("[A-Za-z]{1,8}", cmp_op_strategy(), cell_strategy())
        .prop_map(|(column, op, value)| ExprSpec::Cmp { column, op, value });
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(ExprSpec::not),
        ]
    })
}

fn agg_strategy() -> impl Strategy<Value = AggSpec> {
    let plain = (
        prop_oneof![
            Just(AggOp::Count),
            Just(AggOp::Sum),
            Just(AggOp::Mean),
            Just(AggOp::Min),
            Just(AggOp::Max),
        ],
        prop::option::of("[A-Za-z]{1,8}"),
        prop::option::of("[a-z]{1,8}"),
    )
        .prop_map(|(op, column, name)| AggSpec {
            op,
            column,
            name,
            q: None,
        });
    let quantile = (
        prop::option::of("[A-Za-z]{1,8}"),
        prop::option::of("[a-z]{1,8}"),
        0.0f64..1.0,
    )
        .prop_map(|(column, name, q)| AggSpec {
            op: AggOp::Quantile,
            column,
            name,
            q: Some(q),
        });
    prop_oneof![4 => plain, 1 => quantile]
}

fn plan_strategy() -> impl Strategy<Value = PlanSpec> {
    (
        "[A-Za-z]{1,10}",
        prop::option::of(expr_strategy()),
        prop::collection::vec("[A-Za-z]{1,6}", 0..3),
        prop::collection::vec(agg_strategy(), 0..3),
        prop::collection::vec("[A-Za-z]{1,6}", 0..3),
        prop::option::of("[A-Za-z]{1,6}"),
    )
        .prop_map(
            |(table, predicate, group_by, aggs, select, sort_by)| PlanSpec {
                table,
                predicate,
                group_by,
                aggs,
                select,
                sort_by,
            },
        )
}

fn submit_strategy() -> impl Strategy<Value = SubmitRequest> {
    ("[a-z]{1,8}", "[a-z_]{1,12}", "[ -~]{0,48}", "[ -~]{1,24}").prop_map(
        |(tenant, preset, description_xml, submit_key)| SubmitRequest {
            tenant,
            preset,
            description_xml,
            submit_key,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `unpack_submit` is the left inverse of `pack_submit` through the
    /// real XML wire format.
    #[test]
    fn submit_pack_unpack_inverse(req in submit_strategy()) {
        let call = pack_submit(&req);
        prop_assert_eq!(unpack_submit(&call).unwrap(), req.clone());
        let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
        prop_assert_eq!(unpack_submit(&rewired).unwrap(), req);
    }

    /// Submit responses round-trip, including ids above `i32` (they
    /// travel as decimal strings, not XML-RPC ints).
    #[test]
    fn submit_response_pack_unpack_inverse(job_id in any::<u64>(), created in any::<bool>()) {
        let v = through_xml(&pack_submit_response(job_id, created));
        prop_assert_eq!(unpack_submit_response(&v).unwrap(), (job_id, created));
    }

    /// `unpack_status` is the left inverse of `pack_status` through XML,
    /// for every state and optional member combination.
    #[test]
    fn status_pack_unpack_inverse(status in status_strategy()) {
        let v = through_xml(&pack_status(&status));
        prop_assert_eq!(unpack_status(&v).unwrap(), status);
    }

    /// Status listings round-trip element for element, order preserved.
    #[test]
    fn status_list_pack_unpack_inverse(list in prop::collection::vec(status_strategy(), 0..4)) {
        let v = through_xml(&pack_status_list(&list));
        prop_assert_eq!(unpack_status_list(&v).unwrap(), list);
    }

    /// Results pages (status, byte range, binary chunk) round-trip; the
    /// chunk rides Base64 and must come back byte-identical, and the
    /// range fields survive as full-width u64 decimal strings.
    #[test]
    fn results_page_pack_unpack_inverse(
        status in status_strategy(),
        chunk in prop::collection::vec(any::<u8>(), 0..256),
        total in any::<u64>(),
        offset in any::<u64>(),
    ) {
        let r = ResultsPage { status, total, offset, chunk };
        let v = through_xml(&pack_results_page(&r));
        prop_assert_eq!(unpack_results_page(&v).unwrap(), r);
    }

    /// Query frames round-trip cell for cell through XML — including
    /// finite doubles, which use the shortest-roundtrip format.
    #[test]
    fn frame_pack_unpack_inverse(frame in frame_strategy()) {
        let v = through_xml(&pack_frame(&frame));
        prop_assert_eq!(unpack_frame(&v).unwrap(), frame);
    }

    /// Query plans round-trip through XML for every operator, optional
    /// filter and aggregate shape.
    #[test]
    fn plan_pack_unpack_inverse(plan in plan_strategy()) {
        let v = through_xml(&pack_plan(&plan));
        prop_assert_eq!(unpack_plan(&v).unwrap(), plan);
    }

    /// End-to-end dedup property: against a real registry behind the
    /// XML channel, any submission sequence yields one JobId per
    /// distinct (tenant, submit_key), `created` exactly on its first
    /// occurrence, and repeats always return the original id.
    #[test]
    fn resubmission_with_the_same_key_returns_the_original_job_id(
        requests in prop::collection::vec(
            (
                "[ab]",          // few tenants → frequent collisions
                "[a-c]{1}",      // few keys → frequent collisions
                "[ -~]{0,16}",
            ),
            1..12,
        )
    ) {
        let mut registry = ServerRegistry::new();
        {
            use std::collections::BTreeMap;
            let mut assigned: BTreeMap<(String, String), u64> = BTreeMap::new();
            let mut next_id = 1u64;
            registry.register(JOB_SUBMIT, move |params| {
                let call = MethodCall::new(JOB_SUBMIT, params.to_vec());
                let req = unpack_submit(&call)?;
                let slot = (req.tenant.clone(), req.submit_key.clone());
                let (id, created) = match assigned.get(&slot) {
                    Some(&id) => (id, false),
                    None => {
                        let id = next_id;
                        next_id += 1;
                        assigned.insert(slot, id);
                        (id, true)
                    }
                };
                Ok(pack_submit_response(id, created))
            });
        }
        let channel = Channel::new(registry);
        let mut expected: std::collections::BTreeMap<(String, String), u64> =
            std::collections::BTreeMap::new();
        for (tenant, key, xml) in requests {
            let req = SubmitRequest {
                tenant: tenant.clone(),
                preset: "grid_default".into(),
                description_xml: xml,
                submit_key: key.clone(),
            };
            let v = channel.call(JOB_SUBMIT, pack_submit(&req).params).unwrap();
            let (id, created) = unpack_submit_response(&v).unwrap();
            match expected.get(&(tenant.clone(), key.clone())) {
                Some(&original) => {
                    prop_assert_eq!(id, original, "repeat must return the original id");
                    prop_assert!(!created);
                }
                None => {
                    prop_assert!(created, "first occurrence must create");
                    expected.insert((tenant, key), id);
                }
            }
        }
    }
}
