//! Property tests for the framed-TCP codec and the batch-frame codec:
//! arbitrary payloads survive the length-prefixed wire (including split
//! and partial reads), oversized frames are rejected at the 16 MiB cap,
//! and batch pack/unpack are inverse functions. Runs fully offline.

use excovery_obs::frame::{read_frame, write_frame};
use excovery_rpc::tcp::MAX_FRAME_BYTES;
use excovery_rpc::{
    pack_batch, pack_batch_response, unpack_batch, unpack_batch_response, BatchEntry, Fault,
    MethodCall, Value,
};
use proptest::prelude::*;
use std::io::{Cursor, Read};

/// A reader that hands out at most `chunk` bytes per `read` call — the
/// shape of a socket delivering a frame in arbitrary fragments.
struct Trickle<R> {
    inner: R,
    chunk: usize,
}

impl<R: Read> Read for Trickle<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = buf.len().min(self.chunk);
        self.inner.read(&mut buf[..cap])
    }
}

fn leaf_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[ -~]{0,16}".prop_map(Value::String),
        (-1e9f64..1e9).prop_map(Value::Double),
    ]
}

fn entry_strategy() -> impl Strategy<Value = BatchEntry> {
    (
        "[a-z][a-z0-9_]{0,8}",
        "[a-z][a-z0-9_]{0,12}",
        prop::collection::vec(leaf_value(), 0..3),
        "[0-9]{1,4}:[0-9]{1,2}:[0-9]{1,6}",
    )
        .prop_map(|(node_id, method, params, idem_key)| BatchEntry {
            node_id,
            method,
            params,
            idem_key,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any payload sequence round-trips frame for frame, ending in a
    /// clean EOF at the frame boundary.
    #[test]
    fn frames_roundtrip(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..512), 1..5)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap().unwrap(), p);
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// Fragmented delivery — down to one byte per read — never corrupts
    /// a frame; `read_frame` reassembles exactly what was written.
    #[test]
    fn split_and_partial_reads_reassemble(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..17,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut trickle = Trickle { inner: Cursor::new(buf), chunk };
        prop_assert_eq!(read_frame(&mut trickle).unwrap().unwrap(), payload);
        prop_assert!(read_frame(&mut trickle).unwrap().is_none());
    }

    /// A length prefix above the cap is rejected before any allocation,
    /// whatever follows the header.
    #[test]
    fn oversized_lengths_are_rejected_at_the_cap(
        excess in 1u32..1024,
        trailer in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut buf = (MAX_FRAME_BYTES + excess).to_be_bytes().to_vec();
        buf.extend_from_slice(&trailer);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        prop_assert!(err.to_string().contains("exceeds"), "{}", err);
    }

    /// Truncating a written frame anywhere inside the payload surfaces as
    /// an error (or, cut inside the header, as clean EOF) — never a
    /// short, silently-wrong payload.
    #[test]
    fn truncated_frames_never_yield_wrong_payloads(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let mut cursor = Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut cursor) {
            Ok(Some(got)) => prop_assert_eq!(got, payload),
            Ok(None) => prop_assert!(cut < 4, "EOF only inside the header"),
            Err(_) => prop_assert!(cut >= 4, "errors only inside the payload"),
        }
    }

    /// `unpack_batch` is the left inverse of `pack_batch`, both directly
    /// and through the actual XML wire format.
    #[test]
    fn batch_pack_unpack_inverse(entries in prop::collection::vec(entry_strategy(), 0..5)) {
        let call = pack_batch(&entries);
        prop_assert_eq!(unpack_batch(&call).unwrap(), entries.clone());
        let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
        prop_assert_eq!(unpack_batch(&rewired).unwrap(), entries);
    }

    /// `unpack_batch_response` is the left inverse of
    /// `pack_batch_response` for any mix of per-node values and faults.
    #[test]
    fn batch_response_pack_unpack_inverse(
        results in prop::collection::vec(
            (
                "[a-z][a-z0-9_]{0,8}",
                prop_oneof![
                    leaf_value().prop_map(Ok),
                    (any::<i32>(), "[ -~]{0,24}")
                        .prop_map(|(code, msg)| Err(Fault::new(code, msg))),
                ],
            ),
            0..5,
        )
    ) {
        let packed = pack_batch_response(&results);
        prop_assert_eq!(unpack_batch_response(&packed).unwrap(), results);
    }

    /// The batch unpacker is total over arbitrary parameter lists: it
    /// rejects malformed entries with a fault, never a panic.
    #[test]
    fn batch_unpack_total(params in prop::collection::vec(leaf_value(), 0..4)) {
        let call = MethodCall::new("__batch", params);
        let _ = unpack_batch(&call);
    }
}
