//! Chaos schedule + idempotent dispatch, end to end over both transports.
//!
//! The properties exercised here are the foundation the engine-level
//! `chaos_equivalence` suite builds on: the fault schedule is replayable
//! from its seed alone, and a bounded retry loop with a stable idempotency
//! key executes every logical call exactly once server-side — even when
//! responses are lost after execution.

use excovery_rpc::{
    fault_at, Channel, ChaosOptions, ChaosTransport, FaultAction, NodeProxy, RpcError,
    ServerRegistry, TcpOptions, TcpRpcServer, TcpTransport, Value,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn counting_registry() -> (ServerRegistry, Arc<AtomicUsize>) {
    let executed = Arc::new(AtomicUsize::new(0));
    let e2 = Arc::clone(&executed);
    let mut reg = ServerRegistry::new();
    reg.register("ping", move |params| {
        e2.fetch_add(1, Ordering::SeqCst);
        Ok(params
            .first()
            .cloned()
            .unwrap_or_else(|| Value::str("pong")))
    });
    (reg, executed)
}

/// Retries one logical call with a fixed idempotency key until it passes —
/// the shape of the engine's `retry_call`.
fn retry_until_ok(proxy: &NodeProxy, key: &str, budget: u32) -> Value {
    let mut last: Option<RpcError> = None;
    for _ in 0..budget {
        match proxy.call_idempotent("ping", vec![Value::str(key)], key) {
            Ok(v) => return v,
            Err(e) => {
                assert!(e.is_retryable(), "non-transient chaos error: {e}");
                last = Some(e);
            }
        }
    }
    panic!("retry budget exhausted; last error: {last:?}");
}

#[test]
fn same_seed_injects_identical_fault_sequences() {
    let opts = ChaosOptions {
        seed: 404,
        fault_rate: 0.6,
        horizon_calls: 64,
        crash_windows: vec![(8, 12)],
        max_delay_ms: 1,
    };
    let observed: Vec<Vec<bool>> = (0..2)
        .map(|_| {
            let (reg, _) = counting_registry();
            let t = ChaosTransport::new(Channel::new(reg), opts.clone());
            let proxy = NodeProxy::new("n0", t);
            (0..96)
                .map(|_| proxy.call("ping", vec![]).is_ok())
                .collect()
        })
        .collect();
    assert_eq!(observed[0], observed[1]);
    // And the outcome sequence matches the pure schedule: a call fails
    // iff its index draws anything but Pass/Delay.
    let predicted: Vec<bool> = (0..96)
        .map(|i| {
            matches!(
                fault_at(&opts, i),
                FaultAction::Pass | FaultAction::Delay(_)
            )
        })
        .collect();
    assert_eq!(observed[0], predicted);
}

#[test]
fn idempotent_retry_executes_each_logical_call_once() {
    // Full fault rate below the horizon: every early call draws a fault,
    // including DropResponse (server executes, response lost). The retry
    // loop reuses the key, so the dedup cache must absorb the duplicates.
    let opts = ChaosOptions {
        seed: 7,
        fault_rate: 1.0,
        horizon_calls: 24,
        crash_windows: Vec::new(),
        max_delay_ms: 0,
    };
    assert!(opts.eventually_clears());
    let (reg, executed) = counting_registry();
    let t = ChaosTransport::new(Channel::new(reg), opts);
    let proxy = NodeProxy::new("n0", t);
    for logical in 0..10 {
        let key = format!("0:0:{logical}");
        let v = retry_until_ok(&proxy, &key, 64);
        assert_eq!(v, Value::str(&key));
    }
    assert_eq!(
        executed.load(Ordering::SeqCst),
        10,
        "dedup must hide retries and lost responses from the handler"
    );
}

#[test]
fn crash_window_is_survivable_with_sufficient_budget() {
    let opts = ChaosOptions {
        seed: 11,
        fault_rate: 0.0,
        horizon_calls: 0,
        crash_windows: vec![(1, 9)],
        max_delay_ms: 0,
    };
    let budget = opts.longest_crash_window() as u32 + 2;
    let (reg, executed) = counting_registry();
    let t = ChaosTransport::new(Channel::new(reg), opts);
    let proxy = NodeProxy::new("n0", t);
    retry_until_ok(&proxy, "a", 64); // call #0: passes
    retry_until_ok(&proxy, "b", budget); // calls #1..: rides out the window
    assert_eq!(executed.load(Ordering::SeqCst), 2);
}

#[test]
fn chaos_and_dedup_compose_over_tcp() {
    let (reg, executed) = counting_registry();
    let server = TcpRpcServer::bind("127.0.0.1:0", Arc::new(Mutex::new(reg))).unwrap();
    let addr = server.local_addr();
    let opts = ChaosOptions {
        seed: 21,
        fault_rate: 0.9,
        horizon_calls: 30,
        crash_windows: Vec::new(),
        max_delay_ms: 0,
    };
    let tcp = TcpTransport::connect(addr, TcpOptions::default()).unwrap();
    let proxy = NodeProxy::new("n0", ChaosTransport::new(tcp, opts));
    for logical in 0..6 {
        let key = format!("tcp:{logical}");
        assert_eq!(retry_until_ok(&proxy, &key, 64), Value::str(&key));
    }
    assert_eq!(executed.load(Ordering::SeqCst), 6);
    proxy.close();
    server.shutdown();
}
