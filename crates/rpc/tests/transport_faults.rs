//! Fault-path and concurrency tests for the pluggable control channel.
//!
//! The in-memory [`Channel`] can not lose bytes or stall, so everything
//! here drives the TCP backend against real sockets: deadlines that
//! actually elapse, servers that vanish mid-call, peers that speak
//! garbage, and the parallel fan-out the engine relies on.

use excovery_rpc::tcp::{TcpOptions, TcpRpcServer, TcpTransport};
use excovery_rpc::{Fault, NodeProxy, RpcError, ServerRegistry, Value};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shared(reg: ServerRegistry) -> Arc<Mutex<ServerRegistry>> {
    Arc::new(Mutex::new(reg))
}

fn fast_opts() -> TcpOptions {
    TcpOptions {
        connect_timeout: Duration::from_millis(500),
        call_timeout: Duration::from_millis(250),
        max_connect_attempts: 2,
        backoff_initial: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
    }
}

/// A raw TCP peer that accepts one connection, optionally reads the
/// request frame, runs `respond` to produce raw bytes (empty = close
/// without answering), and exits.
fn raw_peer(respond: impl FnOnce() -> Vec<u8> + Send + 'static) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Read the request frame so the client is committed to this call.
        let mut header = [0u8; 4];
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_be_bytes(header) as usize;
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let reply = respond();
        if !reply.is_empty() {
            let _ = stream.write_all(&reply);
            let _ = stream.flush();
        }
        // Dropping the stream closes the connection.
    });
    addr
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(payload);
    out
}

#[test]
fn per_call_deadline_fires_on_a_stalled_server() {
    // The peer reads the request and then never answers.
    let addr = raw_peer(|| {
        std::thread::sleep(Duration::from_secs(5));
        Vec::new()
    });
    let proxy = NodeProxy::new("stalled", TcpTransport::connect(addr, fast_opts()).unwrap());
    let started = Instant::now();
    match proxy.call("ping", vec![]) {
        Err(RpcError::Timeout { method, after_ms }) => {
            assert_eq!(method, "ping");
            assert_eq!(after_ms, 250);
        }
        other => panic!("expected timeout, got {other:?}"),
    }
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(200) && waited < Duration::from_secs(2),
        "deadline should bound the wait: {waited:?}"
    );
}

#[test]
fn server_disconnect_mid_call_is_reported_and_retryable() {
    // The peer reads the request and hangs up without replying.
    let addr = raw_peer(Vec::new);
    let proxy = NodeProxy::new("flaky", TcpTransport::connect(addr, fast_opts()).unwrap());
    let err = proxy.call("ping", vec![]).unwrap_err();
    assert!(
        matches!(err, RpcError::Disconnected(_)),
        "expected disconnect, got {err:?}"
    );
    assert!(err.is_retryable());
    assert!(!err.is_server_side());
}

#[test]
fn malformed_response_frame_is_a_codec_error() {
    let addr = raw_peer(|| frame(b"this is not an xml-rpc response"));
    let proxy = NodeProxy::new("garbled", TcpTransport::connect(addr, fast_opts()).unwrap());
    let err = proxy.call("ping", vec![]).unwrap_err();
    assert!(matches!(err, RpcError::Codec(_)), "got {err:?}");
    assert!(!err.is_retryable());
}

#[test]
fn oversized_length_prefix_is_a_codec_error() {
    // A corrupt header claiming a 2 GiB frame must be rejected up front,
    // not allocated.
    let addr = raw_peer(|| 0x8000_0000u32.to_be_bytes().to_vec());
    let proxy = NodeProxy::new("corrupt", TcpTransport::connect(addr, fast_opts()).unwrap());
    let err = proxy.call("ping", vec![]).unwrap_err();
    assert!(matches!(err, RpcError::Codec(_)), "got {err:?}");
}

#[test]
fn reconnect_after_disconnect_resumes_service() {
    // First server answers one call, then is dropped; a second server on
    // a fresh port cannot help (the address is fixed), so instead restart
    // on the *same* port to exercise the lazy reconnect path.
    let reg = shared({
        let mut r = ServerRegistry::new();
        r.register("ping", |_| Ok(Value::str("pong")));
        r
    });
    let server = TcpRpcServer::bind("127.0.0.1:0", Arc::clone(&reg)).unwrap();
    let addr = server.local_addr();
    let proxy = NodeProxy::new("n0", TcpTransport::connect(addr, fast_opts()).unwrap());
    assert_eq!(proxy.call("ping", vec![]).unwrap(), Value::str("pong"));

    drop(server);
    // Connection threads notice shutdown within their 50 ms read timeout;
    // wait that out so the next call really hits a dead peer.
    std::thread::sleep(Duration::from_millis(200));
    let err = proxy.call("ping", vec![]).unwrap_err();
    assert!(err.is_retryable(), "got {err:?}");

    // Rebind the same address and call again: the transport reconnects.
    let server = TcpRpcServer::bind(addr, reg).unwrap();
    assert_eq!(proxy.call("ping", vec![]).unwrap(), Value::str("pong"));
    drop(server);
}

#[test]
fn two_proxies_share_one_registry_concurrently() {
    let reg = shared({
        let mut r = ServerRegistry::new();
        r.register("add", |params| match params {
            [Value::Int(a), Value::Int(b)] => Ok(Value::Int(a + b)),
            _ => Err(Fault::new(1, "bad args")),
        });
        r
    });
    let server = TcpRpcServer::bind("127.0.0.1:0", reg).unwrap();
    let addr = server.local_addr();

    let make_proxy = |id: &str| {
        NodeProxy::new(
            id,
            TcpTransport::connect(addr, TcpOptions::default()).unwrap(),
        )
    };
    let a = make_proxy("a");
    let b = make_proxy("b");

    std::thread::scope(|scope| {
        for proxy in [&a, &b] {
            scope.spawn(move || {
                for i in 0..100i32 {
                    let v = proxy
                        .call("add", vec![Value::Int(i), Value::Int(1)])
                        .unwrap();
                    assert_eq!(v, Value::Int(i + 1));
                }
            });
        }
    });
}

/// Serial-vs-parallel dispatch over eight nodes with slow procedures.
///
/// This is the micro-version of the engine's lifecycle fan-out: eight
/// real TCP servers whose handler sleeps ~20 ms. Dispatching serially
/// costs the sum (≥160 ms); a `thread::scope` fan-out costs roughly the
/// max. The generous assertion bound keeps the test robust on loaded CI.
#[test]
fn parallel_fanout_beats_serial_dispatch_on_eight_nodes() {
    const NODES: usize = 8;
    const WORK: Duration = Duration::from_millis(20);

    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    for i in 0..NODES {
        let reg = shared({
            let mut r = ServerRegistry::new();
            r.register("slow_ping", move |_| {
                std::thread::sleep(WORK);
                Ok(Value::Int(i as i32))
            });
            r
        });
        let server = TcpRpcServer::bind("127.0.0.1:0", reg).unwrap();
        proxies.push(NodeProxy::new(
            format!("node{i}"),
            TcpTransport::connect(server.local_addr(), TcpOptions::default()).unwrap(),
        ));
        servers.push(server);
    }

    let serial_start = Instant::now();
    for p in &proxies {
        p.call("slow_ping", vec![]).unwrap();
    }
    let serial = serial_start.elapsed();

    let parallel_start = Instant::now();
    std::thread::scope(|scope| {
        for p in &proxies {
            scope.spawn(move || p.call("slow_ping", vec![]).unwrap());
        }
    });
    let parallel = parallel_start.elapsed();

    eprintln!("8-node dispatch: serial {serial:?}, parallel {parallel:?}");
    assert!(
        serial >= WORK * NODES as u32,
        "serial pays the sum: {serial:?}"
    );
    assert!(
        parallel < serial / 2,
        "parallel fan-out should at least halve the wall clock: \
         serial {serial:?} vs parallel {parallel:?}"
    );
}
