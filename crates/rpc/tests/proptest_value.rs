//! Property tests for the XML-RPC codec: arbitrary value trees round-trip
//! through the full wire format.

use excovery_rpc::{MethodCall, MethodResponse, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[ -~]{0,24}".prop_map(Value::String),
        (-1e12f64..1e12).prop_map(Value::Double),
        "[0-9]{8}T[0-9]{2}:[0-9]{2}:[0-9]{2}".prop_map(Value::DateTime),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::Base64),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,10}", inner), 0..4)
                .prop_map(Value::Struct),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A method call with arbitrary parameters survives the wire.
    #[test]
    fn method_call_roundtrip(
        method in "[a-z][a-z0-9_.]{0,20}",
        params in prop::collection::vec(value_strategy(), 0..4),
    ) {
        let call = MethodCall::new(method, params);
        let xml = call.to_xml();
        prop_assert_eq!(MethodCall::from_xml(&xml).unwrap(), call);
    }

    /// A success response with an arbitrary value survives the wire.
    #[test]
    fn response_roundtrip(v in value_strategy()) {
        let r = MethodResponse::Success(v);
        let xml = r.to_xml();
        prop_assert_eq!(MethodResponse::from_xml(&xml).unwrap(), r);
    }

    /// Fault responses with arbitrary text survive the wire.
    #[test]
    fn fault_roundtrip(code in any::<i32>(), msg in "[ -~]{0,40}") {
        let r = MethodResponse::Fault(excovery_rpc::Fault::new(code, msg));
        let xml = r.to_xml();
        prop_assert_eq!(MethodResponse::from_xml(&xml).unwrap(), r);
    }

    /// The parser rejects or accepts arbitrary input without panicking.
    #[test]
    fn parser_total(s in "\\PC{0,200}") {
        let _ = MethodCall::from_xml(&s);
        let _ = MethodResponse::from_xml(&s);
    }
}
