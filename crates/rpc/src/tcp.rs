//! Framed TCP backend for the control channel.
//!
//! The prototype runs XML-RPC over a dedicated management network
//! (§IV-A1); this module provides the equivalent real-socket transport so
//! the same [`ServerRegistry`] a NodeManager exposes in-process can be
//! served across machines. Frames are length-prefixed XML documents:
//!
//! ```text
//! +----------------+---------------------+
//! | u32 BE length  |  XML-RPC document   |
//! +----------------+---------------------+
//! ```
//!
//! The client side ([`TcpTransport`]) adds what the in-memory channel
//! never needed: a per-call deadline, reconnection with bounded
//! exponential backoff, and error classification (timeout vs. disconnect
//! vs. codec) so the engine can decide whether a run is recoverable.

use crate::error::RpcError;
use crate::message::{MethodCall, MethodResponse};
use crate::transport::{ServerRegistry, Transport};
use excovery_obs::frame::{read_frame, write_frame};
use parking_lot::Mutex;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on a single frame; anything larger is a codec error (a
/// corrupt length prefix would otherwise ask for gigabytes). The framing
/// itself lives in [`excovery_obs::frame`] so the metrics scrape
/// endpoint shares the exact plumbing; this re-export keeps the
/// historical path.
pub use excovery_obs::frame::MAX_FRAME_BYTES;

// ---- server ----------------------------------------------------------------

/// A running TCP RPC server: accept loop plus one thread per connection,
/// all dispatching into a shared [`ServerRegistry`].
///
/// Dropping the handle (or calling [`TcpRpcServer::shutdown`]) stops the
/// accept loop and closes every open connection.
pub struct TcpRpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpRpcServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `registry`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<Mutex<ServerRegistry>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("rpc-accept-{addr}"))
            .spawn(move || accept_loop(listener, registry, stop2))?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and asks connection threads to wind down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for TcpRpcServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<Mutex<ServerRegistry>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let _ = std::thread::Builder::new()
                    .name("rpc-conn".into())
                    .spawn(move || serve_connection(stream, registry, stop));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    registry: Arc<Mutex<ServerRegistry>>,
    stop: Arc<AtomicBool>,
) {
    // A short read timeout lets the thread notice shutdown promptly while
    // staying blocked on idle clients the rest of the time.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // client closed
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => return,
        };
        let request_xml = String::from_utf8_lossy(&request);
        let response_xml = registry.lock().handle_wire(&request_xml);
        if write_frame(&mut stream, response_xml.as_bytes()).is_err() {
            return;
        }
    }
}

// ---- client ----------------------------------------------------------------

/// Client-side policy knobs of the TCP transport.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Deadline for one connection attempt.
    pub connect_timeout: Duration,
    /// Deadline for one complete call (request write + response read,
    /// including any reconnection time spent before the request went out).
    pub call_timeout: Duration,
    /// Connection attempts per call before giving up.
    pub max_connect_attempts: u32,
    /// First retry delay of the exponential backoff.
    pub backoff_initial: Duration,
    /// Backoff ceiling; doubling stops here.
    pub backoff_max: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            call_timeout: Duration::from_secs(10),
            max_connect_attempts: 4,
            backoff_initial: Duration::from_millis(25),
            backoff_max: Duration::from_millis(800),
        }
    }
}

/// TCP client end of the control channel to one node.
///
/// One connection is kept per transport; the [`NodeProxy`] lock already
/// serializes callers, and a failed or timed-out call drops the
/// connection so the next call starts from a clean reconnect instead of
/// reading a stale response.
///
/// [`NodeProxy`]: crate::transport::NodeProxy
pub struct TcpTransport {
    addr: SocketAddr,
    opts: TcpOptions,
    stream: Mutex<Option<TcpStream>>,
    closed: AtomicBool,
    obs: crate::transport::ClientObs,
}

impl TcpTransport {
    /// Resolves `addr` and eagerly establishes the first connection (with
    /// the configured backoff), so endpoint misconfiguration surfaces at
    /// setup rather than mid-experiment.
    pub fn connect(addr: impl ToSocketAddrs, opts: TcpOptions) -> Result<Self, RpcError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| RpcError::Io(format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| RpcError::Io("address resolved to nothing".into()))?;
        let transport = Self {
            addr,
            opts,
            stream: Mutex::new(None),
            closed: AtomicBool::new(false),
            obs: crate::transport::ClientObs::new("tcp"),
        };
        let stream = transport.reconnect()?;
        *transport.stream.lock() = Some(stream);
        Ok(transport)
    }

    /// Connects with bounded exponential backoff.
    fn reconnect(&self) -> Result<TcpStream, RpcError> {
        let mut delay = self.opts.backoff_initial;
        let mut last_err = String::new();
        for attempt in 0..self.opts.max_connect_attempts {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(self.opts.backoff_max);
            }
            match TcpStream::connect_timeout(&self.addr, self.opts.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(e) => last_err = e.to_string(),
            }
        }
        Err(RpcError::Disconnected(format!(
            "{} unreachable after {} attempts: {last_err}",
            self.addr, self.opts.max_connect_attempts
        )))
    }

    /// One request/response exchange on an established stream, honouring
    /// the remaining per-call budget via the socket read timeout.
    fn exchange(
        &self,
        stream: &mut TcpStream,
        request: &[u8],
        deadline: Instant,
        method: &str,
    ) -> Result<MethodResponse, RpcError> {
        write_frame(stream, request).map_err(|e| RpcError::Disconnected(e.to_string()))?;
        self.obs.add_bytes_sent(request.len());
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(self.timeout_error(method));
        }
        stream
            .set_read_timeout(Some(remaining))
            .map_err(|e| RpcError::Io(e.to_string()))?;
        match read_frame(stream) {
            Ok(Some(payload)) => {
                self.obs.add_bytes_received(payload.len());
                let xml = String::from_utf8_lossy(&payload);
                MethodResponse::from_xml(&xml).map_err(|e| RpcError::Codec(e.to_string()))
            }
            Ok(None) => Err(RpcError::Disconnected(
                "server closed the connection mid-call".into(),
            )),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Err(self.timeout_error(method))
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => Err(RpcError::Codec(e.to_string())),
            Err(e) => Err(RpcError::Disconnected(e.to_string())),
        }
    }

    fn timeout_error(&self, method: &str) -> RpcError {
        RpcError::Timeout {
            method: method.to_string(),
            after_ms: self.opts.call_timeout.as_millis() as u64,
        }
    }
}

impl Transport for TcpTransport {
    fn call(&self, call: &MethodCall) -> Result<MethodResponse, RpcError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(RpcError::Disconnected("transport closed".into()));
        }
        let started = self.obs.start();
        let request = call.to_xml().into_bytes();
        let deadline = Instant::now() + self.opts.call_timeout;
        let mut guard = self.stream.lock();
        // Reconnect lazily if a previous call tore the stream down.
        if guard.is_none() {
            match self.reconnect() {
                Ok(stream) => *guard = Some(stream),
                Err(e) => {
                    let result = Err(e);
                    self.obs.observe_call(started, &result);
                    return result;
                }
            }
        }
        let stream = guard.as_mut().expect("stream just ensured");
        let result = self.exchange(stream, &request, deadline, &call.method);
        self.obs.observe_call(started, &result);
        if let Err(e) = &result {
            // After a failed exchange the stream state is unknown (a late
            // response could desynchronize framing): drop it so the next
            // call reconnects. Server-side faults arrive as *successful*
            // exchanges and keep the connection.
            if e.is_retryable() || matches!(e, RpcError::Codec(_)) {
                *guard = None;
            }
        }
        result
    }

    fn endpoint(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        *self.stream.lock() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NodeProxy;
    use crate::value::Value;
    use crate::Fault;

    fn registry() -> Arc<Mutex<ServerRegistry>> {
        let mut reg = ServerRegistry::new();
        reg.register("echo", |params| Ok(Value::Array(params.to_vec())));
        reg.register("fail", |_| Err(Fault::new(7, "nope")));
        Arc::new(Mutex::new(reg))
    }

    #[test]
    fn roundtrip_over_real_sockets() {
        let server = TcpRpcServer::bind("127.0.0.1:0", registry()).unwrap();
        let t = TcpTransport::connect(server.local_addr(), TcpOptions::default()).unwrap();
        let proxy = NodeProxy::new("n0", t);
        assert!(proxy.endpoint().starts_with("tcp://127.0.0.1:"));
        let v = proxy
            .call("echo", vec![Value::Int(41), Value::str("x")])
            .unwrap();
        assert_eq!(v, Value::Array(vec![Value::Int(41), Value::str("x")]));
        // Faults travel as responses, not transport errors.
        match proxy.call("fail", vec![]) {
            Err(RpcError::Fault(f)) => assert_eq!(f.code, 7),
            other => panic!("{other:?}"),
        }
        // The connection survived the fault.
        proxy.call("echo", vec![]).unwrap();
    }

    #[test]
    fn connect_to_nothing_reports_disconnected_after_backoff() {
        // Port 1 on localhost: nothing listens there.
        let opts = TcpOptions {
            max_connect_attempts: 3,
            backoff_initial: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
            connect_timeout: Duration::from_millis(200),
            ..TcpOptions::default()
        };
        let started = Instant::now();
        match TcpTransport::connect("127.0.0.1:1", opts) {
            Err(RpcError::Disconnected(m)) => {
                assert!(m.contains("3 attempts"), "{m}");
            }
            Err(other) => panic!("{other:?}"),
            Ok(_) => panic!("connected to a closed port"),
        }
        // Backoff is bounded: 1 + 2 ms of sleeping, not seconds.
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
