//! Non-blocking multiplexed dispatcher for the master's per-phase fan-out.
//!
//! The threaded dispatcher spawns one scoped thread per NodeManager per
//! lifecycle phase — fine at 8 nodes, a wall at 1k+. The [`Reactor`]
//! replaces that with a hand-rolled readiness loop on the *calling*
//! thread: every node link (in-memory registry or framed-TCP socket) is
//! driven as a small state machine, TCP sockets run non-blocking with
//! partial-write/partial-read resumption, and at most one wire operation
//! is in flight per link at a time (mirroring `NodeProxy`'s per-node call
//! lock). No poll/mio, no extra threads: one sweep services every link
//! that is ready and sleeps only when nothing can progress.
//!
//! Links come in two shapes:
//!
//! * **direct** — one NodeManager per link; each call travels as an
//!   ordinary idempotent single-method frame, byte-identical to what
//!   `NodeProxy::call_idempotent` would send. In-memory links skip the
//!   XML wire format entirely and dispatch against the registry, which is
//!   safe because idempotency/dedup live in `ServerRegistry::dispatch`
//!   itself.
//! * **relay** — a sub-master ([`crate::batch::relay_registry`]) owning a
//!   group of NodeManagers; all currently-ready member calls are packed
//!   into one [`crate::batch::BATCH_METHOD`] frame per sweep. Entries keep
//!   their per-node `__idem` keys, so a retried batch re-runs only the
//!   entries that never executed.
//!
//! Retry and chaos semantics match the threaded path call for call: the
//! per-node chaos verdict is drawn from the same pure
//! [`fault_at`] schedule (one draw per attempt, injected error strings
//! identical to `ChaosTransport`), retries are bounded with the same
//! exponential backoff shape, and each retry reuses the call's idempotency
//! key so a replayed request is exactly-once per node. Backoffs and chaos
//! delays are deadlines inside the loop, not sleeps — other nodes keep
//! making progress while one backs off.

use crate::batch::{pack_batch, unpack_batch_response, BatchEntry};
use crate::chaos::{fault_at, ChaosOptions, FaultAction};
use crate::error::RpcError;
use crate::message::{MethodCall, MethodResponse};
use crate::tcp::{TcpOptions, MAX_FRAME_BYTES};
use crate::transport::{response_to_result, ServerRegistry, IDEMPOTENCY_MEMBER};
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where a reactor link terminates: an in-process registry or a framed-TCP
/// server address (connected lazily, reconnected after failures).
pub enum ReactorEndpoint {
    /// Shared server registry, dispatched synchronously in-process.
    Memory(Arc<Mutex<ServerRegistry>>),
    /// Framed-TCP server; `opts` supplies connect/call deadlines and the
    /// reconnect backoff, exactly as for `TcpTransport`.
    Tcp {
        /// Server socket address.
        addr: SocketAddr,
        /// Deadline and reconnect-backoff knobs.
        opts: TcpOptions,
    },
}

/// Retry budget for one [`Reactor::dispatch`], mirroring the master's
/// `RetryPolicy`: bounded attempts, exponential backoff between them, only
/// [`RpcError::is_retryable`] errors retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff_initial: Duration,
    /// Backoff ceiling (doubling is capped here).
    pub backoff_max: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_initial: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
        }
    }
}

impl RetryConfig {
    /// A single attempt, no retries.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// One logical control call: target node, method, parameters and the
/// idempotency key reused across every retry of this call.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCall {
    /// Platform id of the target NodeManager.
    pub node_id: String,
    /// Procedure name.
    pub method: String,
    /// Parameters, without the trailing idempotency struct.
    pub params: Vec<Value>,
    /// Idempotency key (`{run_id}:{epoch}:{seq}`).
    pub idem_key: String,
}

/// Result of one [`NodeCall`] after retries, aligned with the input order
/// of [`Reactor::dispatch`].
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Platform id the call was addressed to.
    pub node_id: String,
    /// Final result after the retry budget.
    pub result: Result<Value, RpcError>,
    /// Transient failures absorbed by retry for this call.
    pub retries: u64,
    /// Wall time from dispatch start to this call's completion.
    pub duration_ns: u64,
}

struct ChaosState {
    opts: ChaosOptions,
    next_call: u64,
}

enum Link {
    Memory(Arc<Mutex<ServerRegistry>>),
    Tcp {
        addr: SocketAddr,
        opts: TcpOptions,
        stream: Option<TcpStream>,
    },
}

struct Group {
    relay: bool,
    link: Link,
}

/// The multiplexed dispatcher: node → link routing plus per-node chaos
/// schedules, driven by [`Reactor::dispatch`] on the caller's thread.
pub struct Reactor {
    groups: Vec<Group>,
    node_group: HashMap<String, usize>,
    chaos: HashMap<String, ChaosState>,
}

/// Chaos verdict for one attempt that reached the wire: deliver the
/// response, drop it (the server still executed), or delay its delivery.
#[derive(Clone, Copy)]
enum Post {
    Deliver,
    DropResponse,
    Delay(u64),
}

enum Phase {
    Ready,
    Waiting(Instant),
    InFlight,
    Delayed {
        until: Instant,
        result: Result<Value, RpcError>,
    },
    Done(Result<Value, RpcError>),
}

struct CallState {
    attempts: u32,
    retries: u64,
    backoff: Duration,
    started: Instant,
    duration_ns: u64,
    phase: Phase,
}

struct WireOp {
    group: usize,
    /// `(call index, chaos post-action)` for every entry riding this op.
    entries: Vec<(usize, Post)>,
    call: MethodCall,
    method: String,
    frame: Vec<u8>,
    sent: usize,
    in_buf: Vec<u8>,
    deadline: Instant,
    connect_attempts: u32,
    connect_backoff: Duration,
    next_connect_at: Instant,
}

enum Step {
    Pending,
    Complete(MethodResponse),
    Failed(RpcError),
}

fn finish(state: &mut CallState, result: Result<Value, RpcError>) {
    state.duration_ns = state.started.elapsed().as_nanos() as u64;
    state.phase = Phase::Done(result);
}

/// One attempt failed: retry retryable errors while budget remains (same
/// predicate and backoff shape as the master's `retry_call_on`), otherwise
/// the error is final.
fn fail_attempt(state: &mut CallState, method: &str, err: RpcError, retry: &RetryConfig) {
    state.attempts += 1;
    if err.is_retryable() && state.attempts < retry.max_attempts.max(1) {
        state.retries += 1;
        if excovery_obs::enabled() {
            excovery_obs::global()
                .counter("rpc_client_retries_total", &[("method", method)])
                .inc();
        }
        state.phase = Phase::Waiting(Instant::now() + state.backoff);
        state.backoff = state.backoff.saturating_mul(2).min(retry.backoff_max);
    } else {
        finish(state, Err(err));
    }
}

fn settle_attempt(
    state: &mut CallState,
    method: &str,
    result: Result<Value, RpcError>,
    retry: &RetryConfig,
) {
    match result {
        Ok(v) => finish(state, Ok(v)),
        Err(e) => fail_attempt(state, method, e, retry),
    }
}

fn apply_post(
    state: &mut CallState,
    method: &str,
    post: Post,
    result: Result<Value, RpcError>,
    retry: &RetryConfig,
) {
    match post {
        Post::Deliver => settle_attempt(state, method, result, retry),
        // The server executed; only the response is lost. The retry will
        // replay the recorded response under the same idempotency key.
        Post::DropResponse => fail_attempt(
            state,
            method,
            RpcError::Timeout {
                method: method.to_string(),
                after_ms: 0,
            },
            retry,
        ),
        Post::Delay(ms) => {
            state.phase = Phase::Delayed {
                until: Instant::now() + Duration::from_millis(ms),
                result,
            }
        }
    }
}

/// Tries to decode one length-prefixed response frame from the read
/// buffer. `None` means more bytes are needed.
fn decode_frame(in_buf: &[u8]) -> Option<Step> {
    if in_buf.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes([in_buf[0], in_buf[1], in_buf[2], in_buf[3]]);
    if len > MAX_FRAME_BYTES {
        return Some(Step::Failed(RpcError::Codec(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        ))));
    }
    let len = len as usize;
    if in_buf.len() < 4 + len {
        return None;
    }
    Some(match std::str::from_utf8(&in_buf[4..4 + len]) {
        Ok(xml) => match MethodResponse::from_xml(xml) {
            Ok(response) => Step::Complete(response),
            Err(e) => Step::Failed(RpcError::Codec(e.to_string())),
        },
        Err(_) => Step::Failed(RpcError::Codec("response frame is not UTF-8".into())),
    })
}

/// Advances one wire op as far as it can go without blocking.
fn step_op(link: &mut Link, op: &mut WireOp, now: Instant) -> Step {
    match link {
        Link::Memory(registry) => Step::Complete(registry.lock().dispatch(&op.call)),
        Link::Tcp { addr, opts, stream } => {
            if now >= op.deadline {
                return Step::Failed(RpcError::Timeout {
                    method: op.method.clone(),
                    after_ms: opts.call_timeout.as_millis() as u64,
                });
            }
            if stream.is_none() {
                if now < op.next_connect_at {
                    return Step::Pending;
                }
                match TcpStream::connect_timeout(addr, opts.connect_timeout) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        if let Err(e) = s.set_nonblocking(true) {
                            return Step::Failed(RpcError::Io(format!("set_nonblocking: {e}")));
                        }
                        *stream = Some(s);
                    }
                    Err(e) => {
                        op.connect_attempts += 1;
                        if op.connect_attempts >= opts.max_connect_attempts.max(1) {
                            return Step::Failed(RpcError::Disconnected(format!(
                                "{addr} unreachable after {} attempts: {e}",
                                op.connect_attempts
                            )));
                        }
                        op.next_connect_at = now + op.connect_backoff;
                        op.connect_backoff =
                            op.connect_backoff.saturating_mul(2).min(opts.backoff_max);
                        return Step::Pending;
                    }
                }
            }
            let s = stream.as_mut().expect("stream just ensured");
            while op.sent < op.frame.len() {
                match s.write(&op.frame[op.sent..]) {
                    Ok(0) => {
                        return Step::Failed(RpcError::Disconnected(
                            "server closed the connection mid-call".into(),
                        ))
                    }
                    Ok(n) => op.sent += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return Step::Pending,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        return Step::Failed(RpcError::Disconnected(format!(
                            "write to {addr}: {e}"
                        )))
                    }
                }
            }
            if let Some(step) = decode_frame(&op.in_buf) {
                return step;
            }
            let mut buf = [0u8; 4096];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => {
                        return Step::Failed(RpcError::Disconnected(
                            "server closed the connection mid-call".into(),
                        ))
                    }
                    Ok(n) => {
                        op.in_buf.extend_from_slice(&buf[..n]);
                        if let Some(step) = decode_frame(&op.in_buf) {
                            return step;
                        }
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        break
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        return Step::Failed(RpcError::Disconnected(format!(
                            "read from {addr}: {e}"
                        )))
                    }
                }
            }
            Step::Pending
        }
    }
}

impl Reactor {
    /// An empty reactor; add links with [`Reactor::add_node`] /
    /// [`Reactor::add_relay`].
    pub fn new() -> Self {
        Self {
            groups: Vec::new(),
            node_group: HashMap::new(),
            chaos: HashMap::new(),
        }
    }

    /// Registers a directly-linked NodeManager with an optional per-node
    /// chaos schedule (drawn per attempt, like `ChaosTransport`).
    pub fn add_node(
        &mut self,
        node_id: impl Into<String>,
        endpoint: ReactorEndpoint,
        chaos: Option<ChaosOptions>,
    ) {
        let node_id = node_id.into();
        self.groups.push(Group {
            relay: false,
            link: Self::link(endpoint),
        });
        self.node_group
            .insert(node_id.clone(), self.groups.len() - 1);
        if let Some(opts) = chaos {
            self.chaos
                .insert(node_id, ChaosState { opts, next_call: 0 });
        }
    }

    /// Registers a sub-master relay serving `members`; calls to any member
    /// are batched onto the relay's single link. Chaos stays per member
    /// node: a crashed member fails its own entries, not the batch.
    pub fn add_relay(
        &mut self,
        endpoint: ReactorEndpoint,
        members: Vec<(String, Option<ChaosOptions>)>,
    ) {
        self.groups.push(Group {
            relay: true,
            link: Self::link(endpoint),
        });
        let g = self.groups.len() - 1;
        for (node_id, chaos) in members {
            self.node_group.insert(node_id.clone(), g);
            if let Some(opts) = chaos {
                self.chaos
                    .insert(node_id, ChaosState { opts, next_call: 0 });
            }
        }
    }

    fn link(endpoint: ReactorEndpoint) -> Link {
        match endpoint {
            ReactorEndpoint::Memory(registry) => Link::Memory(registry),
            ReactorEndpoint::Tcp { addr, opts } => Link::Tcp {
                addr,
                opts,
                stream: None,
            },
        }
    }

    /// Nodes this reactor can reach (members of relays included).
    pub fn node_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.node_group.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Draws the chaos verdict for the next attempt against `node_id`.
    /// `Ok` actions reach the wire (with a post-action), `Err` actions
    /// fail the attempt before any wire work — both with the exact error
    /// strings `ChaosTransport` injects.
    fn chaos_verdict(&mut self, node_id: &str, method: &str) -> Result<Post, RpcError> {
        let Some(chaos) = self.chaos.get_mut(node_id) else {
            return Ok(Post::Deliver);
        };
        let index = chaos.next_call;
        chaos.next_call += 1;
        let action = fault_at(&chaos.opts, index);
        if excovery_obs::enabled() && action != FaultAction::Pass {
            excovery_obs::global()
                .counter("rpc_chaos_injections_total", &[("kind", action.label())])
                .inc();
        }
        match action {
            FaultAction::Pass => Ok(Post::Deliver),
            FaultAction::DropResponse => Ok(Post::DropResponse),
            FaultAction::Delay(ms) => Ok(Post::Delay(ms)),
            FaultAction::DropRequest => Err(RpcError::Io(format!(
                "chaos: request '{method}' dropped at call #{index}"
            ))),
            FaultAction::InjectTimeout => Err(RpcError::Timeout {
                method: method.to_string(),
                after_ms: 0,
            }),
            FaultAction::InjectDisconnected => Err(RpcError::Disconnected(format!(
                "chaos: link to server lost at call #{index}"
            ))),
            FaultAction::Crash => Err(RpcError::Disconnected(format!(
                "chaos: node crashed (window hit at call #{index})"
            ))),
        }
    }

    /// Builds the wire op for one link's ready entries: a plain idempotent
    /// single-method frame on direct links, a batch frame on relays.
    fn make_op(
        &self,
        g: usize,
        entries: Vec<(usize, Post)>,
        calls: &[NodeCall],
        now: Instant,
    ) -> Result<WireOp, (Vec<(usize, Post)>, RpcError)> {
        let group = &self.groups[g];
        let method = calls[entries[0].0].method.clone();
        let call = if group.relay {
            let batch: Vec<BatchEntry> = entries
                .iter()
                .map(|&(i, _)| BatchEntry {
                    node_id: calls[i].node_id.clone(),
                    method: calls[i].method.clone(),
                    params: calls[i].params.clone(),
                    idem_key: calls[i].idem_key.clone(),
                })
                .collect();
            pack_batch(&batch)
        } else {
            let c = &calls[entries[0].0];
            let mut params = c.params.clone();
            params.push(Value::Struct(vec![(
                IDEMPOTENCY_MEMBER.into(),
                Value::str(c.idem_key.clone()),
            )]));
            MethodCall::new(c.method.clone(), params)
        };
        let (frame, deadline, connect_backoff) = match &group.link {
            // Memory ops complete synchronously on the next step; the
            // deadline is never consulted.
            Link::Memory(_) => (Vec::new(), now + Duration::from_secs(3600), Duration::ZERO),
            Link::Tcp { opts, .. } => {
                let xml = call.to_xml();
                if xml.len() as u64 > u64::from(MAX_FRAME_BYTES) {
                    return Err((
                        entries,
                        RpcError::Codec(format!(
                            "request frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                            xml.len()
                        )),
                    ));
                }
                let mut frame = Vec::with_capacity(4 + xml.len());
                frame.extend_from_slice(&(xml.len() as u32).to_be_bytes());
                frame.extend_from_slice(xml.as_bytes());
                (frame, now + opts.call_timeout, opts.backoff_initial)
            }
        };
        if excovery_obs::enabled() {
            let reg = excovery_obs::global();
            let link = match &group.link {
                Link::Memory(_) => "memory",
                Link::Tcp { .. } => "tcp",
            };
            reg.counter("rpc_reactor_wire_ops_total", &[("link", link)])
                .inc();
            if group.relay {
                reg.counter("rpc_reactor_batched_calls_total", &[])
                    .add(entries.len() as u64);
            }
        }
        Ok(WireOp {
            group: g,
            entries,
            call,
            method,
            frame,
            sent: 0,
            in_buf: Vec::new(),
            deadline,
            connect_attempts: 0,
            connect_backoff,
            next_connect_at: now,
        })
    }

    /// Drives every call to completion and returns outcomes aligned with
    /// the input order. The whole fan-out runs on the calling thread; a
    /// sweep services every link that is ready and the loop sleeps (≤ 1 ms)
    /// only when no link, backoff or delay gate can progress.
    pub fn dispatch(&mut self, calls: Vec<NodeCall>, retry: &RetryConfig) -> Vec<DispatchOutcome> {
        let started = Instant::now();
        if excovery_obs::enabled() {
            excovery_obs::global()
                .counter("rpc_reactor_dispatches_total", &[])
                .inc();
        }
        let mut states: Vec<CallState> = calls
            .iter()
            .map(|_| CallState {
                attempts: 0,
                retries: 0,
                backoff: retry.backoff_initial,
                started,
                duration_ns: 0,
                phase: Phase::Ready,
            })
            .collect();
        for (i, call) in calls.iter().enumerate() {
            if !self.node_group.contains_key(&call.node_id) {
                finish(
                    &mut states[i],
                    Err(RpcError::Io(format!(
                        "no NodeManager for '{}'",
                        call.node_id
                    ))),
                );
            }
        }
        let mut ops: Vec<WireOp> = Vec::new();
        let mut busy = vec![false; self.groups.len()];

        loop {
            let mut progressed = false;
            let now = Instant::now();

            // Expired timers: backoffs become ready, delay gates deliver.
            for i in 0..states.len() {
                match &states[i].phase {
                    Phase::Waiting(until) if now >= *until => {
                        states[i].phase = Phase::Ready;
                        progressed = true;
                    }
                    Phase::Delayed { until, .. } if now >= *until => {
                        let Phase::Delayed { result, .. } =
                            std::mem::replace(&mut states[i].phase, Phase::Ready)
                        else {
                            unreachable!()
                        };
                        settle_attempt(&mut states[i], &calls[i].method, result, retry);
                        progressed = true;
                    }
                    _ => {}
                }
            }

            // Start new attempts: draw the chaos verdict per call in input
            // order, group survivors by link (relays batch all currently
            // ready members), one op in flight per link.
            let mut forming: Vec<Vec<(usize, Post)>> = vec![Vec::new(); self.groups.len()];
            for i in 0..calls.len() {
                if !matches!(states[i].phase, Phase::Ready) {
                    continue;
                }
                let Some(&g) = self.node_group.get(&calls[i].node_id) else {
                    continue;
                };
                if busy[g]
                    || forming[g]
                        .iter()
                        .any(|&(j, _)| calls[j].node_id == calls[i].node_id)
                {
                    continue; // link occupied, or duplicate call to the node
                }
                match self.chaos_verdict(&calls[i].node_id, &calls[i].method) {
                    Ok(post) => {
                        states[i].phase = Phase::InFlight;
                        forming[g].push((i, post));
                    }
                    Err(err) => {
                        fail_attempt(&mut states[i], &calls[i].method, err, retry);
                        progressed = true;
                    }
                }
            }
            for (g, entries) in forming.into_iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                progressed = true;
                match self.make_op(g, entries, &calls, now) {
                    Ok(op) => {
                        busy[g] = true;
                        ops.push(op);
                    }
                    Err((entries, err)) => {
                        for (i, _) in entries {
                            fail_attempt(&mut states[i], &calls[i].method, err.clone(), retry);
                        }
                    }
                }
            }

            // Advance in-flight ops.
            let mut k = 0;
            while k < ops.len() {
                let g = ops[k].group;
                match step_op(&mut self.groups[g].link, &mut ops[k], now) {
                    Step::Pending => k += 1,
                    Step::Complete(response) => {
                        let op = ops.swap_remove(k);
                        busy[g] = false;
                        progressed = true;
                        self.complete_op(op, response, &calls, &mut states, retry);
                    }
                    Step::Failed(err) => {
                        let op = ops.swap_remove(k);
                        busy[g] = false;
                        progressed = true;
                        // Like TcpTransport: a failed exchange poisons the
                        // connection; reconnect lazily on the next attempt.
                        if let Link::Tcp { stream, .. } = &mut self.groups[g].link {
                            *stream = None;
                        }
                        for &(i, _) in &op.entries {
                            fail_attempt(&mut states[i], &calls[i].method, err.clone(), retry);
                        }
                    }
                }
            }

            if states.iter().all(|s| matches!(s.phase, Phase::Done(_))) {
                break;
            }
            if !progressed {
                let timers = states.iter().filter_map(|s| match &s.phase {
                    Phase::Waiting(until) | Phase::Delayed { until, .. } => Some(*until),
                    _ => None,
                });
                let wake = timers
                    .chain(ops.iter().flat_map(|op| [op.deadline, op.next_connect_at]))
                    .min();
                let pause = wake
                    .map(|w| w.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(1))
                    .clamp(Duration::from_micros(50), Duration::from_millis(1));
                std::thread::sleep(pause);
            }
        }

        calls
            .into_iter()
            .zip(states)
            .map(|(call, state)| {
                let Phase::Done(result) = state.phase else {
                    unreachable!("dispatch loop exited with work pending")
                };
                DispatchOutcome {
                    node_id: call.node_id,
                    result,
                    retries: state.retries,
                    duration_ns: state.duration_ns,
                }
            })
            .collect()
    }

    /// Distributes a completed wire response to the op's entries.
    fn complete_op(
        &self,
        op: WireOp,
        response: MethodResponse,
        calls: &[NodeCall],
        states: &mut [CallState],
        retry: &RetryConfig,
    ) {
        if !self.groups[op.group].relay {
            let (i, post) = op.entries[0];
            let result = response_to_result(response);
            apply_post(&mut states[i], &calls[i].method, post, result, retry);
            return;
        }
        match response_to_result(response).and_then(|v| unpack_batch_response(&v)) {
            Ok(results) if results.len() == op.entries.len() => {
                for (&(i, post), (_, outcome)) in op.entries.iter().zip(results) {
                    let result = outcome.map_err(RpcError::from);
                    apply_post(&mut states[i], &calls[i].method, post, result, retry);
                }
            }
            Ok(results) => {
                let err = RpcError::Codec(format!(
                    "batch response carries {} results for {} entries",
                    results.len(),
                    op.entries.len()
                ));
                for &(i, _) in &op.entries {
                    fail_attempt(&mut states[i], &calls[i].method, err.clone(), retry);
                }
            }
            Err(err) => {
                for &(i, _) in &op.entries {
                    fail_attempt(&mut states[i], &calls[i].method, err.clone(), retry);
                }
            }
        }
    }
}

impl Default for Reactor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::relay_registry;
    use crate::tcp::TcpRpcServer;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_registry(count: Arc<AtomicU64>, tag: i32) -> Arc<Mutex<ServerRegistry>> {
        let mut reg = ServerRegistry::new();
        reg.register("run_init", move |params: &[Value]| {
            count.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Int(tag + params.len() as i32))
        });
        Arc::new(Mutex::new(reg))
    }

    fn call(node: &str, seq: u64) -> NodeCall {
        NodeCall {
            node_id: node.into(),
            method: "run_init".into(),
            params: vec![],
            idem_key: format!("0:0:{seq}"),
        }
    }

    #[test]
    fn memory_fanout_returns_results_in_input_order() {
        let mut reactor = Reactor::new();
        let counts: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for (i, count) in counts.iter().enumerate() {
            reactor.add_node(
                format!("p{i}"),
                ReactorEndpoint::Memory(counting_registry(Arc::clone(count), i as i32 * 10)),
                None,
            );
        }
        let calls = vec![call("p2", 1), call("p0", 2), call("p1", 3)];
        let outcomes = reactor.dispatch(calls, &RetryConfig::default());
        let got: Vec<(String, Value)> = outcomes
            .into_iter()
            .map(|o| (o.node_id, o.result.unwrap()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("p2".to_string(), Value::Int(20)),
                ("p0".to_string(), Value::Int(0)),
                ("p1".to_string(), Value::Int(10)),
            ]
        );
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn unknown_nodes_fail_without_touching_known_ones() {
        let mut reactor = Reactor::new();
        let count = Arc::new(AtomicU64::new(0));
        reactor.add_node(
            "p0",
            ReactorEndpoint::Memory(counting_registry(Arc::clone(&count), 0)),
            None,
        );
        let outcomes = reactor.dispatch(
            vec![call("ghost", 1), call("p0", 2)],
            &RetryConfig::default(),
        );
        match &outcomes[0].result {
            Err(RpcError::Io(msg)) => assert!(msg.contains("ghost")),
            other => panic!("{other:?}"),
        }
        assert!(outcomes[1].result.is_ok());
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn crash_window_is_absorbed_by_retry_with_the_chaos_error_string() {
        let schedule = ChaosOptions {
            crash_windows: vec![(0, 1)],
            ..ChaosOptions::quiet(0)
        };
        // With retries: the crashed attempt is retried past the window.
        let count = Arc::new(AtomicU64::new(0));
        let mut reactor = Reactor::new();
        reactor.add_node(
            "p0",
            ReactorEndpoint::Memory(counting_registry(Arc::clone(&count), 0)),
            Some(schedule.clone()),
        );
        let outcomes = reactor.dispatch(vec![call("p0", 1)], &RetryConfig::default());
        assert_eq!(outcomes[0].result.as_ref().unwrap(), &Value::Int(0));
        assert_eq!(outcomes[0].retries, 1);
        assert_eq!(count.load(Ordering::Relaxed), 1);

        // Without retries: the injected error is final and carries the
        // ChaosTransport wording.
        let mut reactor = Reactor::new();
        reactor.add_node(
            "p0",
            ReactorEndpoint::Memory(counting_registry(Arc::new(AtomicU64::new(0)), 0)),
            Some(schedule),
        );
        let outcomes = reactor.dispatch(vec![call("p0", 2)], &RetryConfig::none());
        match &outcomes[0].result {
            Err(RpcError::Disconnected(msg)) => {
                assert!(msg.contains("chaos: node crashed"), "{msg}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relay_batches_members_and_replays_on_identical_keys() {
        let c0 = Arc::new(AtomicU64::new(0));
        let c1 = Arc::new(AtomicU64::new(0));
        let relay = relay_registry(vec![
            ("p0".into(), counting_registry(Arc::clone(&c0), 0)),
            ("p1".into(), counting_registry(Arc::clone(&c1), 10)),
        ]);
        let mut reactor = Reactor::new();
        reactor.add_relay(
            ReactorEndpoint::Memory(Arc::new(Mutex::new(relay))),
            vec![("p0".into(), None), ("p1".into(), None)],
        );
        let calls = vec![call("p0", 1), call("p1", 2)];
        let first = reactor.dispatch(calls.clone(), &RetryConfig::default());
        // The `__idem` member is stripped before the handler runs, so each
        // handler sees its original (empty) parameter list.
        assert_eq!(first[0].result.as_ref().unwrap(), &Value::Int(0));
        assert_eq!(first[1].result.as_ref().unwrap(), &Value::Int(10));
        // Same keys again: the relay forwards, the nodes replay — handlers
        // must not run a second time.
        let second = reactor.dispatch(calls, &RetryConfig::default());
        assert!(second.iter().all(|o| o.result.is_ok()));
        assert_eq!(c0.load(Ordering::Relaxed), 1);
        assert_eq!(c1.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tcp_link_roundtrips_and_surfaces_a_killed_server() {
        let count = Arc::new(AtomicU64::new(0));
        let registry = counting_registry(Arc::clone(&count), 0);
        let server = TcpRpcServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        let opts = TcpOptions {
            connect_timeout: Duration::from_millis(250),
            call_timeout: Duration::from_millis(500),
            max_connect_attempts: 2,
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
        };
        let mut reactor = Reactor::new();
        reactor.add_node("p0", ReactorEndpoint::Tcp { addr, opts }, None);

        let outcomes = reactor.dispatch(vec![call("p0", 1)], &RetryConfig::none());
        assert_eq!(outcomes[0].result.as_ref().unwrap(), &Value::Int(0));
        assert_eq!(count.load(Ordering::Relaxed), 1);

        server.shutdown();
        // The connection thread polls the stop flag between 50 ms reads; a
        // request sent before it notices would still be served. Wait until
        // it has closed our stream so the next call hits a dead link.
        std::thread::sleep(Duration::from_millis(200));
        let started = Instant::now();
        let outcomes = reactor.dispatch(vec![call("p0", 2)], &RetryConfig::none());
        match &outcomes[0].result {
            Err(RpcError::Disconnected(_) | RpcError::Io(_) | RpcError::Timeout { .. }) => {}
            other => panic!("expected a transport error, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(10));
    }
}
