//! The dedicated control channel between master and nodes.
//!
//! A [`ServerRegistry`] holds the procedures a NodeManager exposes; a
//! [`Transport`] carries serialized XML-RPC documents between a client and
//! a registry. Two backends exist: the in-memory [`Channel`] (standing in
//! for the testbed's separate management network, §IV-A1, and kept for
//! tests and benches) and the framed TCP transport in [`crate::tcp`]. A
//! [`NodeProxy`] is the master-side object representing one node, with the
//! per-node locking the prototype uses ("a node object [...] uses locking
//! to allow only one access at a time", §VI-A).

use crate::error::{RpcError, FAULT_INTERNAL_ERROR, FAULT_NO_SUCH_METHOD, FAULT_PARSE_ERROR};
use crate::message::{Fault, MethodCall, MethodResponse};
use crate::value::Value;
use excovery_obs::{Counter, Histogram};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Client-side metric handles of one transport instance: calls, errors
/// by [`RpcError::kind_label`], per-call latency, and wire bytes.
/// Handles are resolved once at transport construction; recording is a
/// few relaxed atomics gated on the global observability toggle.
#[derive(Clone)]
pub(crate) struct ClientObs {
    transport: &'static str,
    calls: Counter,
    latency_ns: Histogram,
    bytes_sent: Counter,
    bytes_received: Counter,
}

impl ClientObs {
    pub(crate) fn new(transport: &'static str) -> Self {
        let reg = excovery_obs::global();
        let labels = [("transport", transport)];
        Self {
            transport,
            calls: reg.counter("rpc_client_calls_total", &labels),
            latency_ns: reg.histogram("rpc_client_call_latency_ns", &labels),
            bytes_sent: reg.counter("rpc_client_bytes_sent_total", &labels),
            bytes_received: reg.counter("rpc_client_bytes_received_total", &labels),
        }
    }

    /// Captures a start timestamp only while recording is on, so the
    /// disabled layer costs one branch here.
    pub(crate) fn start(&self) -> Option<Instant> {
        excovery_obs::enabled().then(Instant::now)
    }

    /// Records one completed call: count, latency (if a start timestamp
    /// was captured), and — on error — the per-kind error series.
    pub(crate) fn observe_call(
        &self,
        started: Option<Instant>,
        result: &Result<MethodResponse, RpcError>,
    ) {
        if !excovery_obs::enabled() {
            return;
        }
        self.calls.inc();
        if let Some(t0) = started {
            self.latency_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        if let Err(e) = result {
            // Error kinds are a bounded label set; the registry lookup
            // happens only on the (rare) error path.
            excovery_obs::global()
                .counter(
                    "rpc_client_errors_total",
                    &[("transport", self.transport), ("kind", e.kind_label())],
                )
                .inc();
        }
    }

    pub(crate) fn add_bytes_sent(&self, n: usize) {
        self.bytes_sent.add(n as u64);
    }

    pub(crate) fn add_bytes_received(&self, n: usize) {
        self.bytes_received.add(n as u64);
    }
}

/// A procedure handler.
pub type Handler = Box<dyn FnMut(&[Value]) -> Result<Value, Fault> + Send>;

/// Observer invoked for every dispatched call (wire tracing, node logs).
pub type CallObserver = Box<dyn FnMut(&MethodCall) + Send>;

/// One side of the control channel: sends a call, returns the response.
///
/// Implementations must be shareable across the master's experiment,
/// fault and management threads — all methods take `&self`.
pub trait Transport: Send + Sync {
    /// Performs one synchronous remote procedure call.
    fn call(&self, call: &MethodCall) -> Result<MethodResponse, RpcError>;

    /// Human-readable endpoint description (diagnostics).
    fn endpoint(&self) -> String {
        "memory".into()
    }

    /// Releases any underlying connection. Further calls may fail with
    /// [`RpcError::Disconnected`]. Default: nothing to release.
    fn close(&self) {}
}

/// Maps a parsed response into the caller-facing result, classifying
/// well-known fault codes via `From<Fault> for RpcError`.
pub fn response_to_result(response: MethodResponse) -> Result<Value, RpcError> {
    response.into_result().map_err(RpcError::from)
}

/// Reserved name of the trailing struct parameter carrying a caller-chosen
/// idempotency key. A client that retries a call reuses the key, and the
/// server replays the recorded response instead of executing the procedure
/// again — the contract that makes lost-response faults survivable.
pub const IDEMPOTENCY_MEMBER: &str = "__idem";

/// Bound on remembered responses per registry; oldest entries are evicted
/// first. Far larger than any plausible retry window.
const IDEMPOTENCY_CACHE_CAP: usize = 4096;

/// Registry of procedures exposed by one server (NodeManager).
pub struct ServerRegistry {
    handlers: HashMap<String, Handler>,
    observer: Option<CallObserver>,
    /// Response cache keyed by idempotency key, with FIFO eviction order.
    idem_cache: HashMap<String, MethodResponse>,
    idem_order: std::collections::VecDeque<String>,
    obs_dispatches: Counter,
    obs_idem_replays: Counter,
}

impl Default for ServerRegistry {
    fn default() -> Self {
        let reg = excovery_obs::global();
        Self {
            handlers: HashMap::new(),
            observer: None,
            idem_cache: HashMap::new(),
            idem_order: std::collections::VecDeque::new(),
            obs_dispatches: reg.counter("rpc_server_dispatches_total", &[]),
            obs_idem_replays: reg.counter("rpc_server_idem_replays_total", &[]),
        }
    }
}

/// Splits a trailing `{__idem: key}` struct parameter off a call, if
/// present. Returns the key and the call as the handler must see it.
fn split_idempotency(call: &MethodCall) -> (Option<String>, Option<MethodCall>) {
    if let Some(Value::Struct(members)) = call.params.last() {
        if let [(name, Value::String(key))] = members.as_slice() {
            if name == IDEMPOTENCY_MEMBER {
                let stripped = MethodCall::new(
                    call.method.clone(),
                    call.params[..call.params.len() - 1].to_vec(),
                );
                return (Some(key.clone()), Some(stripped));
            }
        }
    }
    (None, None)
}

impl ServerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` under `name`, replacing any previous handler.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        handler: impl FnMut(&[Value]) -> Result<Value, Fault> + Send + 'static,
    ) {
        self.handlers.insert(name.into(), Box::new(handler));
    }

    /// Installs an observer invoked with every dispatched call — the hook
    /// NodeManagers use to keep their raw action log (`Logs` table).
    pub fn set_observer(&mut self, f: impl FnMut(&MethodCall) + Send + 'static) {
        self.observer = Some(Box::new(f));
    }

    /// Registered method names (sorted, for introspection).
    pub fn method_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.handlers.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Dispatches a parsed call. The XML-RPC introspection convention
    /// `system.listMethods` is answered built-in. A panicking handler is
    /// contained server-side and reported as an internal fault, so the
    /// registry (and every lock guarding it) stays usable afterwards.
    ///
    /// A call carrying a trailing `{__idem: key}` struct parameter is
    /// dispatched **at most once** per key: the response is recorded, and
    /// a repeat of the same key replays it without invoking the handler or
    /// the observer — a retried call that already executed (its response
    /// was lost in transit) leaves no second trace in the node's action
    /// log. The key parameter is stripped before the handler sees the
    /// arguments.
    pub fn dispatch(&mut self, call: &MethodCall) -> MethodResponse {
        let (idem_key, stripped) = split_idempotency(call);
        if let Some(key) = &idem_key {
            if let Some(replay) = self.idem_cache.get(key) {
                self.obs_idem_replays.inc();
                return replay.clone();
            }
        }
        let call = stripped.as_ref().unwrap_or(call);
        let response = self.dispatch_inner(call);
        if let Some(key) = idem_key {
            if self.idem_order.len() >= IDEMPOTENCY_CACHE_CAP {
                if let Some(evicted) = self.idem_order.pop_front() {
                    self.idem_cache.remove(&evicted);
                }
            }
            self.idem_order.push_back(key.clone());
            self.idem_cache.insert(key, response.clone());
        }
        response
    }

    fn dispatch_inner(&mut self, call: &MethodCall) -> MethodResponse {
        self.obs_dispatches.inc();
        if let Some(observer) = &mut self.observer {
            observer(call);
        }
        if call.method == "system.listMethods" {
            let names = self
                .method_names()
                .into_iter()
                .map(Value::str)
                .collect::<Vec<_>>();
            return MethodResponse::Success(Value::Array(names));
        }
        match self.handlers.get_mut(&call.method) {
            None => MethodResponse::Fault(Fault::new(
                FAULT_NO_SUCH_METHOD,
                format!("no such method: {}", call.method),
            )),
            Some(h) => match catch_unwind(AssertUnwindSafe(|| h(&call.params))) {
                Ok(Ok(v)) => MethodResponse::Success(v),
                Ok(Err(f)) => MethodResponse::Fault(f),
                Err(panic) => MethodResponse::Fault(Fault::new(
                    FAULT_INTERNAL_ERROR,
                    format!(
                        "handler '{}' panicked: {}",
                        call.method,
                        panic_message(panic.as_ref())
                    ),
                )),
            },
        }
    }

    /// Handles a raw XML request and produces a raw XML response — the full
    /// wire path of a real XML-RPC endpoint (shared by every transport).
    pub fn handle_wire(&mut self, request_xml: &str) -> String {
        match MethodCall::from_xml(request_xml) {
            Err(e) => {
                MethodResponse::Fault(Fault::new(FAULT_PARSE_ERROR, format!("parse error: {e}")))
                    .to_xml()
            }
            Ok(call) => self.dispatch(&call).to_xml(),
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

/// The in-memory control channel to one server.
///
/// Calls are serialized to XML, handed to the registry, and the response is
/// parsed back — byte-for-byte what a TCP transport would carry.
#[derive(Clone)]
pub struct Channel {
    server: Arc<Mutex<ServerRegistry>>,
    obs: ClientObs,
}

impl Channel {
    /// Wraps a registry into a channel endpoint.
    pub fn new(server: ServerRegistry) -> Self {
        Self {
            server: Arc::new(Mutex::new(server)),
            obs: ClientObs::new("memory"),
        }
    }

    /// Access to the server side (to register more procedures later, or
    /// to serve the same registry over another transport).
    pub fn server(&self) -> Arc<Mutex<ServerRegistry>> {
        Arc::clone(&self.server)
    }

    /// Performs a synchronous call over the wire format (convenience
    /// wrapper around the [`Transport`] impl).
    pub fn call(&self, method: &str, params: Vec<Value>) -> Result<Value, RpcError> {
        response_to_result(Transport::call(self, &MethodCall::new(method, params))?)
    }
}

impl Transport for Channel {
    fn call(&self, call: &MethodCall) -> Result<MethodResponse, RpcError> {
        let started = self.obs.start();
        let request = call.to_xml();
        self.obs.add_bytes_sent(request.len());
        let response_xml = self.server.lock().handle_wire(&request);
        self.obs.add_bytes_received(response_xml.len());
        let result =
            MethodResponse::from_xml(&response_xml).map_err(|e| RpcError::Codec(e.to_string()));
        self.obs.observe_call(started, &result);
        result
    }
}

/// Master-side object representing one participating node (§VI-A).
///
/// Serializes all access to the node with a lock so concurrent experiment
/// process threads, fault threads and management actions cannot interleave
/// calls to the same node. The lock is held only for the duration of one
/// call and is released cleanly on every outcome — error, timeout, or a
/// panic unwinding out of the transport — so one failed call can never
/// wedge subsequent calls to the node.
pub struct NodeProxy {
    /// Node identifier (host name).
    pub node_id: String,
    transport: Arc<dyn Transport>,
    lock: Mutex<()>,
}

impl NodeProxy {
    /// Creates a proxy for `node_id` over `transport`.
    pub fn new(node_id: impl Into<String>, transport: impl Transport + 'static) -> Self {
        Self::from_arc(node_id, Arc::new(transport))
    }

    /// Creates a proxy over an already-shared transport object.
    pub fn from_arc(node_id: impl Into<String>, transport: Arc<dyn Transport>) -> Self {
        Self {
            node_id: node_id.into(),
            transport,
            lock: Mutex::new(()),
        }
    }

    /// Calls a procedure with a caller-chosen idempotency key, appended as
    /// the trailing `{__idem: key}` struct parameter. A retry that reuses
    /// the key is deduplicated server-side (see
    /// [`ServerRegistry::dispatch`]): the recorded response is replayed
    /// and the procedure is not executed again.
    pub fn call_idempotent(
        &self,
        method: &str,
        mut params: Vec<Value>,
        key: &str,
    ) -> Result<Value, RpcError> {
        params.push(Value::Struct(vec![(
            IDEMPOTENCY_MEMBER.into(),
            Value::str(key),
        )]));
        self.call(method, params)
    }

    /// Calls a procedure on the node, holding the node lock for the
    /// duration of the call. A transport that panics is contained here
    /// and surfaces as [`RpcError::Io`]; the node lock is released either
    /// way (it does not poison).
    pub fn call(&self, method: &str, params: Vec<Value>) -> Result<Value, RpcError> {
        let _guard = self.lock.lock();
        let call = MethodCall::new(method, params);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.transport.call(&call)));
        match outcome {
            Ok(result) => response_to_result(result?),
            Err(panic) => Err(RpcError::Io(format!(
                "transport panicked during '{}': {}",
                method,
                panic_message(panic.as_ref())
            ))),
        }
    }

    /// Endpoint description of the underlying transport.
    pub fn endpoint(&self) -> String {
        self.transport.endpoint()
    }

    /// Closes the underlying transport.
    pub fn close(&self) {
        self.transport.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn echo_registry() -> ServerRegistry {
        let mut reg = ServerRegistry::new();
        reg.register("echo", |params| Ok(Value::Array(params.to_vec())));
        reg.register("add", |params| {
            let a = params
                .first()
                .and_then(Value::as_int)
                .ok_or_else(|| Fault::new(1, "missing a"))?;
            let b = params
                .get(1)
                .and_then(Value::as_int)
                .ok_or_else(|| Fault::new(1, "missing b"))?;
            Ok(Value::Int(a + b))
        });
        reg.register("fail", |_| Err(Fault::new(99, "intentional")));
        reg
    }

    #[test]
    fn call_roundtrips_through_wire_format() {
        let ch = Channel::new(echo_registry());
        let result = ch
            .call("echo", vec![Value::str("x"), Value::Int(2)])
            .unwrap();
        assert_eq!(result, Value::Array(vec![Value::str("x"), Value::Int(2)]));
    }

    #[test]
    fn add_and_fault_paths() {
        let ch = Channel::new(echo_registry());
        assert_eq!(
            ch.call("add", vec![Value::Int(2), Value::Int(3)]).unwrap(),
            Value::Int(5)
        );
        match ch.call("add", vec![Value::Int(2)]) {
            Err(RpcError::Fault(f)) => assert_eq!(f.code, 1),
            other => panic!("{other:?}"),
        }
        match ch.call("fail", vec![]) {
            Err(RpcError::Fault(f)) => assert_eq!(f.message, "intentional"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_method_is_distinguished() {
        let ch = Channel::new(echo_registry());
        match ch.call("nope", vec![]) {
            Err(RpcError::NoSuchMethod(m)) => assert!(m.contains("nope")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn handlers_can_be_stateful() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut reg = ServerRegistry::new();
        reg.register("bump", move |_| {
            Ok(Value::Int(c2.fetch_add(1, Ordering::SeqCst) as i32))
        });
        let ch = Channel::new(reg);
        assert_eq!(ch.call("bump", vec![]).unwrap(), Value::Int(0));
        assert_eq!(ch.call("bump", vec![]).unwrap(), Value::Int(1));
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn registry_introspection() {
        let reg = echo_registry();
        assert_eq!(reg.method_names(), vec!["add", "echo", "fail"]);
    }

    #[test]
    fn observer_sees_every_dispatch() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        let mut reg = echo_registry();
        reg.set_observer(move |call| s2.lock().push(call.method.clone()));
        let ch = Channel::new(reg);
        ch.call("echo", vec![]).unwrap();
        let _ = ch.call("nope", vec![]);
        ch.call("system.listMethods", vec![]).unwrap();
        assert_eq!(*seen.lock(), vec!["echo", "nope", "system.listMethods"]);
    }

    #[test]
    fn system_list_methods_over_the_wire() {
        let ch = Channel::new(echo_registry());
        let v = ch.call("system.listMethods", vec![]).unwrap();
        let names: Vec<&str> = v
            .as_array()
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(names, vec!["add", "echo", "fail"]);
    }

    #[test]
    fn handle_wire_reports_parse_errors_as_fault() {
        let mut reg = echo_registry();
        let resp = reg.handle_wire("this is not xml");
        let parsed = MethodResponse::from_xml(&resp).unwrap();
        match parsed {
            MethodResponse::Fault(f) => assert_eq!(f.code, FAULT_PARSE_ERROR),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn idempotent_calls_execute_at_most_once_per_key() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut reg = ServerRegistry::new();
        reg.register("bump", move |_| {
            Ok(Value::Int(c2.fetch_add(1, Ordering::SeqCst) as i32))
        });
        let proxy = NodeProxy::new("t9-105", Channel::new(reg));
        // Same key: executed once, identical response replayed.
        assert_eq!(
            proxy.call_idempotent("bump", vec![], "0:0:1").unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            proxy.call_idempotent("bump", vec![], "0:0:1").unwrap(),
            Value::Int(0),
            "retry must replay, not re-execute"
        );
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        // A fresh key executes again.
        assert_eq!(
            proxy.call_idempotent("bump", vec![], "0:0:2").unwrap(),
            Value::Int(1)
        );
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn idempotency_key_is_stripped_and_replay_skips_the_observer() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        let mut reg = ServerRegistry::new();
        reg.register("echo", |params| Ok(Value::Array(params.to_vec())));
        reg.set_observer(move |call| s2.lock().push(call.params.len()));
        let proxy = NodeProxy::new("t9-105", Channel::new(reg));
        let first = proxy
            .call_idempotent("echo", vec![Value::Int(7)], "k")
            .unwrap();
        // The handler never sees the trailing key struct.
        assert_eq!(first, Value::Array(vec![Value::Int(7)]));
        let replay = proxy
            .call_idempotent("echo", vec![Value::Int(7)], "k")
            .unwrap();
        assert_eq!(replay, first);
        // One observer entry with the stripped arity: the action log is
        // identical to a fault-free execution.
        assert_eq!(*seen.lock(), vec![1]);
    }

    #[test]
    fn idempotent_faults_are_replayed_too() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut reg = ServerRegistry::new();
        reg.register("flaky", move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
            Err(Fault::new(99, "always fails"))
        });
        let proxy = NodeProxy::new("t9-105", Channel::new(reg));
        for _ in 0..3 {
            match proxy.call_idempotent("flaky", vec![], "k1") {
                Err(RpcError::Fault(f)) => assert_eq!(f.code, 99),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            counter.load(Ordering::SeqCst),
            1,
            "a recorded fault is a recorded outcome"
        );
    }

    #[test]
    fn idempotency_cache_evicts_oldest_first() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut reg = ServerRegistry::new();
        reg.register("bump", move |_| {
            Ok(Value::Int(c2.fetch_add(1, Ordering::SeqCst) as i32))
        });
        let proxy = NodeProxy::new("t9-105", Channel::new(reg));
        for i in 0..=IDEMPOTENCY_CACHE_CAP {
            proxy
                .call_idempotent("bump", vec![], &format!("k{i}"))
                .unwrap();
        }
        // Key k0 was evicted to admit the CAP+1st entry: replaying it
        // executes again. A recent key still replays.
        let executed = counter.load(Ordering::SeqCst);
        proxy.call_idempotent("bump", vec![], "k1").unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), executed);
        proxy.call_idempotent("bump", vec![], "k0").unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), executed + 1);
    }

    #[test]
    fn plain_struct_params_are_not_mistaken_for_keys() {
        let mut reg = ServerRegistry::new();
        reg.register("echo", |params| Ok(Value::Array(params.to_vec())));
        let ch = Channel::new(reg);
        // A genuine trailing struct with a different member name passes
        // through untouched.
        let spec = Value::Struct(vec![("kind".into(), Value::str("interface"))]);
        let got = ch.call("echo", vec![spec.clone()]).unwrap();
        assert_eq!(got, Value::Array(vec![spec]));
    }

    #[test]
    fn node_proxy_serializes_access() {
        // Handler records max concurrent entries; proxy lock must keep it 1.
        let inside = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let (i2, m2) = (Arc::clone(&inside), Arc::clone(&max_seen));
        let mut reg = ServerRegistry::new();
        reg.register("slow", move |_| {
            let now = i2.fetch_add(1, Ordering::SeqCst) + 1;
            m2.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            i2.fetch_sub(1, Ordering::SeqCst);
            Ok(Value::Bool(true))
        });
        let proxy = Arc::new(NodeProxy::new("t9-105", Channel::new(reg)));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&proxy);
            handles.push(std::thread::spawn(move || {
                p.call("slow", vec![]).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "node lock must serialize calls"
        );
    }

    #[test]
    fn channel_clone_shares_server() {
        let ch = Channel::new(ServerRegistry::new());
        ch.server()
            .lock()
            .register("ping", |_| Ok(Value::str("pong")));
        let ch2 = ch.clone();
        assert_eq!(ch2.call("ping", vec![]).unwrap(), Value::str("pong"));
    }

    #[test]
    fn panicking_handler_is_contained_as_internal_fault() {
        let mut reg = echo_registry();
        reg.register("explode", |_| panic!("kaboom"));
        let proxy = NodeProxy::new("t9-105", Channel::new(reg));
        match proxy.call("explode", vec![]) {
            Err(RpcError::Fault(f)) => {
                assert_eq!(f.code, FAULT_INTERNAL_ERROR);
                assert!(f.message.contains("kaboom"), "{}", f.message);
            }
            other => panic!("{other:?}"),
        }
        // The failed call released both the node lock and the registry
        // lock: subsequent calls on the same proxy still work.
        assert_eq!(
            proxy
                .call("add", vec![Value::Int(1), Value::Int(2)])
                .unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn panicking_transport_releases_the_node_lock() {
        struct Bomb {
            armed: std::sync::atomic::AtomicBool,
            inner: Channel,
        }
        impl Transport for Bomb {
            fn call(&self, call: &MethodCall) -> Result<MethodResponse, RpcError> {
                if self.armed.swap(false, Ordering::SeqCst) {
                    panic!("wire melted");
                }
                Transport::call(&self.inner, call)
            }
        }
        let bomb = Bomb {
            armed: std::sync::atomic::AtomicBool::new(true),
            inner: Channel::new(echo_registry()),
        };
        let proxy = NodeProxy::new("t9-105", bomb);
        match proxy.call("echo", vec![]) {
            Err(RpcError::Io(m)) => assert!(m.contains("wire melted"), "{m}"),
            other => panic!("{other:?}"),
        }
        // The poisoned first call must not wedge the per-node lock.
        proxy.call("echo", vec![Value::Int(7)]).unwrap();
    }

    #[test]
    fn transport_object_is_usable_behind_dyn() {
        let t: Arc<dyn Transport> = Arc::new(Channel::new(echo_registry()));
        let proxy = NodeProxy::from_arc("t9-105", Arc::clone(&t));
        assert_eq!(proxy.endpoint(), "memory");
        let resp = t
            .call(&MethodCall::new("add", vec![Value::Int(4), Value::Int(5)]))
            .unwrap();
        assert_eq!(response_to_result(resp).unwrap(), Value::Int(9));
        proxy.close();
    }
}
