//! # excovery-rpc
//!
//! XML-RPC (paper §VI-A) between the controlling *ExperiMaster* and the
//! *NodeManager*s of the participating nodes.
//!
//! "Master and nodes are connected in a centralized client-server
//! architecture with a dedicated communication channel. They communicate
//! synchronously using extensible markup language remote procedure calls
//! (XML-RPC). [...] A node object presents the functions of one node to the
//! master program via XML-RPC and uses locking to allow only one access at
//! a time."
//!
//! The [`value`] and [`message`] modules implement the XML-RPC wire format
//! (values, method calls, responses, faults) on top of `excovery-xml`. The
//! control channel itself is pluggable behind the [`Transport`] trait:
//!
//! * [`Channel`] — the dedicated in-memory channel. Every call is genuinely
//!   serialized to XML and parsed back, so the codec is exercised
//!   end-to-end exactly as on a real wire, while remaining independent of
//!   the simulated experiment network (a platform requirement, §IV-A1).
//! * [`TcpTransport`] / [`TcpRpcServer`] — length-prefixed frames over real
//!   sockets, with per-call deadlines and reconnect with bounded
//!   exponential backoff.
//! * [`ChaosTransport`] — a decorator over either backend injecting faults
//!   from a seeded, replayable schedule (dropped requests/responses,
//!   timeouts, disconnects, delays, crash windows), the scripted-failure
//!   harness the recovery tests are built on.
//!
//! [`NodeProxy`] wraps any transport with the per-node lock the paper
//! mandates, and [`RpcError`] classifies failures (server fault vs. codec
//! vs. timeout/disconnect) so the engine can decide what is recoverable.
//!
//! For testbed-scale fan-out, [`reactor`] multiplexes every NodeManager
//! link on one thread with a hand-rolled readiness loop, and [`batch`]
//! packs many per-node lifecycle calls (each with its own `__idem` key)
//! into a single frame served by sub-master relays — see DESIGN.md §13.

pub mod batch;
pub mod chaos;
pub mod error;
pub mod job;
pub mod message;
pub mod reactor;
pub mod tcp;
pub mod transport;
pub mod value;

pub use batch::{
    pack_batch, pack_batch_response, relay_registry, unpack_batch, unpack_batch_response,
    BatchEntry, BATCH_METHOD,
};
pub use chaos::{fault_at, ChaosOptions, ChaosStats, ChaosTransport, FaultAction};
pub use error::{RpcError, FAULT_INTERNAL_ERROR, FAULT_NO_SUCH_METHOD, FAULT_PARSE_ERROR};
pub use job::{
    pack_frame, pack_plan, pack_results_page, pack_status, pack_status_list, pack_submit,
    pack_submit_response, unpack_frame, unpack_plan, unpack_results_page, unpack_status,
    unpack_status_list, unpack_submit, unpack_submit_response, AggOp, AggSpec, CellValue, ExprSpec,
    FilterOp, JobId, JobResults, JobState, JobStatus, PlanSpec, ResultsPage, SubmitRequest,
    WireFrame, JOB_LIST, JOB_RESULTS, JOB_STATUS, JOB_SUBMIT, MAX_EXPR_DEPTH, QUERY_RUN,
    QUERY_TABLES,
};
#[allow(deprecated)]
pub use job::FilterSpec;
pub use message::{Fault, MethodCall, MethodResponse};
pub use reactor::{DispatchOutcome, NodeCall, Reactor, ReactorEndpoint, RetryConfig};
pub use tcp::{TcpOptions, TcpRpcServer, TcpTransport};
pub use transport::{
    response_to_result, Channel, NodeProxy, ServerRegistry, Transport, IDEMPOTENCY_MEMBER,
};
pub use value::Value;
