//! # excovery-rpc
//!
//! XML-RPC (paper §VI-A) between the controlling *ExperiMaster* and the
//! *NodeManager*s of the participating nodes.
//!
//! "Master and nodes are connected in a centralized client-server
//! architecture with a dedicated communication channel. They communicate
//! synchronously using extensible markup language remote procedure calls
//! (XML-RPC). [...] A node object presents the functions of one node to the
//! master program via XML-RPC and uses locking to allow only one access at
//! a time."
//!
//! The [`value`] and [`message`] modules implement the XML-RPC wire format
//! (values, method calls, responses, faults) on top of `excovery-xml`; the
//! [`transport`] module provides the dedicated in-memory control channel —
//! every call is genuinely serialized to XML and parsed back, so the codec
//! is exercised end-to-end exactly as on a real wire, while remaining
//! independent of the simulated experiment network (a platform requirement,
//! §IV-A1).

pub mod message;
pub mod transport;
pub mod value;

pub use message::{Fault, MethodCall, MethodResponse};
pub use transport::{Channel, NodeProxy, RpcError, ServerRegistry};
pub use value::Value;
