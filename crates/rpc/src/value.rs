//! XML-RPC values (<http://xmlrpc.scripting.com/spec.html>).
//!
//! All six scalar types plus `<array>` and `<struct>` are supported; the
//! untyped-`<value>`-is-a-string rule of the spec is honoured when
//! decoding.

use excovery_xml::{Element, XmlError};

/// An XML-RPC value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `<i4>`/`<int>`.
    Int(i32),
    /// `<boolean>` (0 or 1 on the wire).
    Bool(bool),
    /// `<string>` (or untyped value).
    String(String),
    /// `<double>`.
    Double(f64),
    /// `<dateTime.iso8601>`, kept as the raw ISO-8601 text.
    DateTime(String),
    /// `<base64>`, decoded to raw bytes.
    Base64(Vec<u8>),
    /// `<array>`.
    Array(Vec<Value>),
    /// `<struct>`; member order preserved.
    Struct(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::String(s.into())
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Double view (ints widen).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(f64::from(*i)),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Struct member lookup.
    pub fn member(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(m) => m.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Encodes into a `<value>` element.
    pub fn to_element(&self) -> Element {
        let mut value = Element::new("value");
        let inner = match self {
            Value::Int(v) => Element::with_text("int", v.to_string()),
            Value::Bool(b) => Element::with_text("boolean", if *b { "1" } else { "0" }),
            Value::String(s) => Element::with_text("string", s.clone()),
            Value::Double(d) => Element::with_text("double", format_double(*d)),
            Value::DateTime(s) => Element::with_text("dateTime.iso8601", s.clone()),
            Value::Base64(bytes) => Element::with_text("base64", base64_encode(bytes)),
            Value::Array(items) => {
                let mut data = Element::new("data");
                for item in items {
                    data.push(item.to_element());
                }
                let mut arr = Element::new("array");
                arr.push(data);
                arr
            }
            Value::Struct(members) => {
                let mut st = Element::new("struct");
                for (name, v) in members {
                    let mut member = Element::new("member");
                    member.push(Element::with_text("name", name.clone()));
                    member.push(v.to_element());
                    st.push(member);
                }
                st
            }
        };
        value.push(inner);
        value
    }

    /// Decodes from a `<value>` element.
    pub fn from_element(value: &Element) -> Result<Self, XmlError> {
        if value.name != "value" {
            return Err(XmlError::validation(format!(
                "expected <value>, found <{}>",
                value.name
            )));
        }
        let Some(inner) = value.elements().next() else {
            // Untyped value: its text is a string (whitespace significant).
            return Ok(Value::String(value.text_raw()));
        };
        match inner.name.as_str() {
            "i4" | "int" => inner
                .text()
                .parse()
                .map(Value::Int)
                .map_err(|_| XmlError::validation(format!("bad int '{}'", inner.text()))),
            "boolean" => match inner.text().as_str() {
                "1" | "true" => Ok(Value::Bool(true)),
                "0" | "false" => Ok(Value::Bool(false)),
                other => Err(XmlError::validation(format!("bad boolean '{other}'"))),
            },
            "string" => Ok(Value::String(inner.text_raw())),
            "double" => inner
                .text()
                .parse()
                .map(Value::Double)
                .map_err(|_| XmlError::validation(format!("bad double '{}'", inner.text()))),
            "dateTime.iso8601" => Ok(Value::DateTime(inner.text())),
            "base64" => base64_decode(&inner.text())
                .map(Value::Base64)
                .ok_or_else(|| XmlError::validation("bad base64 payload")),
            "array" => {
                let data = inner
                    .child("data")
                    .ok_or_else(|| XmlError::validation("<array> without <data>"))?;
                data.elements_named("value")
                    .map(Value::from_element)
                    .collect::<Result<_, _>>()
                    .map(Value::Array)
            }
            "struct" => {
                let mut members = Vec::new();
                for m in inner.elements_named("member") {
                    let name = m
                        .child("name")
                        .map(|n| n.text())
                        .ok_or_else(|| XmlError::validation("<member> without <name>"))?;
                    let v = m
                        .child("value")
                        .ok_or_else(|| XmlError::validation("<member> without <value>"))?;
                    members.push((name, Value::from_element(v)?));
                }
                Ok(Value::Struct(members))
            }
            other => Err(XmlError::validation(format!(
                "unknown value type <{other}>"
            ))),
        }
    }
}

fn format_double(d: f64) -> String {
    // Always include a decimal point so the value reparses as a double.
    if d == d.trunc() && d.is_finite() {
        format!("{d:.1}")
    } else {
        format!("{d}")
    }
}

// ---- base64 (standard alphabet, padding) ---------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (whitespace tolerated); `None` on bad input.
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let clean: Vec<u8> = text.bytes().filter(|b| !b" \t\r\n".contains(b)).collect();
    if !clean.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(clean.len() / 4 * 3);
    for chunk in clean.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].iter().any(|&c| val(c).is_none()) {
            return None;
        }
        let n = chunk[..4 - pad]
            .iter()
            .map(|&c| val(c).unwrap())
            .fold(0u32, |acc, v| (acc << 6) | v)
            << (6 * pad);
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let e = v.to_element();
        let back = Value::from_element(&e).expect("decode");
        assert_eq!(back, v, "element was {e:?}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Value::Int(-42));
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::str("hello <world> & friends"));
        roundtrip(Value::Double(3.25));
        roundtrip(Value::Double(-7.0));
        roundtrip(Value::DateTime("19980717T14:08:55".into()));
        roundtrip(Value::Base64(vec![0, 1, 2, 253, 254, 255]));
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(Value::Array(vec![
            Value::Int(1),
            Value::str("two"),
            Value::Bool(false),
        ]));
        roundtrip(Value::Struct(vec![
            ("run_id".into(), Value::Int(7)),
            (
                "nested".into(),
                Value::Struct(vec![("deep".into(), Value::Array(vec![Value::Int(9)]))]),
            ),
        ]));
        roundtrip(Value::Array(vec![]));
        roundtrip(Value::Struct(vec![]));
    }

    #[test]
    fn untyped_value_is_string() {
        let e = excovery_xml::parse("<value>plain</value>").unwrap();
        assert_eq!(Value::from_element(e.root()).unwrap(), Value::str("plain"));
    }

    #[test]
    fn i4_alias_accepted() {
        let e = excovery_xml::parse("<value><i4>17</i4></value>").unwrap();
        assert_eq!(Value::from_element(e.root()).unwrap(), Value::Int(17));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_double(), Some(3.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let s = Value::Struct(vec![("k".into(), Value::Int(1))]);
        assert_eq!(s.member("k"), Some(&Value::Int(1)));
        assert_eq!(s.member("nope"), None);
        assert_eq!(Value::Int(1).member("k"), None);
    }

    #[test]
    fn bad_inputs_rejected() {
        for bad in [
            "<value><int>xyz</int></value>",
            "<value><boolean>7</boolean></value>",
            "<value><double>abc</double></value>",
            "<value><array/></value>",
            "<value><unknown>1</unknown></value>",
            "<value><base64>!!!</base64></value>",
        ] {
            let e = excovery_xml::parse(bad).unwrap();
            assert!(Value::from_element(e.root()).is_err(), "{bad}");
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert_eq!(base64_decode("Zm 8=\n").unwrap(), b"fo");
        assert!(base64_decode("abc").is_none(), "length not multiple of 4");
        assert!(base64_decode("Zg=a").is_none(), "padding in the middle");
    }

    #[test]
    fn base64_roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn double_formatting_reparses() {
        for d in [0.0, -1.0, 2.5, 1e-9, 12345.6789] {
            let e = Value::Double(d).to_element();
            assert_eq!(Value::from_element(&e).unwrap(), Value::Double(d));
        }
    }
}
