//! Deterministic fault injection for the control channel.
//!
//! Dfuntest-style distributed test harnesses must script their own
//! failures to be credible: waiting for the network to misbehave is not a
//! test plan. [`ChaosTransport`] decorates any [`Transport`] and injects
//! faults from a *seeded, replayable schedule*: every call is assigned a
//! monotonically increasing index, and the fault decision for index `i`
//! is a pure function of `(seed, i)` plus the configured windows. Running
//! the same master logic against the same [`ChaosOptions`] therefore
//! reproduces the exact same fault sequence — a failing chaos run is
//! replayed by its seed alone.
//!
//! Injected fault classes (all surfacing as the [`RpcError`] variants the
//! engine already classifies via [`RpcError::is_retryable`]):
//!
//! * **DropRequest** — the call never reaches the server; the caller sees
//!   a retryable [`RpcError::Io`].
//! * **DropResponse** — the server *executes* the call but the response is
//!   lost; the caller sees [`RpcError::Timeout`]. This is the class that
//!   forces idempotent server-side dispatch: a blind retry would execute
//!   the procedure twice.
//! * **InjectTimeout** — the deadline elapses before the request is sent.
//! * **InjectDisconnected** — the connection drops before the request.
//! * **Delay** — the response is delivered, late (bounded wall-clock
//!   sleep; simulated time is unaffected).
//! * **Crash windows** — contiguous call-index ranges `[start, end)`
//!   during which the node is down: every call fails with
//!   [`RpcError::Disconnected`] without reaching the server.
//!
//! A schedule whose `horizon_calls` is finite and whose crash windows are
//! bounded *eventually clears*: past the horizon every call passes
//! through untouched, so a bounded-retry master always converges.

use crate::error::RpcError;
use crate::message::{MethodCall, MethodResponse};
use crate::transport::Transport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Configuration of a seeded fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// Seed of the schedule; the fault decision for call index `i` is a
    /// pure function of `(seed, i)`.
    pub seed: u64,
    /// Probability in `[0, 1]` that a call below the horizon draws a
    /// fault (crash windows apply regardless of this rate).
    pub fault_rate: f64,
    /// Call index after which no rate-based faults are injected. A finite
    /// horizon makes the schedule eventually-clearing.
    pub horizon_calls: u64,
    /// Hard "node crash" windows as `[start, end)` call-index ranges:
    /// inside a window every call fails without reaching the server.
    pub crash_windows: Vec<(u64, u64)>,
    /// Upper bound for injected response delays (wall clock). Zero
    /// disables the delay class.
    pub max_delay_ms: u64,
}

impl ChaosOptions {
    /// A schedule that injects nothing (pass-through).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            fault_rate: 0.0,
            horizon_calls: 0,
            crash_windows: Vec::new(),
            max_delay_ms: 0,
        }
    }

    /// A moderate eventually-clearing schedule: `fault_rate` faults over
    /// the first `horizon_calls` calls, no crash windows, 1 ms delays.
    pub fn flaky(seed: u64, fault_rate: f64, horizon_calls: u64) -> Self {
        Self {
            seed,
            fault_rate,
            horizon_calls,
            crash_windows: Vec::new(),
            max_delay_ms: 1,
        }
    }

    /// True if no fault can ever be injected after some call index — the
    /// precondition for crash-free convergence under bounded retry.
    pub fn eventually_clears(&self) -> bool {
        // Rate faults stop at the horizon; windows are finite by type.
        self.fault_rate <= 0.0 || self.horizon_calls < u64::MAX
    }

    /// Longest crash window, in calls — a master's retry budget must
    /// exceed this for a logical call to survive the window.
    pub fn longest_crash_window(&self) -> u64 {
        self.crash_windows
            .iter()
            .map(|(s, e)| e.saturating_sub(*s))
            .max()
            .unwrap_or(0)
    }
}

/// The fault decision for one call index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the call untouched.
    Pass,
    /// Fail without reaching the server (`Io`).
    DropRequest,
    /// Execute on the server, then lose the response (`Timeout`).
    DropResponse,
    /// Fail with an injected `Timeout` before the request is sent.
    InjectTimeout,
    /// Fail with an injected `Disconnected` before the request is sent.
    InjectDisconnected,
    /// Deliver the call after a wall-clock delay of the given ms.
    Delay(u64),
    /// The node is inside a crash window (`Disconnected`).
    Crash,
}

impl FaultAction {
    /// A stable, low-cardinality label for this action — the `kind`
    /// label of the `rpc_chaos_injections_total` metric. Like
    /// [`RpcError::kind_label`], these strings are a public contract and
    /// never change once shipped.
    pub fn label(&self) -> &'static str {
        match self {
            FaultAction::Pass => "pass",
            FaultAction::DropRequest => "drop_request",
            FaultAction::DropResponse => "drop_response",
            FaultAction::InjectTimeout => "inject_timeout",
            FaultAction::InjectDisconnected => "inject_disconnected",
            FaultAction::Delay(_) => "delay",
            FaultAction::Crash => "crash",
        }
    }
}

/// splitmix64: a tiny, high-quality deterministic mixer, so the schedule
/// needs no external RNG dependency and is identical on every platform.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The fault decision for call index `i` under `opts` — a pure function,
/// exposed so tests (and humans replaying a seed) can print a schedule
/// without performing any call.
pub fn fault_at(opts: &ChaosOptions, i: u64) -> FaultAction {
    if opts.crash_windows.iter().any(|(s, e)| i >= *s && i < *e) {
        return FaultAction::Crash;
    }
    if i >= opts.horizon_calls || opts.fault_rate <= 0.0 {
        return FaultAction::Pass;
    }
    let roll = splitmix64(opts.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // Top 53 bits → uniform f64 in [0, 1).
    let uniform = (roll >> 11) as f64 / (1u64 << 53) as f64;
    if uniform >= opts.fault_rate.clamp(0.0, 1.0) {
        return FaultAction::Pass;
    }
    // A second independent draw picks the fault class.
    match splitmix64(roll) % 5 {
        0 => FaultAction::DropRequest,
        1 => FaultAction::DropResponse,
        2 => FaultAction::InjectTimeout,
        3 => FaultAction::InjectDisconnected,
        _ if opts.max_delay_ms > 0 => {
            FaultAction::Delay(1 + splitmix64(roll ^ 1) % opts.max_delay_ms)
        }
        _ => FaultAction::DropRequest,
    }
}

/// Counters of what a [`ChaosTransport`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Calls delivered untouched.
    pub passed: u64,
    /// Calls delivered after an injected delay.
    pub delayed: u64,
    /// Requests dropped before reaching the server.
    pub dropped_requests: u64,
    /// Responses dropped after server-side execution.
    pub dropped_responses: u64,
    /// Injected timeouts (request never sent).
    pub injected_timeouts: u64,
    /// Injected disconnects (request never sent).
    pub injected_disconnects: u64,
    /// Calls rejected inside a crash window.
    pub crash_rejections: u64,
}

impl ChaosStats {
    /// Total faults injected (everything except passed/delayed delivery).
    pub fn faults(&self) -> u64 {
        self.dropped_requests
            + self.dropped_responses
            + self.injected_timeouts
            + self.injected_disconnects
            + self.crash_rejections
    }
}

/// A [`Transport`] decorator injecting faults from a seeded schedule.
///
/// Thread-safe like any transport; the call index is a shared atomic, so
/// with a serialized caller (the engine's per-node [`NodeProxy`] lock)
/// the index sequence — and therefore the whole fault schedule — is
/// deterministic.
///
/// [`NodeProxy`]: crate::transport::NodeProxy
pub struct ChaosTransport<T> {
    inner: T,
    opts: ChaosOptions,
    next_call: AtomicU64,
    passed: AtomicU64,
    delayed: AtomicU64,
    dropped_requests: AtomicU64,
    dropped_responses: AtomicU64,
    injected_timeouts: AtomicU64,
    injected_disconnects: AtomicU64,
    crash_rejections: AtomicU64,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the fault schedule described by `opts`.
    pub fn new(inner: T, opts: ChaosOptions) -> Self {
        Self {
            inner,
            opts,
            next_call: AtomicU64::new(0),
            passed: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            dropped_requests: AtomicU64::new(0),
            dropped_responses: AtomicU64::new(0),
            injected_timeouts: AtomicU64::new(0),
            injected_disconnects: AtomicU64::new(0),
            crash_rejections: AtomicU64::new(0),
        }
    }

    /// The schedule configuration.
    pub fn options(&self) -> &ChaosOptions {
        &self.opts
    }

    /// Calls attempted so far (the next call index).
    pub fn calls(&self) -> u64 {
        self.next_call.load(Ordering::SeqCst)
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            passed: self.passed.load(Ordering::SeqCst),
            delayed: self.delayed.load(Ordering::SeqCst),
            dropped_requests: self.dropped_requests.load(Ordering::SeqCst),
            dropped_responses: self.dropped_responses.load(Ordering::SeqCst),
            injected_timeouts: self.injected_timeouts.load(Ordering::SeqCst),
            injected_disconnects: self.injected_disconnects.load(Ordering::SeqCst),
            crash_rejections: self.crash_rejections.load(Ordering::SeqCst),
        }
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::SeqCst);
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn call(&self, call: &MethodCall) -> Result<MethodResponse, RpcError> {
        let index = self.next_call.fetch_add(1, Ordering::SeqCst);
        let action = fault_at(&self.opts, index);
        // Chaos calls are control-plane rate, so a registry lookup per
        // injection (rather than pre-resolved handles) is acceptable.
        if excovery_obs::enabled() && action != FaultAction::Pass {
            excovery_obs::global()
                .counter("rpc_chaos_injections_total", &[("kind", action.label())])
                .inc();
        }
        match action {
            FaultAction::Pass => {
                Self::bump(&self.passed);
                self.inner.call(call)
            }
            FaultAction::Delay(ms) => {
                let result = self.inner.call(call);
                std::thread::sleep(Duration::from_millis(ms));
                Self::bump(&self.delayed);
                result
            }
            FaultAction::DropRequest => {
                Self::bump(&self.dropped_requests);
                Err(RpcError::Io(format!(
                    "chaos: request '{}' dropped at call #{index}",
                    call.method
                )))
            }
            FaultAction::DropResponse => {
                // The server executes; the caller never learns. A correct
                // master retries with the same idempotency key and the
                // server replays the recorded response.
                let _ = self.inner.call(call);
                Self::bump(&self.dropped_responses);
                Err(RpcError::Timeout {
                    method: call.method.clone(),
                    after_ms: 0,
                })
            }
            FaultAction::InjectTimeout => {
                Self::bump(&self.injected_timeouts);
                Err(RpcError::Timeout {
                    method: call.method.clone(),
                    after_ms: 0,
                })
            }
            FaultAction::InjectDisconnected => {
                Self::bump(&self.injected_disconnects);
                Err(RpcError::Disconnected(format!(
                    "chaos: link to server lost at call #{index}"
                )))
            }
            FaultAction::Crash => {
                Self::bump(&self.crash_rejections);
                Err(RpcError::Disconnected(format!(
                    "chaos: node crashed (window hit at call #{index})"
                )))
            }
        }
    }

    fn endpoint(&self) -> String {
        format!("chaos(seed={})+{}", self.opts.seed, self.inner.endpoint())
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Channel, NodeProxy, ServerRegistry};
    use crate::value::Value;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn counting_channel() -> (Channel, Arc<AtomicUsize>) {
        let executed = Arc::new(AtomicUsize::new(0));
        let e2 = Arc::clone(&executed);
        let mut reg = ServerRegistry::new();
        reg.register("ping", move |_| {
            e2.fetch_add(1, Ordering::SeqCst);
            Ok(Value::str("pong"))
        });
        (Channel::new(reg), executed)
    }

    #[test]
    fn quiet_schedule_is_transparent() {
        let (ch, executed) = counting_channel();
        let t = ChaosTransport::new(ch, ChaosOptions::quiet(1));
        let proxy = NodeProxy::new("n0", t);
        for _ in 0..10 {
            assert_eq!(proxy.call("ping", vec![]).unwrap(), Value::str("pong"));
        }
        assert_eq!(executed.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_index() {
        let opts = ChaosOptions::flaky(42, 0.5, 1000);
        let a: Vec<FaultAction> = (0..200).map(|i| fault_at(&opts, i)).collect();
        let b: Vec<FaultAction> = (0..200).map(|i| fault_at(&opts, i)).collect();
        assert_eq!(a, b);
        // A different seed produces a different schedule.
        let other = ChaosOptions::flaky(43, 0.5, 1000);
        let c: Vec<FaultAction> = (0..200).map(|i| fault_at(&other, i)).collect();
        assert_ne!(a, c);
        // The rate is roughly honoured.
        let faults = a.iter().filter(|f| !matches!(f, FaultAction::Pass)).count();
        assert!((60..160).contains(&faults), "{faults} faults at rate 0.5");
    }

    #[test]
    fn faults_clear_past_the_horizon() {
        let opts = ChaosOptions::flaky(7, 1.0, 25);
        for i in 0..25 {
            assert_ne!(fault_at(&opts, i), FaultAction::Pass, "index {i}");
        }
        for i in 25..200 {
            assert_eq!(fault_at(&opts, i), FaultAction::Pass, "index {i}");
        }
        assert!(opts.eventually_clears());
    }

    #[test]
    fn crash_window_rejects_every_call_inside() {
        let mut opts = ChaosOptions::quiet(3);
        opts.crash_windows = vec![(2, 5)];
        assert_eq!(opts.longest_crash_window(), 3);
        let (ch, executed) = counting_channel();
        let t = ChaosTransport::new(ch, opts);
        let proxy = NodeProxy::new("n0", t);
        let mut outcomes = Vec::new();
        for _ in 0..7 {
            outcomes.push(proxy.call("ping", vec![]).is_ok());
        }
        assert_eq!(outcomes, vec![true, true, false, false, false, true, true]);
        assert_eq!(
            executed.load(Ordering::SeqCst),
            4,
            "crashed calls never execute"
        );
    }

    #[test]
    fn drop_response_executes_server_side_exactly_once() {
        let opts = ChaosOptions {
            seed: 0,
            fault_rate: 0.0,
            horizon_calls: 0,
            crash_windows: Vec::new(),
            max_delay_ms: 0,
        };
        let (ch, executed) = counting_channel();
        let chaos = ChaosTransport::new(ch, opts);
        // Drive the DropResponse path directly: the schedule API is pure,
        // so force the action by calling the inner semantics through a
        // crafted schedule instead.
        let forced = ChaosOptions {
            seed: 99,
            fault_rate: 1.0,
            horizon_calls: 1,
            crash_windows: Vec::new(),
            max_delay_ms: 0,
        };
        // Find a seed whose first action is DropResponse so the test is
        // deterministic and self-contained.
        let seed = (0..10_000u64)
            .find(|s| {
                fault_at(
                    &ChaosOptions {
                        seed: *s,
                        ..forced.clone()
                    },
                    0,
                ) == FaultAction::DropResponse
            })
            .expect("some seed yields DropResponse first");
        drop(chaos);
        let (ch, executed2) = counting_channel();
        let t = ChaosTransport::new(ch, ChaosOptions { seed, ..forced });
        let proxy = NodeProxy::new("n0", t);
        // First call: executed server-side, but reported as a timeout.
        match proxy.call("ping", vec![]) {
            Err(RpcError::Timeout { .. }) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(executed2.load(Ordering::SeqCst), 1);
        // Retry (past the horizon): executes again — without server-side
        // dedup this is the double-execution hazard the engine must absorb.
        proxy.call("ping", vec![]).unwrap();
        assert_eq!(executed2.load(Ordering::SeqCst), 2);
        let _ = executed;
    }

    #[test]
    fn stats_account_for_every_call() {
        let opts = ChaosOptions {
            seed: 5,
            fault_rate: 0.7,
            horizon_calls: 40,
            crash_windows: vec![(10, 14)],
            max_delay_ms: 1,
        };
        let (ch, _executed) = counting_channel();
        let t = ChaosTransport::new(ch, opts);
        assert!(t.endpoint().starts_with("chaos(seed=5)+"));
        let proxy = NodeProxy::from_arc("n0", Arc::new(t));
        for _ in 0..60 {
            let _ = proxy.call("ping", vec![]);
        }
        // The proxy consumed the transport; re-create to check stats via
        // a directly held instance instead.
        let (ch, _executed) = counting_channel();
        let t = ChaosTransport::new(
            ch,
            ChaosOptions {
                seed: 5,
                fault_rate: 0.7,
                horizon_calls: 40,
                crash_windows: vec![(10, 14)],
                max_delay_ms: 1,
            },
        );
        for _ in 0..60 {
            let _ = Transport::call(&t, &MethodCall::new("ping", vec![]));
        }
        let stats = t.stats();
        assert_eq!(t.calls(), 60);
        assert_eq!(
            stats.passed + stats.delayed + stats.faults(),
            60,
            "{stats:?}"
        );
        assert_eq!(stats.crash_rejections, 4);
        assert!(stats.faults() > 10, "{stats:?}");
    }
}
