//! Wire schemas for the experiment server: the `job.*` and `query.*`
//! method families.
//!
//! The server (`excovery-server`) accepts XML experiment descriptions
//! over the framed rpc protocol, queues them in its L4 repository and
//! answers remote-analysis queries against completed campaigns. This
//! module owns the request/response *codecs* only — typed structs with
//! `pack_*`/`unpack_*` inverses through [`Value`], mirroring the batch
//! codec (`crate::batch`) — so client, server and the property suite
//! share one wire vocabulary without the rpc crate learning anything
//! about campaign execution.
//!
//! Numeric fields that may exceed `i32` (job ids, run counts, digests)
//! travel as decimal strings: XML-RPC's `<int>` is 32-bit, and the
//! precedent is the engine's `measure_sync` response (`offset_ns` as a
//! string).
//!
//! Submission is idempotent at two layers. The transport layer attaches
//! a `__idem` key per call ([`crate::transport::IDEMPOTENCY_MEMBER`]),
//! deduplicating retries of one client incarnation in the server's
//! bounded in-memory cache. The application layer carries a durable
//! `submit_key` inside [`SubmitRequest`]: the server journals it with
//! the job, so re-submitting the same key — from a new connection, after
//! a server restart, any time — returns the original [`JobId`] instead
//! of enqueuing a duplicate campaign.

use crate::error::{RpcError, FAULT_PARSE_ERROR};
use crate::message::{Fault, MethodCall};
use crate::value::Value;

/// Monotonic identifier the server assigns to an accepted submission.
pub type JobId = u64;

/// Wire name: submit an experiment description, returns the job id.
pub const JOB_SUBMIT: &str = "job.submit";
/// Wire name: status of one job (`job_id` as a decimal-string param).
pub const JOB_STATUS: &str = "job.status";
/// Wire name: status of every job in the repository.
pub const JOB_LIST: &str = "job.list";
/// Wire name: results of a completed job (status + packaged database).
pub const JOB_RESULTS: &str = "job.results";
/// Wire name: table names of a completed job's warehouse.
pub const QUERY_TABLES: &str = "query.tables";
/// Wire name: run a [`PlanSpec`] against a completed job's warehouse.
pub const QUERY_RUN: &str = "query.run";

fn parse_fault(what: impl std::fmt::Display) -> Fault {
    Fault::new(FAULT_PARSE_ERROR, what.to_string())
}

fn str_member(v: &Value, name: &str, ctx: &str) -> Result<String, Fault> {
    v.member(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| parse_fault(format!("{ctx}: missing string member '{name}'")))
}

fn u64_member(v: &Value, name: &str, ctx: &str) -> Result<u64, Fault> {
    str_member(v, name, ctx)?
        .parse()
        .map_err(|_| parse_fault(format!("{ctx}: member '{name}' is not a u64 string")))
}

// ---- job.submit ------------------------------------------------------------

/// A campaign submission: who is asking, which engine preset to run the
/// description on, the description itself, and the durable idempotency
/// key that makes re-submission return the original job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Tenant name — the fair-share scheduling unit.
    pub tenant: String,
    /// Engine preset name (`grid_default`, `wired_lan`, `lossy_mesh`).
    pub preset: String,
    /// The experiment description as XML (level-1 artifact).
    pub description_xml: String,
    /// Durable dedup key: equal keys resolve to the same [`JobId`].
    pub submit_key: String,
}

/// Packs a submission into a [`JOB_SUBMIT`] call (one struct parameter).
pub fn pack_submit(req: &SubmitRequest) -> MethodCall {
    MethodCall::new(
        JOB_SUBMIT,
        vec![Value::Struct(vec![
            ("tenant".into(), Value::str(req.tenant.clone())),
            ("preset".into(), Value::str(req.preset.clone())),
            (
                "description".into(),
                Value::str(req.description_xml.clone()),
            ),
            ("submit_key".into(), Value::str(req.submit_key.clone())),
        ])],
    )
}

/// Inverse of [`pack_submit`]; malformed shapes fault with
/// [`FAULT_PARSE_ERROR`].
pub fn unpack_submit(call: &MethodCall) -> Result<SubmitRequest, Fault> {
    if call.method != JOB_SUBMIT {
        return Err(parse_fault(format!(
            "'{}' is not a {JOB_SUBMIT} call",
            call.method
        )));
    }
    let arg = call
        .params
        .first()
        .ok_or_else(|| parse_fault("job.submit: missing request struct"))?;
    Ok(SubmitRequest {
        tenant: str_member(arg, "tenant", "job.submit")?,
        preset: str_member(arg, "preset", "job.submit")?,
        description_xml: str_member(arg, "description", "job.submit")?,
        submit_key: str_member(arg, "submit_key", "job.submit")?,
    })
}

/// Encodes the [`JOB_SUBMIT`] response: the assigned (or deduplicated)
/// job id plus whether this submission created a new job.
pub fn pack_submit_response(job_id: JobId, created: bool) -> Value {
    Value::Struct(vec![
        ("job_id".into(), Value::str(job_id.to_string())),
        ("created".into(), Value::Bool(created)),
    ])
}

/// Inverse of [`pack_submit_response`].
pub fn unpack_submit_response(v: &Value) -> Result<(JobId, bool), RpcError> {
    let job_id =
        u64_member(v, "job_id", "job.submit response").map_err(|f| RpcError::Codec(f.message))?;
    let created = v
        .member("created")
        .and_then(Value::as_bool)
        .ok_or_else(|| RpcError::Codec("job.submit response: missing bool 'created'".into()))?;
    Ok((job_id, created))
}

// ---- job.status / job.list -------------------------------------------------

/// Lifecycle state of a queued campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Journalled, no run executed yet.
    Queued,
    /// At least one scheduler slice has executed.
    Running,
    /// All runs complete and the level-3 package written.
    Completed,
    /// Execution surfaced an engine error (recorded in `error`).
    Failed,
}

impl JobState {
    /// Canonical wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "failed" => Some(JobState::Failed),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One job's status as reported by [`JOB_STATUS`] / [`JOB_LIST`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The server-assigned id.
    pub job_id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Experiment name from the description.
    pub name: String,
    /// Engine preset the campaign runs on.
    pub preset: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Total runs in the campaign's plan.
    pub runs_total: u64,
    /// Runs whose completion marker has landed.
    pub runs_completed: u64,
    /// `ExperimentOutcome::digest()` once completed.
    pub digest: Option<u64>,
    /// Engine error message if the job failed.
    pub error: Option<String>,
}

/// Encodes one [`JobStatus`] as a wire struct.
pub fn pack_status(s: &JobStatus) -> Value {
    let mut members = vec![
        ("job_id".into(), Value::str(s.job_id.to_string())),
        ("tenant".into(), Value::str(s.tenant.clone())),
        ("name".into(), Value::str(s.name.clone())),
        ("preset".into(), Value::str(s.preset.clone())),
        ("state".into(), Value::str(s.state.as_str())),
        ("runs_total".into(), Value::str(s.runs_total.to_string())),
        (
            "runs_completed".into(),
            Value::str(s.runs_completed.to_string()),
        ),
    ];
    if let Some(d) = s.digest {
        members.push(("digest".into(), Value::str(d.to_string())));
    }
    if let Some(e) = &s.error {
        members.push(("error".into(), Value::str(e.clone())));
    }
    Value::Struct(members)
}

/// Inverse of [`pack_status`].
pub fn unpack_status(v: &Value) -> Result<JobStatus, RpcError> {
    let codec = |f: Fault| RpcError::Codec(f.message);
    let state_str = str_member(v, "state", "job status").map_err(codec)?;
    let state = JobState::parse(&state_str)
        .ok_or_else(|| RpcError::Codec(format!("job status: unknown state '{state_str}'")))?;
    let digest = match v.member("digest") {
        None => None,
        Some(_) => Some(u64_member(v, "digest", "job status").map_err(codec)?),
    };
    Ok(JobStatus {
        job_id: u64_member(v, "job_id", "job status").map_err(codec)?,
        tenant: str_member(v, "tenant", "job status").map_err(codec)?,
        name: str_member(v, "name", "job status").map_err(codec)?,
        preset: str_member(v, "preset", "job status").map_err(codec)?,
        state,
        runs_total: u64_member(v, "runs_total", "job status").map_err(codec)?,
        runs_completed: u64_member(v, "runs_completed", "job status").map_err(codec)?,
        digest,
        error: v
            .member("error")
            .and_then(Value::as_str)
            .map(str::to_string),
    })
}

/// Encodes the [`JOB_LIST`] response: statuses in ascending job-id order.
pub fn pack_status_list(list: &[JobStatus]) -> Value {
    Value::Array(list.iter().map(pack_status).collect())
}

/// Inverse of [`pack_status_list`].
pub fn unpack_status_list(v: &Value) -> Result<Vec<JobStatus>, RpcError> {
    v.as_array()
        .ok_or_else(|| RpcError::Codec("job.list response is not an array".into()))?
        .iter()
        .map(unpack_status)
        .collect()
}

// ---- job.results -----------------------------------------------------------

/// Results of a completed campaign: final status plus the packaged
/// level-3 database (`.expdb` bytes) for local analysis. This is the
/// client-side assembly of one or more [`ResultsPage`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResults {
    /// Final status (state [`JobState::Completed`], digest set).
    pub status: JobStatus,
    /// The serialized level-3 package.
    pub package: Vec<u8>,
}

/// Default page size for [`JOB_RESULTS`] downloads. Real packages run
/// to tens of megabytes, and the frame codec rejects frames above
/// [`crate::MAX_FRAME_BYTES`] (16 MiB) — so the package ships in pages.
/// 8 MiB of payload is ~10.7 MiB after Base64, comfortably under the
/// cap with the XML envelope around it.
pub const RESULTS_PAGE_BYTES: u64 = 8 * 1024 * 1024;

/// One page of a [`JOB_RESULTS`] download: a byte range of the package
/// plus the total size, so the client knows when it has the whole file.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsPage {
    /// Final status (state [`JobState::Completed`], digest set).
    pub status: JobStatus,
    /// Total package size in bytes.
    pub total: u64,
    /// Byte offset of this page within the package.
    pub offset: u64,
    /// The page payload (`total - offset` capped at the server's page
    /// size; empty only when the package itself is empty).
    pub chunk: Vec<u8>,
}

/// Encodes a [`JOB_RESULTS`] response page.
pub fn pack_results_page(p: &ResultsPage) -> Value {
    Value::Struct(vec![
        ("status".into(), pack_status(&p.status)),
        ("total".into(), Value::str(p.total.to_string())),
        ("offset".into(), Value::str(p.offset.to_string())),
        ("chunk".into(), Value::Base64(p.chunk.clone())),
    ])
}

/// Inverse of [`pack_results_page`].
pub fn unpack_results_page(v: &Value) -> Result<ResultsPage, RpcError> {
    let codec = |f: Fault| RpcError::Codec(f.message);
    let status = v
        .member("status")
        .ok_or_else(|| RpcError::Codec("job.results response: missing 'status'".into()))?;
    let chunk = match v.member("chunk") {
        Some(Value::Base64(b)) => b.clone(),
        _ => {
            return Err(RpcError::Codec(
                "job.results response: missing 'chunk'".into(),
            ))
        }
    };
    Ok(ResultsPage {
        status: unpack_status(status)?,
        total: u64_member(v, "total", "job.results response").map_err(codec)?,
        offset: u64_member(v, "offset", "job.results response").map_err(codec)?,
        chunk,
    })
}

// ---- query.* ---------------------------------------------------------------

/// One cell of a remote query result — the wire mirror of the query
/// crate's column value (the rpc crate stays analysis-agnostic).
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// SQL NULL.
    Null,
    /// 64-bit integer (as a decimal string on the wire).
    I64(i64),
    /// Double-precision float.
    F64(f64),
    /// Interned string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

fn pack_cell(c: &CellValue) -> Value {
    match c {
        CellValue::Null => Value::Struct(vec![("t".into(), Value::str("n"))]),
        CellValue::I64(i) => Value::Struct(vec![
            ("t".into(), Value::str("i")),
            ("v".into(), Value::str(i.to_string())),
        ]),
        CellValue::F64(f) => Value::Struct(vec![
            ("t".into(), Value::str("f")),
            ("v".into(), Value::Double(*f)),
        ]),
        CellValue::Str(s) => Value::Struct(vec![
            ("t".into(), Value::str("s")),
            ("v".into(), Value::str(s.clone())),
        ]),
        CellValue::Bytes(b) => Value::Struct(vec![
            ("t".into(), Value::str("b")),
            ("v".into(), Value::Base64(b.clone())),
        ]),
    }
}

fn unpack_cell(v: &Value) -> Result<CellValue, RpcError> {
    let bad = |what: &str| RpcError::Codec(format!("frame cell: {what}"));
    let tag = v
        .member("t")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing tag 't'"))?;
    match tag {
        "n" => Ok(CellValue::Null),
        "i" => v
            .member("v")
            .and_then(Value::as_str)
            .and_then(|s| s.parse().ok())
            .map(CellValue::I64)
            .ok_or_else(|| bad("bad i64 payload")),
        "f" => match v.member("v") {
            Some(Value::Double(f)) => Ok(CellValue::F64(*f)),
            _ => Err(bad("bad f64 payload")),
        },
        "s" => v
            .member("v")
            .and_then(Value::as_str)
            .map(|s| CellValue::Str(s.to_string()))
            .ok_or_else(|| bad("bad string payload")),
        "b" => match v.member("v") {
            Some(Value::Base64(b)) => Ok(CellValue::Bytes(b.clone())),
            _ => Err(bad("bad bytes payload")),
        },
        other => Err(bad(&format!("unknown tag '{other}'"))),
    }
}

/// A query result as shipped over the wire: column names plus row-major
/// cells, the transport twin of the query crate's `Frame`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireFrame {
    /// Column names in output order.
    pub columns: Vec<String>,
    /// Row-major cells; every row has `columns.len()` entries.
    pub rows: Vec<Vec<CellValue>>,
}

/// Encodes a [`WireFrame`] as the [`QUERY_RUN`] response value.
pub fn pack_frame(f: &WireFrame) -> Value {
    Value::Struct(vec![
        (
            "columns".into(),
            Value::Array(f.columns.iter().map(Value::str).collect()),
        ),
        (
            "rows".into(),
            Value::Array(
                f.rows
                    .iter()
                    .map(|r| Value::Array(r.iter().map(pack_cell).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Inverse of [`pack_frame`].
pub fn unpack_frame(v: &Value) -> Result<WireFrame, RpcError> {
    let columns = v
        .member("columns")
        .and_then(Value::as_array)
        .ok_or_else(|| RpcError::Codec("frame: missing 'columns' array".into()))?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| RpcError::Codec("frame: non-string column name".into()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let rows = v
        .member("rows")
        .and_then(Value::as_array)
        .ok_or_else(|| RpcError::Codec("frame: missing 'rows' array".into()))?
        .iter()
        .map(|r| {
            r.as_array()
                .ok_or_else(|| RpcError::Codec("frame: row is not an array".into()))?
                .iter()
                .map(unpack_cell)
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WireFrame { columns, rows })
}

/// Comparison operator of a remote filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl FilterOp {
    /// Canonical wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FilterOp::Eq => "eq",
            FilterOp::Ne => "ne",
            FilterOp::Lt => "lt",
            FilterOp::Le => "le",
            FilterOp::Gt => "gt",
            FilterOp::Ge => "ge",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "eq" => Some(FilterOp::Eq),
            "ne" => Some(FilterOp::Ne),
            "lt" => Some(FilterOp::Lt),
            "le" => Some(FilterOp::Le),
            "gt" => Some(FilterOp::Gt),
            "ge" => Some(FilterOp::Ge),
            _ => None,
        }
    }
}

/// A remote filter: `column <op> literal`.
///
/// Superseded by [`ExprSpec`], which composes the same comparisons into
/// arbitrary `and`/`or`/`not` trees. Kept only so pre-tree clients keep
/// parsing; [`unpack_plan`] folds the legacy `filter` member into a
/// single-node predicate tree.
#[deprecated(since = "0.1.0", note = "use the `ExprSpec` predicate tree")]
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    /// Column the predicate reads.
    pub column: String,
    /// Comparison operator.
    pub op: FilterOp,
    /// Literal to compare against.
    pub value: CellValue,
}

/// A serializable filter predicate: comparisons composed with boolean
/// connectives, the wire twin of the query crate's `Expr` tree. SQL
/// three-valued NULL semantics are the executor's business; the wire
/// form just names columns, operators and literals.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprSpec {
    /// `column <op> literal`.
    Cmp {
        /// Column the comparison reads.
        column: String,
        /// Comparison operator.
        op: FilterOp,
        /// Literal to compare against.
        value: CellValue,
    },
    /// Both sides must hold.
    And(Box<ExprSpec>, Box<ExprSpec>),
    /// Either side must hold.
    Or(Box<ExprSpec>, Box<ExprSpec>),
    /// The inner predicate must not hold.
    Not(Box<ExprSpec>),
}

impl ExprSpec {
    /// A `column <op> literal` leaf.
    pub fn cmp(column: impl Into<String>, op: FilterOp, value: CellValue) -> Self {
        ExprSpec::Cmp {
            column: column.into(),
            op,
            value,
        }
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: ExprSpec) -> Self {
        ExprSpec::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: ExprSpec) -> Self {
        ExprSpec::Or(Box::new(self), Box::new(rhs))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        ExprSpec::Not(Box::new(self))
    }
}

/// Depth cap for predicate trees on the wire: deep enough for any plan a
/// builder chain produces, shallow enough that recursive decoding of a
/// hostile frame cannot exhaust the stack.
pub const MAX_EXPR_DEPTH: usize = 64;

fn pack_expr(e: &ExprSpec) -> Value {
    match e {
        ExprSpec::Cmp { column, op, value } => Value::Struct(vec![
            ("t".into(), Value::str("cmp")),
            ("column".into(), Value::str(column.clone())),
            ("op".into(), Value::str(op.as_str())),
            ("value".into(), pack_cell(value)),
        ]),
        ExprSpec::And(a, b) => Value::Struct(vec![
            ("t".into(), Value::str("and")),
            ("lhs".into(), pack_expr(a)),
            ("rhs".into(), pack_expr(b)),
        ]),
        ExprSpec::Or(a, b) => Value::Struct(vec![
            ("t".into(), Value::str("or")),
            ("lhs".into(), pack_expr(a)),
            ("rhs".into(), pack_expr(b)),
        ]),
        ExprSpec::Not(a) => Value::Struct(vec![
            ("t".into(), Value::str("not")),
            ("arg".into(), pack_expr(a)),
        ]),
    }
}

fn unpack_expr(v: &Value, depth: usize) -> Result<ExprSpec, Fault> {
    let ctx = "query predicate";
    if depth > MAX_EXPR_DEPTH {
        return Err(parse_fault(format!(
            "{ctx}: tree deeper than {MAX_EXPR_DEPTH}"
        )));
    }
    let branch = |name: &str| -> Result<Box<ExprSpec>, Fault> {
        let inner = v
            .member(name)
            .ok_or_else(|| parse_fault(format!("{ctx}: missing member '{name}'")))?;
        Ok(Box::new(unpack_expr(inner, depth + 1)?))
    };
    let tag = str_member(v, "t", ctx)?;
    match tag.as_str() {
        "cmp" => {
            let op_str = str_member(v, "op", ctx)?;
            Ok(ExprSpec::Cmp {
                column: str_member(v, "column", ctx)?,
                op: FilterOp::parse(&op_str)
                    .ok_or_else(|| parse_fault(format!("{ctx}: unknown op '{op_str}'")))?,
                value: unpack_cell(
                    v.member("value")
                        .ok_or_else(|| parse_fault(format!("{ctx}: cmp without value")))?,
                )
                .map_err(parse_fault)?,
            })
        }
        "and" => Ok(ExprSpec::And(branch("lhs")?, branch("rhs")?)),
        "or" => Ok(ExprSpec::Or(branch("lhs")?, branch("rhs")?)),
        "not" => Ok(ExprSpec::Not(branch("arg")?)),
        other => Err(parse_fault(format!("{ctx}: unknown node tag '{other}'"))),
    }
}

/// Aggregate operator of a remote plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Row count (needs no input column).
    Count,
    /// Sum of an input column.
    Sum,
    /// Arithmetic mean of an input column.
    Mean,
    /// Minimum of an input column.
    Min,
    /// Maximum of an input column.
    Max,
    /// Approximate quantile of an input column; the quantile rank rides
    /// in [`AggSpec::q`].
    Quantile,
}

impl AggOp {
    /// Canonical wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Mean => "mean",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Quantile => "quantile",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "count" => Some(AggOp::Count),
            "sum" => Some(AggOp::Sum),
            "mean" => Some(AggOp::Mean),
            "min" => Some(AggOp::Min),
            "max" => Some(AggOp::Max),
            "quantile" => Some(AggOp::Quantile),
            _ => None,
        }
    }
}

/// One aggregate of a remote plan: operator, optional input column
/// ([`AggOp::Count`] takes none), optional output name, and the
/// quantile rank for [`AggOp::Quantile`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate operator.
    pub op: AggOp,
    /// Input column; required for everything but [`AggOp::Count`].
    pub column: Option<String>,
    /// Output column name override.
    pub name: Option<String>,
    /// Quantile rank in `[0, 1]`; required for (and only meaningful
    /// with) [`AggOp::Quantile`].
    pub q: Option<f64>,
}

/// The one serializable logical-plan type: local `Scan` builder chains
/// lower into it (`Scan::to_spec`), the server executes it
/// (`Dataset::run_spec`), and standing queries refresh from it — a
/// single plan vocabulary end-to-end instead of parallel local/remote
/// dialects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanSpec {
    /// Table to scan.
    pub table: String,
    /// Optional filter predicate tree.
    pub predicate: Option<ExprSpec>,
    /// Group-by key columns.
    pub group_by: Vec<String>,
    /// Aggregates over the groups (or the whole table).
    pub aggs: Vec<AggSpec>,
    /// Output projection (empty = plan default).
    pub select: Vec<String>,
    /// Output sort column.
    pub sort_by: Option<String>,
}

/// Encodes a [`PlanSpec`] as the [`QUERY_RUN`] plan parameter.
///
/// A single-comparison predicate is emitted as the legacy flat `filter`
/// member (readable by pre-tree servers); anything deeper ships as the
/// `where` tree. [`unpack_plan`] accepts both, so either shape
/// round-trips to the same [`PlanSpec`].
pub fn pack_plan(p: &PlanSpec) -> Value {
    let mut members = vec![("table".into(), Value::str(p.table.clone()))];
    match &p.predicate {
        None => {}
        Some(ExprSpec::Cmp { column, op, value }) => members.push((
            "filter".into(),
            Value::Struct(vec![
                ("column".into(), Value::str(column.clone())),
                ("op".into(), Value::str(op.as_str())),
                ("value".into(), pack_cell(value)),
            ]),
        )),
        Some(tree) => members.push(("where".into(), pack_expr(tree))),
    }
    members.push((
        "group_by".into(),
        Value::Array(p.group_by.iter().map(Value::str).collect()),
    ));
    members.push((
        "aggs".into(),
        Value::Array(
            p.aggs
                .iter()
                .map(|a| {
                    let mut m = vec![("op".into(), Value::str(a.op.as_str()))];
                    if let Some(c) = &a.column {
                        m.push(("column".into(), Value::str(c.clone())));
                    }
                    if let Some(n) = &a.name {
                        m.push(("name".into(), Value::str(n.clone())));
                    }
                    if let Some(q) = a.q {
                        m.push(("q".into(), Value::Double(q)));
                    }
                    Value::Struct(m)
                })
                .collect(),
        ),
    ));
    members.push((
        "select".into(),
        Value::Array(p.select.iter().map(Value::str).collect()),
    ));
    if let Some(s) = &p.sort_by {
        members.push(("sort_by".into(), Value::str(s.clone())));
    }
    Value::Struct(members)
}

fn str_array(v: &Value, name: &str, ctx: &str) -> Result<Vec<String>, Fault> {
    v.member(name)
        .and_then(Value::as_array)
        .ok_or_else(|| parse_fault(format!("{ctx}: missing array member '{name}'")))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| parse_fault(format!("{ctx}: '{name}' holds a non-string")))
        })
        .collect()
}

/// Inverse of [`pack_plan`]; malformed plans fault with
/// [`FAULT_PARSE_ERROR`] (they arrive inside a [`QUERY_RUN`] request).
pub fn unpack_plan(v: &Value) -> Result<PlanSpec, Fault> {
    let ctx = "query plan";
    // `where` (the tree) wins; the legacy flat `filter` member folds
    // into a single-comparison tree so old clients keep working.
    let predicate = match (v.member("where"), v.member("filter")) {
        (Some(tree), _) => Some(unpack_expr(tree, 0)?),
        (None, Some(f)) => {
            let op_str = str_member(f, "op", ctx)?;
            Some(ExprSpec::Cmp {
                column: str_member(f, "column", ctx)?,
                op: FilterOp::parse(&op_str)
                    .ok_or_else(|| parse_fault(format!("{ctx}: unknown filter op '{op_str}'")))?,
                value: unpack_cell(
                    f.member("value")
                        .ok_or_else(|| parse_fault(format!("{ctx}: filter without value")))?,
                )
                .map_err(parse_fault)?,
            })
        }
        (None, None) => None,
    };
    let aggs = v
        .member("aggs")
        .and_then(Value::as_array)
        .ok_or_else(|| parse_fault(format!("{ctx}: missing array member 'aggs'")))?
        .iter()
        .map(|a| {
            let op_str = str_member(a, "op", ctx)?;
            let op = AggOp::parse(&op_str)
                .ok_or_else(|| parse_fault(format!("{ctx}: unknown agg op '{op_str}'")))?;
            let q = match a.member("q") {
                None => None,
                Some(Value::Double(q)) => Some(*q),
                Some(_) => {
                    return Err(parse_fault(format!("{ctx}: agg 'q' must be a double")));
                }
            };
            if op == AggOp::Quantile && q.is_none() {
                return Err(parse_fault(format!("{ctx}: quantile agg without 'q'")));
            }
            Ok(AggSpec {
                op,
                column: a
                    .member("column")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                name: a.member("name").and_then(Value::as_str).map(str::to_string),
                q,
            })
        })
        .collect::<Result<Vec<_>, Fault>>()?;
    Ok(PlanSpec {
        table: str_member(v, "table", ctx)?,
        predicate,
        group_by: str_array(v, "group_by", ctx)?,
        aggs,
        select: str_array(v, "select", ctx)?,
        sort_by: v
            .member("sort_by")
            .and_then(Value::as_str)
            .map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit() -> SubmitRequest {
        SubmitRequest {
            tenant: "alice".into(),
            preset: "grid_default".into(),
            description_xml: "<experiment name='x'/>".into(),
            submit_key: "alice:cs1:0".into(),
        }
    }

    #[test]
    fn submit_roundtrips_through_xml() {
        let want = submit();
        let call = pack_submit(&want);
        let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
        assert_eq!(unpack_submit(&rewired).unwrap(), want);
        let resp = pack_submit_response(u64::MAX, true);
        assert_eq!(unpack_submit_response(&resp).unwrap(), (u64::MAX, true));
    }

    #[test]
    fn non_submit_calls_are_rejected() {
        let stray = MethodCall::new("run_init", vec![]);
        assert_eq!(unpack_submit(&stray).unwrap_err().code, FAULT_PARSE_ERROR);
        let empty = MethodCall::new(JOB_SUBMIT, vec![]);
        assert_eq!(unpack_submit(&empty).unwrap_err().code, FAULT_PARSE_ERROR);
    }

    fn status(state: JobState) -> JobStatus {
        JobStatus {
            job_id: 3,
            tenant: "bob".into(),
            name: "cs1".into(),
            preset: "wired_lan".into(),
            state,
            runs_total: 12,
            runs_completed: 7,
            digest: matches!(state, JobState::Completed).then_some(u64::MAX - 1),
            error: matches!(state, JobState::Failed).then(|| "boom".to_string()),
        }
    }

    #[test]
    fn status_roundtrips_in_every_state() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
        ] {
            let want = status(state);
            assert_eq!(unpack_status(&pack_status(&want)).unwrap(), want);
        }
        let list = vec![status(JobState::Queued), status(JobState::Completed)];
        assert_eq!(unpack_status_list(&pack_status_list(&list)).unwrap(), list);
    }

    #[test]
    fn results_pages_carry_the_range_and_the_bytes() {
        let want = ResultsPage {
            status: status(JobState::Completed),
            total: u64::MAX,
            offset: 8 * 1024 * 1024,
            chunk: vec![0, 1, 2, 255],
        };
        assert_eq!(
            unpack_results_page(&pack_results_page(&want)).unwrap(),
            want
        );
        assert!(unpack_results_page(&Value::Int(1)).is_err());
    }

    #[test]
    fn frames_roundtrip_all_cell_kinds() {
        let want = WireFrame {
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec![CellValue::Null, CellValue::I64(i64::MIN)],
                vec![CellValue::F64(3.25), CellValue::Str("x".into())],
                vec![CellValue::Bytes(vec![7, 8]), CellValue::I64(-1)],
            ],
        };
        assert_eq!(unpack_frame(&pack_frame(&want)).unwrap(), want);
    }

    #[test]
    fn plans_roundtrip_with_and_without_options() {
        let bare = PlanSpec {
            table: "Events".into(),
            ..PlanSpec::default()
        };
        assert_eq!(unpack_plan(&pack_plan(&bare)).unwrap(), bare);
        let full = PlanSpec {
            table: "Events".into(),
            predicate: Some(ExprSpec::cmp("RunID", FilterOp::Le, CellValue::I64(4))),
            group_by: vec!["Type".into()],
            aggs: vec![
                AggSpec {
                    op: AggOp::Count,
                    column: None,
                    name: Some("n".into()),
                    q: None,
                },
                AggSpec {
                    op: AggOp::Mean,
                    column: Some("Time".into()),
                    name: None,
                    q: None,
                },
                AggSpec {
                    op: AggOp::Quantile,
                    column: Some("Time".into()),
                    name: Some("p95".into()),
                    q: Some(0.95),
                },
            ],
            select: vec!["Type".into(), "n".into()],
            sort_by: Some("Type".into()),
        };
        assert_eq!(unpack_plan(&pack_plan(&full)).unwrap(), full);
    }

    #[test]
    fn predicate_trees_roundtrip_and_single_cmp_stays_legacy() {
        let tree = ExprSpec::cmp("RunID", FilterOp::Ge, CellValue::I64(2))
            .and(ExprSpec::cmp("Service", FilterOp::Eq, CellValue::Str("p".into())).not())
            .or(ExprSpec::cmp("Time", FilterOp::Lt, CellValue::F64(0.5)));
        let plan = PlanSpec {
            table: "Events".into(),
            predicate: Some(tree),
            ..PlanSpec::default()
        };
        let packed = pack_plan(&plan);
        assert!(packed.member("where").is_some());
        assert!(packed.member("filter").is_none());
        assert_eq!(unpack_plan(&packed).unwrap(), plan);

        // A lone comparison ships in the pre-tree wire shape.
        let flat = PlanSpec {
            table: "Events".into(),
            predicate: Some(ExprSpec::cmp("RunID", FilterOp::Le, CellValue::I64(4))),
            ..PlanSpec::default()
        };
        let packed = pack_plan(&flat);
        assert!(packed.member("where").is_none());
        assert!(packed.member("filter").is_some());
        assert_eq!(unpack_plan(&packed).unwrap(), flat);
    }

    #[test]
    fn over_deep_predicates_fault_instead_of_recursing() {
        let mut e = ExprSpec::cmp("a", FilterOp::Eq, CellValue::I64(0));
        for _ in 0..(MAX_EXPR_DEPTH + 1) {
            e = e.not();
        }
        let packed = Value::Struct(vec![
            ("table".into(), Value::str("Events")),
            ("where".into(), pack_expr(&e)),
            ("group_by".into(), Value::Array(vec![])),
            ("aggs".into(), Value::Array(vec![])),
            ("select".into(), Value::Array(vec![])),
        ]);
        assert_eq!(unpack_plan(&packed).unwrap_err().code, FAULT_PARSE_ERROR);
    }

    #[test]
    fn quantile_aggs_require_a_rank() {
        let packed = Value::Struct(vec![
            ("table".into(), Value::str("Events")),
            ("group_by".into(), Value::Array(vec![])),
            (
                "aggs".into(),
                Value::Array(vec![Value::Struct(vec![
                    ("op".into(), Value::str("quantile")),
                    ("column".into(), Value::str("Time")),
                ])]),
            ),
            ("select".into(), Value::Array(vec![])),
        ]);
        assert_eq!(unpack_plan(&packed).unwrap_err().code, FAULT_PARSE_ERROR);
    }

    #[test]
    fn malformed_plans_and_cells_fault() {
        let no_table = Value::Struct(vec![
            ("group_by".into(), Value::Array(vec![])),
            ("aggs".into(), Value::Array(vec![])),
            ("select".into(), Value::Array(vec![])),
        ]);
        assert_eq!(unpack_plan(&no_table).unwrap_err().code, FAULT_PARSE_ERROR);
        let bad_cell = Value::Struct(vec![("t".into(), Value::str("z"))]);
        assert!(unpack_cell(&bad_cell).is_err());
    }
}
