//! Client-side error model of the control channel.
//!
//! The paper's prototype treats every failed master→node interaction the
//! same way; for recovery (§IV-E) the engine needs to distinguish *what*
//! failed: the node's procedure (a fault), the wire payload (codec), or
//! the channel itself (timeout, disconnect, I/O). The enum is
//! `#[non_exhaustive]` so further transports can add variants without
//! breaking matches downstream.

use crate::message::Fault;

/// Fault code used when dispatch fails to find a method.
pub const FAULT_NO_SUCH_METHOD: i32 = -32601;

/// Fault code used when the server cannot parse the request.
pub const FAULT_PARSE_ERROR: i32 = -32700;

/// Fault code used when a procedure handler panics server-side.
pub const FAULT_INTERNAL_ERROR: i32 = -32603;

/// Error returned by client-side calls.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RpcError {
    /// The server raised a fault.
    Fault(Fault),
    /// The wire payload could not be parsed.
    Codec(String),
    /// No procedure registered under the called name.
    NoSuchMethod(String),
    /// The per-call deadline elapsed before a response arrived.
    Timeout {
        /// Method that was being called.
        method: String,
        /// Deadline that elapsed, in milliseconds.
        after_ms: u64,
    },
    /// The connection to the server was lost (and could not be
    /// re-established within the transport's backoff budget).
    Disconnected(String),
    /// Any other transport-level I/O failure.
    Io(String),
}

impl RpcError {
    /// True for transient transport conditions where retrying the call
    /// (or reconnecting) can succeed; false for protocol-level errors
    /// that would deterministically recur.
    pub fn is_retryable(&self) -> bool {
        match self {
            RpcError::Timeout { .. } | RpcError::Disconnected(_) | RpcError::Io(_) => true,
            RpcError::Fault(_) | RpcError::Codec(_) | RpcError::NoSuchMethod(_) => false,
        }
    }

    /// True if the failure happened in the node's procedure rather than
    /// on the transport (i.e. the channel itself is healthy).
    pub fn is_server_side(&self) -> bool {
        matches!(self, RpcError::Fault(_) | RpcError::NoSuchMethod(_))
    }

    /// A stable, low-cardinality label for this error's kind — the
    /// `kind` label of the `rpc_client_errors_total` metric.
    ///
    /// The strings are a public contract: dashboards and the pinning
    /// test in this module rely on them, so a label never changes once
    /// shipped. The enum is `#[non_exhaustive]` toward downstream
    /// crates; within this crate the match is exhaustive, so adding a
    /// variant forces choosing its label here at compile time.
    pub fn kind_label(&self) -> &'static str {
        match self {
            RpcError::Fault(_) => "fault",
            RpcError::Codec(_) => "codec",
            RpcError::NoSuchMethod(_) => "no_such_method",
            RpcError::Timeout { .. } => "timeout",
            RpcError::Disconnected(_) => "disconnected",
            RpcError::Io(_) => "io",
        }
    }
}

impl From<Fault> for RpcError {
    /// Classifies a protocol fault: the well-known "no such method" code
    /// gets its own variant, everything else stays a fault.
    fn from(fault: Fault) -> Self {
        if fault.code == FAULT_NO_SUCH_METHOD {
            RpcError::NoSuchMethod(fault.message)
        } else {
            RpcError::Fault(fault)
        }
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Fault(fault) => write!(f, "{fault}"),
            RpcError::Codec(m) => write!(f, "codec error: {m}"),
            RpcError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            RpcError::Timeout { method, after_ms } => {
                write!(f, "call '{method}' timed out after {after_ms} ms")
            }
            RpcError::Disconnected(m) => write!(f, "disconnected: {m}"),
            RpcError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_partitions_the_variants() {
        assert!(RpcError::Timeout {
            method: "m".into(),
            after_ms: 10
        }
        .is_retryable());
        assert!(RpcError::Disconnected("gone".into()).is_retryable());
        assert!(RpcError::Io("reset".into()).is_retryable());
        assert!(!RpcError::Fault(Fault::new(1, "x")).is_retryable());
        assert!(!RpcError::Codec("bad".into()).is_retryable());
        assert!(!RpcError::NoSuchMethod("nope".into()).is_retryable());
    }

    #[test]
    fn from_fault_classifies_no_such_method() {
        let e: RpcError = Fault::new(FAULT_NO_SUCH_METHOD, "no such method: x").into();
        assert!(matches!(e, RpcError::NoSuchMethod(_)));
        let e: RpcError = Fault::new(42, "boom").into();
        assert!(matches!(e, RpcError::Fault(f) if f.code == 42));
    }

    #[test]
    fn kind_labels_are_pinned() {
        // The label set is a public metrics contract: adding a variant
        // extends this table, existing entries never change.
        let cases: Vec<(RpcError, &'static str)> = vec![
            (RpcError::Fault(Fault::new(1, "x")), "fault"),
            (RpcError::Codec("bad".into()), "codec"),
            (RpcError::NoSuchMethod("nope".into()), "no_such_method"),
            (
                RpcError::Timeout {
                    method: "m".into(),
                    after_ms: 10,
                },
                "timeout",
            ),
            (RpcError::Disconnected("gone".into()), "disconnected"),
            (RpcError::Io("reset".into()), "io"),
        ];
        for (err, want) in &cases {
            assert_eq!(err.kind_label(), *want, "{err}");
        }
        // Labels are distinct (one series per kind) and metric-safe.
        let mut labels: Vec<&str> = cases.iter().map(|(e, _)| e.kind_label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), cases.len());
        for l in labels {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{l}");
        }
    }

    #[test]
    fn server_side_classification() {
        assert!(RpcError::Fault(Fault::new(1, "x")).is_server_side());
        assert!(!RpcError::Disconnected("gone".into()).is_server_side());
    }
}
