//! Batched lifecycle RPCs: many per-node calls packed into one wire frame.
//!
//! The master's per-phase fan-out sends the *same* lifecycle procedure to
//! every NodeManager; at testbed scale that is N frames per phase. A batch
//! frame carries all N calls at once: each [`BatchEntry`] names its target
//! node, the method, the parameters and — crucially — its **own**
//! idempotency key. The server side ([`relay_registry`]) unpacks the batch
//! into ordinary [`ServerRegistry::dispatch`] calls carrying that key, so
//! the exactly-once/dedup semantics hold *per node inside a batch*: a
//! retried batch replays recorded responses for entries that already
//! executed and only re-runs the ones that never landed. The batch call
//! itself therefore needs no outer key — re-sending it is idempotent by
//! construction.
//!
//! [`relay_registry`] is also the building block of the hierarchical
//! fan-out tree: a sub-master relay owns a group of NodeManager registries
//! and exposes a single [`BATCH_METHOD`] endpoint that forwards each entry
//! to its node and packs the per-node results into one response array.

use crate::error::{RpcError, FAULT_NO_SUCH_METHOD, FAULT_PARSE_ERROR};
use crate::message::{Fault, MethodCall};
use crate::transport::{ServerRegistry, IDEMPOTENCY_MEMBER};
use crate::value::Value;
use parking_lot::Mutex;
use std::sync::Arc;

/// Wire name of the batched-dispatch procedure exposed by relays.
pub const BATCH_METHOD: &str = "__batch";

/// One call inside a batch frame: target node, procedure, parameters and
/// the per-node idempotency key that makes its retry exactly-once.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Platform id of the NodeManager this entry is addressed to.
    pub node_id: String,
    /// Lifecycle procedure name (`run_init`, `experiment_exit`, …).
    pub method: String,
    /// Call parameters, *without* the trailing idempotency struct — the
    /// key travels as its own member and is re-attached server-side.
    pub params: Vec<Value>,
    /// Per-node idempotency key (`{run_id}:{epoch}:{seq}`).
    pub idem_key: String,
}

/// Packs entries into one [`BATCH_METHOD`] call: one struct parameter per
/// entry with members `node`, `method`, `params` and `__idem`.
pub fn pack_batch(entries: &[BatchEntry]) -> MethodCall {
    let params = entries
        .iter()
        .map(|e| {
            Value::Struct(vec![
                ("node".into(), Value::str(e.node_id.clone())),
                ("method".into(), Value::str(e.method.clone())),
                ("params".into(), Value::Array(e.params.clone())),
                (IDEMPOTENCY_MEMBER.into(), Value::str(e.idem_key.clone())),
            ])
        })
        .collect();
    MethodCall::new(BATCH_METHOD, params)
}

/// Inverse of [`pack_batch`]: rejects calls that are not a well-formed
/// batch with a [`FAULT_PARSE_ERROR`] fault.
pub fn unpack_batch(call: &MethodCall) -> Result<Vec<BatchEntry>, Fault> {
    if call.method != BATCH_METHOD {
        return Err(Fault::new(
            FAULT_PARSE_ERROR,
            format!("'{}' is not a batch call", call.method),
        ));
    }
    unpack_entries(&call.params)
}

/// Decodes the parameter list of a [`BATCH_METHOD`] call into entries.
pub fn unpack_entries(params: &[Value]) -> Result<Vec<BatchEntry>, Fault> {
    let malformed =
        |i: usize, what: &str| Fault::new(FAULT_PARSE_ERROR, format!("batch entry #{i}: {what}"));
    let mut entries = Vec::with_capacity(params.len());
    for (i, param) in params.iter().enumerate() {
        let node_id = param
            .member("node")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed(i, "missing string member 'node'"))?;
        let method = param
            .member("method")
            .and_then(Value::as_str)
            .ok_or_else(|| malformed(i, "missing string member 'method'"))?;
        let entry_params = param
            .member("params")
            .and_then(Value::as_array)
            .ok_or_else(|| malformed(i, "missing array member 'params'"))?;
        let idem_key = param
            .member(IDEMPOTENCY_MEMBER)
            .and_then(Value::as_str)
            .ok_or_else(|| malformed(i, "missing string member '__idem'"))?;
        entries.push(BatchEntry {
            node_id: node_id.to_string(),
            method: method.to_string(),
            params: entry_params.to_vec(),
            idem_key: idem_key.to_string(),
        });
    }
    Ok(entries)
}

/// Encodes per-entry results as the batch response value: an array of
/// structs, each carrying `node` plus either `value` (success) or `fault`
/// (a `faultCode`/`faultString` struct, mirroring the XML-RPC fault
/// shape). Order matches the request's entry order.
pub fn pack_batch_response(results: &[(String, Result<Value, Fault>)]) -> Value {
    Value::Array(
        results
            .iter()
            .map(|(node, outcome)| {
                let mut members = vec![("node".to_string(), Value::str(node.clone()))];
                match outcome {
                    Ok(v) => members.push(("value".into(), v.clone())),
                    Err(f) => members.push((
                        "fault".into(),
                        Value::Struct(vec![
                            ("faultCode".into(), Value::Int(f.code)),
                            ("faultString".into(), Value::str(f.message.clone())),
                        ]),
                    )),
                }
                Value::Struct(members)
            })
            .collect(),
    )
}

/// Inverse of [`pack_batch_response`]; malformed shapes surface as
/// [`RpcError::Codec`] so the dispatcher treats them as a wire problem,
/// not a per-node fault.
pub fn unpack_batch_response(
    value: &Value,
) -> Result<Vec<(String, Result<Value, Fault>)>, RpcError> {
    let items = value
        .as_array()
        .ok_or_else(|| RpcError::Codec("batch response is not an array".into()))?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let node = item
            .member("node")
            .and_then(Value::as_str)
            .ok_or_else(|| RpcError::Codec(format!("batch result #{i} lacks 'node'")))?;
        let outcome = if let Some(v) = item.member("value") {
            Ok(v.clone())
        } else if let Some(fault) = item.member("fault") {
            let code = fault
                .member("faultCode")
                .and_then(Value::as_int)
                .ok_or_else(|| RpcError::Codec(format!("batch result #{i}: bad faultCode")))?;
            let message = fault
                .member("faultString")
                .and_then(Value::as_str)
                .unwrap_or_default();
            Err(Fault::new(code, message))
        } else {
            return Err(RpcError::Codec(format!(
                "batch result #{i} carries neither 'value' nor 'fault'"
            )));
        };
        out.push((node.to_string(), outcome));
    }
    Ok(out)
}

/// Builds the server side of a sub-master relay: a registry whose single
/// [`BATCH_METHOD`] endpoint forwards each entry to the owning child
/// registry with the entry's own `__idem` key attached, so per-node dedup
/// behaves exactly as if the master had called the node directly.
pub fn relay_registry(children: Vec<(String, Arc<Mutex<ServerRegistry>>)>) -> ServerRegistry {
    let mut registry = ServerRegistry::new();
    registry.register(BATCH_METHOD, move |params: &[Value]| {
        let entries = unpack_entries(params)?;
        let mut results = Vec::with_capacity(entries.len());
        for entry in entries {
            let outcome = match children.iter().find(|(id, _)| *id == entry.node_id) {
                None => Err(Fault::new(
                    FAULT_NO_SUCH_METHOD,
                    format!("relay has no NodeManager '{}'", entry.node_id),
                )),
                Some((_, child)) => {
                    let mut call_params = entry.params.clone();
                    call_params.push(Value::Struct(vec![(
                        IDEMPOTENCY_MEMBER.into(),
                        Value::str(entry.idem_key.clone()),
                    )]));
                    let call = MethodCall::new(entry.method.clone(), call_params);
                    child.lock().dispatch(&call).into_result()
                }
            };
            results.push((entry.node_id, outcome));
        }
        Ok(pack_batch_response(&results))
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn entries() -> Vec<BatchEntry> {
        vec![
            BatchEntry {
                node_id: "p0".into(),
                method: "run_init".into(),
                params: vec![Value::Int(7), Value::str("x")],
                idem_key: "0:0:1".into(),
            },
            BatchEntry {
                node_id: "p1".into(),
                method: "run_init".into(),
                params: vec![],
                idem_key: "0:0:2".into(),
            },
        ]
    }

    #[test]
    fn pack_unpack_is_the_identity() {
        let want = entries();
        let call = pack_batch(&want);
        assert_eq!(call.method, BATCH_METHOD);
        assert_eq!(unpack_batch(&call).unwrap(), want);
        // And survives the actual wire format.
        let rewired = MethodCall::from_xml(&call.to_xml()).unwrap();
        assert_eq!(unpack_batch(&rewired).unwrap(), want);
    }

    #[test]
    fn non_batch_calls_and_malformed_entries_are_rejected() {
        let stray = MethodCall::new("run_init", vec![]);
        assert_eq!(unpack_batch(&stray).unwrap_err().code, FAULT_PARSE_ERROR);
        let bad = MethodCall::new(BATCH_METHOD, vec![Value::Int(3)]);
        assert_eq!(unpack_batch(&bad).unwrap_err().code, FAULT_PARSE_ERROR);
    }

    #[test]
    fn batch_response_roundtrips_values_and_faults() {
        let results = vec![
            ("p0".to_string(), Ok(Value::Bool(true))),
            ("p1".to_string(), Err(Fault::new(-3, "boom"))),
        ];
        let packed = pack_batch_response(&results);
        assert_eq!(unpack_batch_response(&packed).unwrap(), results);
        assert!(unpack_batch_response(&Value::Int(1)).is_err());
    }

    fn counting_child(count: Arc<AtomicU64>) -> Arc<Mutex<ServerRegistry>> {
        let mut reg = ServerRegistry::new();
        reg.register("run_init", move |params: &[Value]| {
            count.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Int(params.len() as i32))
        });
        Arc::new(Mutex::new(reg))
    }

    #[test]
    fn relay_forwards_with_per_node_dedup() {
        let c0 = Arc::new(AtomicU64::new(0));
        let c1 = Arc::new(AtomicU64::new(0));
        let mut relay = relay_registry(vec![
            ("p0".into(), counting_child(Arc::clone(&c0))),
            ("p1".into(), counting_child(Arc::clone(&c1))),
        ]);
        let call = pack_batch(&entries());
        let first = relay.dispatch(&call).into_result().unwrap();
        // A retried batch with the same keys replays; handlers ran once.
        let second = relay.dispatch(&call).into_result().unwrap();
        assert_eq!(first, second);
        assert_eq!(c0.load(Ordering::Relaxed), 1);
        assert_eq!(c1.load(Ordering::Relaxed), 1);
        let results = unpack_batch_response(&first).unwrap();
        assert_eq!(results[0], ("p0".to_string(), Ok(Value::Int(2))));
        assert_eq!(results[1], ("p1".to_string(), Ok(Value::Int(0))));
    }

    #[test]
    fn unknown_nodes_fault_per_entry_without_failing_the_batch() {
        let c0 = Arc::new(AtomicU64::new(0));
        let mut relay = relay_registry(vec![("p0".into(), counting_child(c0))]);
        let mut batch = entries();
        batch[1].node_id = "ghost".into();
        let response = relay.dispatch(&pack_batch(&batch)).into_result().unwrap();
        let results = unpack_batch_response(&response).unwrap();
        assert!(results[0].1.is_ok());
        let fault = results[1].1.as_ref().unwrap_err();
        assert_eq!(fault.code, FAULT_NO_SUCH_METHOD);
        assert!(fault.message.contains("ghost"));
    }
}
