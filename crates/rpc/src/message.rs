//! XML-RPC method calls, responses and faults.

use crate::value::Value;
use excovery_xml::{parse, Document, Element, XmlError};

/// A remote procedure call: `<methodCall>`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCall {
    /// Method name, e.g. `node.run_init`.
    pub method: String,
    /// Positional parameters.
    pub params: Vec<Value>,
}

/// An XML-RPC fault (`<fault>`), the protocol-level error report.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Numeric fault code.
    pub code: i32,
    /// Explanation.
    pub message: String,
}

impl Fault {
    /// Creates a fault.
    pub fn new(code: i32, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault {}: {}", self.code, self.message)
    }
}

impl std::error::Error for Fault {}

/// A response: either a single return value or a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum MethodResponse {
    /// Successful return.
    Success(Value),
    /// Fault raised by the server.
    Fault(Fault),
}

impl MethodCall {
    /// Creates a call.
    pub fn new(method: impl Into<String>, params: Vec<Value>) -> Self {
        Self {
            method: method.into(),
            params,
        }
    }

    /// Serializes to the XML wire form.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("methodCall");
        root.push(Element::with_text("methodName", self.method.clone()));
        let mut params = Element::new("params");
        for p in &self.params {
            let mut param = Element::new("param");
            param.push(p.to_element());
            params.push(param);
        }
        root.push(params);
        excovery_xml::to_string(&Document::with_declaration(root))
    }

    /// Parses from the XML wire form.
    pub fn from_xml(text: &str) -> Result<Self, XmlError> {
        let doc = parse(text)?;
        let root = doc.root();
        if root.name != "methodCall" {
            return Err(XmlError::validation(format!(
                "expected <methodCall>, found <{}>",
                root.name
            )));
        }
        let method = root
            .child("methodName")
            .map(|m| m.text())
            .ok_or_else(|| XmlError::validation("missing <methodName>"))?;
        let mut params = Vec::new();
        if let Some(ps) = root.child("params") {
            for p in ps.elements_named("param") {
                let v = p
                    .child("value")
                    .ok_or_else(|| XmlError::validation("<param> without <value>"))?;
                params.push(Value::from_element(v)?);
            }
        }
        Ok(Self { method, params })
    }
}

impl MethodResponse {
    /// Serializes to the XML wire form.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("methodResponse");
        match self {
            MethodResponse::Success(v) => {
                let mut params = Element::new("params");
                let mut param = Element::new("param");
                param.push(v.to_element());
                params.push(param);
                root.push(params);
            }
            MethodResponse::Fault(f) => {
                let mut fault = Element::new("fault");
                fault.push(
                    Value::Struct(vec![
                        ("faultCode".into(), Value::Int(f.code)),
                        ("faultString".into(), Value::str(f.message.clone())),
                    ])
                    .to_element(),
                );
                root.push(fault);
            }
        }
        excovery_xml::to_string(&Document::with_declaration(root))
    }

    /// Parses from the XML wire form.
    pub fn from_xml(text: &str) -> Result<Self, XmlError> {
        let doc = parse(text)?;
        let root = doc.root();
        if root.name != "methodResponse" {
            return Err(XmlError::validation(format!(
                "expected <methodResponse>, found <{}>",
                root.name
            )));
        }
        if let Some(fault) = root.child("fault") {
            let v = fault
                .child("value")
                .ok_or_else(|| XmlError::validation("<fault> without <value>"))?;
            let v = Value::from_element(v)?;
            let code = v
                .member("faultCode")
                .and_then(Value::as_int)
                .ok_or_else(|| XmlError::validation("fault without faultCode"))?;
            let message = v
                .member("faultString")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            return Ok(MethodResponse::Fault(Fault { code, message }));
        }
        let value = root
            .find("params/param/value")
            .ok_or_else(|| XmlError::validation("response without value or fault"))?;
        Ok(MethodResponse::Success(Value::from_element(value)?))
    }

    /// Converts into a `Result`.
    pub fn into_result(self) -> Result<Value, Fault> {
        match self {
            MethodResponse::Success(v) => Ok(v),
            MethodResponse::Fault(f) => Err(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_roundtrip() {
        let call = MethodCall::new(
            "node.sd_init",
            vec![
                Value::str("SU"),
                Value::Struct(vec![("timeout".into(), Value::Int(30))]),
            ],
        );
        let xml = call.to_xml();
        assert!(xml.contains("<methodCall>"));
        assert_eq!(MethodCall::from_xml(&xml).unwrap(), call);
    }

    #[test]
    fn call_without_params_roundtrip() {
        let call = MethodCall::new("experiment_init", vec![]);
        assert_eq!(MethodCall::from_xml(&call.to_xml()).unwrap(), call);
    }

    #[test]
    fn success_response_roundtrip() {
        let r = MethodResponse::Success(Value::Array(vec![Value::Int(1), Value::str("ok")]));
        assert_eq!(MethodResponse::from_xml(&r.to_xml()).unwrap(), r);
    }

    #[test]
    fn fault_response_roundtrip() {
        let r = MethodResponse::Fault(Fault::new(42, "node busy"));
        let xml = r.to_xml();
        assert!(xml.contains("faultCode"));
        assert_eq!(MethodResponse::from_xml(&xml).unwrap(), r);
    }

    #[test]
    fn into_result() {
        assert_eq!(
            MethodResponse::Success(Value::Int(1))
                .into_result()
                .unwrap(),
            Value::Int(1)
        );
        let f = MethodResponse::Fault(Fault::new(1, "x"))
            .into_result()
            .unwrap_err();
        assert_eq!(f.code, 1);
        assert!(f.to_string().contains("fault 1"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(
            MethodCall::from_xml("<methodCall/>").is_err(),
            "no methodName"
        );
        assert!(MethodCall::from_xml("<other/>").is_err());
        assert!(
            MethodResponse::from_xml("<methodResponse/>").is_err(),
            "empty response"
        );
    }

    #[test]
    fn spec_example_parses() {
        // The canonical example from the XML-RPC spec.
        let xml = r#"<?xml version="1.0"?>
            <methodCall>
              <methodName>examples.getStateName</methodName>
              <params><param><value><i4>41</i4></value></param></params>
            </methodCall>"#;
        let call = MethodCall::from_xml(xml).unwrap();
        assert_eq!(call.method, "examples.getStateName");
        assert_eq!(call.params, vec![Value::Int(41)]);
    }
}
