//! Criterion bench: one complete two-party discovery on the SD substrate
//! (publish + search + query/response until `sd_service_add`).

use criterion::{criterion_group, criterion_main, Criterion};
use excovery_netsim::link::LinkModel;
use excovery_netsim::sim::{Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{NodeId, SimDuration};
use excovery_sd::{
    sd_command, Role, SdAgent, SdCommand, SdConfig, ServiceDescription, ServiceType, SD_PORT,
};

fn discover(seed: u64) -> usize {
    // Lossless link: the bench measures protocol machinery, not channel
    // luck (1% loss would eventually fail an iteration's assertion).
    let cfg = SimulatorConfig {
        link_model: LinkModel {
            base_loss: 0.0,
            ..LinkModel::default()
        },
        ..SimulatorConfig::perfect_clocks(seed)
    };
    let mut sim = Simulator::new(Topology::chain(2), cfg);
    for n in 0..2u16 {
        sim.install_agent(
            NodeId(n),
            SD_PORT,
            Box::new(SdAgent::new(SdConfig::two_party(), SD_PORT)),
        );
    }
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
    sd_command(
        &mut sim,
        NodeId(0),
        SdCommand::StartPublish(ServiceDescription::new(
            "sm",
            ServiceType::new("_bench._tcp"),
            NodeId(0),
        )),
    );
    sd_command(
        &mut sim,
        NodeId(1),
        SdCommand::StartSearch(ServiceType::new("_bench._tcp")),
    );
    sim.run_for(SimDuration::from_secs(2));
    sim.drain_protocol_events()
        .iter()
        .filter(|e| e.name == "sd_service_add")
        .count()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sd");
    let mut seed = 0;
    g.bench_function("two_party_one_shot_discovery", |b| {
        b.iter(|| {
            seed += 1;
            assert!(discover(seed) >= 1);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
