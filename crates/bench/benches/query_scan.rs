//! Criterion bench: the columnar query layer — warehouse group-by means
//! (row engine vs columnar, serial vs sharded) and pruned filtered scans.
//!
//! `query_snapshot` is the CI-facing smoke variant of this suite; run this
//! one locally for statistically solid numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use excovery_query::{col, lit, Agg, Dataset};
use excovery_store::{Aggregate, Column, ColumnType, Database, Predicate, SqlValue};

const EXPERIMENTS: i64 = 6;
const RUNS_PER_EXP: i64 = 200;
const FACTS_PER_RUN: i64 = 60;

fn synthetic_warehouse() -> Database {
    use ColumnType::*;
    let mut db = Database::new();
    db.create_table(
        "FactDiscovery",
        vec![
            Column::new("ExpKey", Integer),
            Column::new("RunKey", Integer),
            Column::new("SuNodeKey", Integer),
            Column::new("Service", Text),
            Column::new("SearchStart", Integer),
            Column::new("ResponseTimeNs", Integer),
        ],
    )
    .unwrap();
    let mut state: u64 = 0x5eed_2026;
    let mut run_key: i64 = 0;
    for exp in 0..EXPERIMENTS {
        for _ in 0..RUNS_PER_EXP {
            let start = run_key * 30_000_000_000;
            for f in 0..FACTS_PER_RUN {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let t_r = 1_000_000 + (state % 2_000_000_000) / (exp as u64 + 1);
                db.insert(
                    "FactDiscovery",
                    vec![
                        SqlValue::Int(exp),
                        SqlValue::Int(run_key),
                        SqlValue::Int(f % 4),
                        SqlValue::Text(format!("sm{}", f % 4)),
                        SqlValue::Int(start),
                        SqlValue::Int(t_r as i64),
                    ],
                )
                .unwrap();
            }
            run_key += 1;
        }
    }
    db
}

fn bench(c: &mut Criterion) {
    let wh = synthetic_warehouse();
    let facts = (EXPERIMENTS * RUNS_PER_EXP * FACTS_PER_RUN) as u64;
    let ds = Dataset::builder()
        .partition_by("RunKey")
        .add_package("warehouse", &wh)
        .unwrap()
        .build();

    let mut g = c.benchmark_group("query");
    g.throughput(Throughput::Elements(facts));
    g.bench_function("row_engine_group_mean", |b| {
        b.iter(|| {
            let facts = wh.table("FactDiscovery").unwrap();
            let mut out = Vec::new();
            for exp in facts.distinct("ExpKey", &Predicate::True).unwrap() {
                let mean = facts
                    .aggregate(
                        "ResponseTimeNs",
                        &Predicate::Eq("ExpKey".into(), exp.clone()),
                        Aggregate::Avg,
                    )
                    .unwrap();
                out.push((exp, mean));
            }
            out
        })
    });
    g.bench_function("columnar_group_mean_serial", |b| {
        b.iter(|| {
            ds.scan("FactDiscovery")
                .group_by(["ExpKey"])
                .agg([Agg::mean("ResponseTimeNs")])
                .workers(1)
                .collect()
                .unwrap()
        })
    });
    g.bench_function("columnar_group_mean_workers4", |b| {
        b.iter(|| {
            ds.scan("FactDiscovery")
                .group_by(["ExpKey"])
                .agg([Agg::mean("ResponseTimeNs")])
                .workers(4)
                .collect()
                .unwrap()
        })
    });
    g.bench_function("columnar_filtered_count_pruned", |b| {
        let cutoff = RUNS_PER_EXP * 30_000_000_000;
        b.iter(|| {
            ds.scan("FactDiscovery")
                .filter(col("SearchStart").lt(lit(cutoff)))
                .agg([Agg::count()])
                .collect()
                .unwrap()
        })
    });
    g.bench_function("ingest_warehouse_to_columns", |b| {
        b.iter(|| {
            Dataset::builder()
                .partition_by("RunKey")
                .add_package("warehouse", &wh)
                .unwrap()
                .build()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
