//! Criterion bench: XML-RPC round-trips on the master↔node control channel
//! (Fig. 12), including full wire-format encode/decode.

use criterion::{criterion_group, criterion_main, Criterion};
use excovery_rpc::{Channel, ServerRegistry, Value};

fn bench(c: &mut Criterion) {
    let mut reg = ServerRegistry::new();
    reg.register("echo", |params| Ok(Value::Array(params.to_vec())));
    let ch = Channel::new(reg);
    let mut g = c.benchmark_group("rpc");
    g.bench_function("roundtrip_small", |b| {
        b.iter(|| ch.call("echo", vec![Value::Int(1)]).unwrap())
    });
    let big = Value::Struct(
        (0..50)
            .map(|i| (format!("key{i}"), Value::str(format!("value with some text {i}"))))
            .collect(),
    );
    g.bench_function("roundtrip_struct50", |b| {
        b.iter(|| ch.call("echo", vec![std::hint::black_box(big.clone())]).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
