//! Criterion bench: XML-RPC round-trips on the master↔node control channel
//! (Fig. 12), including full wire-format encode/decode — over the
//! in-memory channel and over the framed TCP transport, plus the engine's
//! serial-vs-parallel lifecycle fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use excovery_rpc::{
    Channel, NodeProxy, ServerRegistry, TcpOptions, TcpRpcServer, TcpTransport, Value,
};
use parking_lot::Mutex;
use std::sync::Arc;

fn echo_registry() -> ServerRegistry {
    let mut reg = ServerRegistry::new();
    reg.register("echo", |params| Ok(Value::Array(params.to_vec())));
    reg
}

fn big_struct() -> Value {
    Value::Struct(
        (0..50)
            .map(|i| {
                (
                    format!("key{i}"),
                    Value::str(format!("value with some text {i}")),
                )
            })
            .collect(),
    )
}

fn bench(c: &mut Criterion) {
    let ch = Channel::new(echo_registry());
    let mut g = c.benchmark_group("rpc");
    g.bench_function("roundtrip_small", |b| {
        b.iter(|| ch.call("echo", vec![Value::Int(1)]).unwrap())
    });
    let big = big_struct();
    g.bench_function("roundtrip_struct50", |b| {
        b.iter(|| {
            ch.call("echo", vec![std::hint::black_box(big.clone())])
                .unwrap()
        })
    });

    // The same round-trips through a real socket: framing + syscalls on
    // top of the identical codec path.
    let server = TcpRpcServer::bind("127.0.0.1:0", Arc::new(Mutex::new(echo_registry()))).unwrap();
    let proxy = NodeProxy::new(
        "bench",
        TcpTransport::connect(server.local_addr(), TcpOptions::default()).unwrap(),
    );
    g.bench_function("roundtrip_small_tcp", |b| {
        b.iter(|| proxy.call("echo", vec![Value::Int(1)]).unwrap())
    });
    g.bench_function("roundtrip_struct50_tcp", |b| {
        b.iter(|| {
            proxy
                .call("echo", vec![std::hint::black_box(big.clone())])
                .unwrap()
        })
    });
    g.finish();

    // Lifecycle fan-out over 8 nodes, serial vs scoped-thread parallel —
    // the dispatch pattern ExperiMaster uses per lifecycle phase.
    let mut servers = Vec::new();
    let proxies: Vec<NodeProxy> = (0..8)
        .map(|i| {
            let server =
                TcpRpcServer::bind("127.0.0.1:0", Arc::new(Mutex::new(echo_registry()))).unwrap();
            let proxy = NodeProxy::new(
                format!("n{i}"),
                TcpTransport::connect(server.local_addr(), TcpOptions::default()).unwrap(),
            );
            servers.push(server);
            proxy
        })
        .collect();
    let mut g = c.benchmark_group("dispatch");
    g.bench_function("fanout8_serial_tcp", |b| {
        b.iter(|| {
            for p in &proxies {
                p.call("echo", vec![Value::Int(1)]).unwrap();
            }
        })
    });
    g.bench_function("fanout8_parallel_tcp", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for p in &proxies {
                    scope.spawn(move || p.call("echo", vec![Value::Int(1)]).unwrap());
                }
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
