//! Criterion bench: the simulated platform — unicast routing and mesh
//! multicast flooding throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use excovery_netsim::sim::{Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{Destination, NodeId, Payload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    let n_packets = 1_000u64;
    g.throughput(Throughput::Elements(n_packets));
    g.bench_function("unicast_4hops_1000pkts", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(1));
            for _ in 0..n_packets {
                sim.send_from(
                    NodeId(0),
                    9,
                    Destination::Unicast(NodeId(4)),
                    Payload::from("x"),
                );
            }
            sim.run_until_idle(1_000_000)
        })
    });
    g.bench_function("flood_grid5x5_1000pkts", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(Topology::grid(5, 5), SimulatorConfig::perfect_clocks(2));
            for _ in 0..n_packets {
                sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
            }
            sim.run_until_idle(10_000_000)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
