//! Criterion bench: the simulated platform — unicast routing and mesh
//! multicast flooding throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use excovery_netsim::sim::{Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{run_replications, CampaignConfig, Destination, NodeId, Payload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    let n_packets = 1_000u64;
    g.throughput(Throughput::Elements(n_packets));
    g.bench_function("unicast_4hops_1000pkts", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(1));
            for _ in 0..n_packets {
                sim.send_from(
                    NodeId(0),
                    9,
                    Destination::Unicast(NodeId(4)),
                    Payload::from("x"),
                );
            }
            sim.run_until_idle(1_000_000)
        })
    });
    g.bench_function("flood_grid5x5_1000pkts", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(Topology::grid(5, 5), SimulatorConfig::perfect_clocks(2));
            for _ in 0..n_packets {
                sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
            }
            sim.run_until_idle(10_000_000)
        })
    });
    g.finish();

    // 8 independent replications of the unicast workload, fanned across
    // the campaign runner (auto worker count) vs pinned to one worker.
    // The speedup between these two is the campaign scaling factor.
    let campaign_rep = |_rep: u64, seed: u64| {
        let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(seed));
        for _ in 0..1_000u64 {
            sim.send_from(
                NodeId(0),
                9,
                Destination::Unicast(NodeId(4)),
                Payload::from("x"),
            );
        }
        sim.run_until_idle(1_000_000)
    };
    let mut g = c.benchmark_group("campaign");
    g.bench_function("unicast_8reps_serial", |b| {
        b.iter(|| {
            run_replications(
                &CampaignConfig::builder()
                    .master_seed(3)
                    .replications(8)
                    .workers(1)
                    .build(),
                campaign_rep,
            )
        })
    });
    g.bench_function("unicast_8reps_parallel", |b| {
        b.iter(|| {
            run_replications(
                &CampaignConfig::builder()
                    .master_seed(3)
                    .replications(8)
                    .build(),
                campaign_rep,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
