//! Criterion bench: treatment-plan generation (Fig. 5 arithmetic) in OFAT
//! and completely randomized designs — the ablation of §IV-C1's ordering
//! choice.

use criterion::{criterion_group, criterion_main, Criterion};
use excovery_desc::plan::{Design, PlanOptions, TreatmentPlan};
use excovery_desc::FactorList;

fn bench(c: &mut Criterion) {
    let factors = FactorList::paper_fig5(); // 6 treatments × 1000 reps
    let mut g = c.benchmark_group("plan");
    g.bench_function("ofat_6000_runs", |b| {
        b.iter(|| {
            TreatmentPlan::generate(
                std::hint::black_box(&factors),
                &PlanOptions {
                    design: Design::Ofat,
                    seed: 1,
                },
            )
        })
    });
    g.bench_function("crd_6000_runs", |b| {
        b.iter(|| {
            TreatmentPlan::generate(
                std::hint::black_box(&factors),
                &PlanOptions {
                    design: Design::CompletelyRandomized,
                    seed: 1,
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
