//! Criterion bench: a complete experiment run through the engine —
//! description → execution → collection → conditioning → level-3 package
//! (the Fig. 3 workflow end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use excovery_core::scenarios::loss_sweep;
use excovery_core::{EngineConfig, ExperiMaster};
use excovery_netsim::topology::Topology;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("one_run_end_to_end", |b| {
        b.iter(|| {
            seed += 1;
            let desc = loss_sweep(&[0.0], 1, seed);
            let mut cfg = EngineConfig::grid_default();
            cfg.topology = Topology::chain(2);
            let mut master = ExperiMaster::new(desc, cfg).unwrap();
            master.execute().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
