//! Criterion bench: XML description parsing and serialization — the cost
//! of ExCovery's level-1 storage format.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use excovery_desc::xmlio::{from_xml, to_xml};
use excovery_desc::ExperimentDescription;

fn bench(c: &mut Criterion) {
    let desc = ExperimentDescription::paper_two_party_sd(1000);
    let xml = to_xml(&desc);
    let mut g = c.benchmark_group("xml");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("serialize_paper_description", |b| {
        b.iter(|| to_xml(std::hint::black_box(&desc)))
    });
    g.bench_function("parse_paper_description", |b| {
        b.iter(|| from_xml(std::hint::black_box(&xml)).unwrap())
    });
    g.bench_function("roundtrip_paper_description", |b| {
        b.iter(|| from_xml(&to_xml(std::hint::black_box(&desc))).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
