//! Criterion bench: the level-3 relational engine — event inserts, indexed
//! selection, and database persistence.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use excovery_store::records::EventRow;
use excovery_store::schema::create_level3_database;
use excovery_store::{Predicate, SqlValue};

fn filled(n_events: u64) -> excovery_store::Database {
    let mut db = create_level3_database();
    for i in 0..n_events {
        EventRow {
            run_id: i % 50,
            node_id: format!("t9-{:03}", i % 6),
            common_time_ns: (i * 997) as i64,
            event_type: if i % 7 == 0 {
                "sd_service_add"
            } else {
                "sd_query"
            }
            .into(),
            parameter: "service=sm-a".into(),
        }
        .insert(&mut db)
        .unwrap();
    }
    db
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("insert_10k_events", |b| b.iter(|| filled(10_000)));
    let db = filled(10_000);
    g.bench_function("select_run_ordered_indexed", |b| {
        b.iter(|| EventRow::read_run(std::hint::black_box(&db), 7).unwrap())
    });
    // The same query without the RunID index (full scan baseline).
    let scan_db = {
        let mut d = db.clone();
        let path = std::env::temp_dir().join("excovery-bench-noindex.json");
        // Rebuild an unindexed clone via a fresh table copy.
        let t = d.table_mut("Events").unwrap();
        let rows: Vec<_> = t.rows().to_vec();
        let cols = t.columns.clone();
        let mut plain = excovery_store::Table::new(cols);
        for r in rows {
            plain.insert(r).unwrap();
        }
        *t = plain;
        let _ = path;
        d
    };
    g.bench_function("select_run_ordered_scan", |b| {
        b.iter(|| EventRow::read_run(std::hint::black_box(&scan_db), 7).unwrap())
    });
    g.bench_function("count_predicate", |b| {
        b.iter(|| {
            db.table("Events")
                .unwrap()
                .count(&Predicate::Eq(
                    "EventType".into(),
                    SqlValue::from("sd_service_add"),
                ))
                .unwrap()
        })
    });
    let dir = std::env::temp_dir().join("excovery-bench-store");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.expdb");
    g.bench_function("save_and_load_10k", |b| {
        b.iter(|| {
            db.save(&path).unwrap();
            excovery_store::Database::load(&path).unwrap()
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
