//! Shared helpers for the table/figure harness binaries.

use excovery_analysis::responsiveness::ResponsivenessPoint;
use excovery_analysis::runs::{DiscoveryEpisode, RunView};
use excovery_core::{EngineConfig, ExperiMaster, ExperimentOutcome};
use excovery_desc::ExperimentDescription;
use excovery_netsim::topology::Topology;
use std::collections::HashMap;

/// Replications per treatment, from `EXCOVERY_REPS` (default 40).
///
/// The paper runs 1000 replications per treatment; 40 keeps the harnesses
/// interactive while preserving every qualitative shape.
pub fn reps_from_env() -> u64 {
    std::env::var("EXCOVERY_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Deadlines (seconds) reported by the responsiveness harnesses.
pub const DEADLINES_S: [f64; 8] = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0];

/// Executes a description on `topology` and returns the outcome plus the
/// run→treatment mapping needed for per-treatment grouping.
pub fn execute_on(
    desc: ExperimentDescription,
    topology: Topology,
) -> Result<(ExperimentOutcome, HashMap<u64, String>), String> {
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = topology;
    execute_with(desc, cfg)
}

/// Executes with an explicit engine configuration.
pub fn execute_with(
    desc: ExperimentDescription,
    cfg: EngineConfig,
) -> Result<(ExperimentOutcome, HashMap<u64, String>), String> {
    let mut master = ExperiMaster::new(desc, cfg)?;
    let outcome = master.execute()?;
    let by_run = outcome
        .runs
        .iter()
        .map(|r| (r.run_id, r.treatment_key.clone()))
        .collect();
    Ok((outcome, by_run))
}

/// All discovery episodes of an outcome.
pub fn episodes(outcome: &ExperimentOutcome) -> Vec<DiscoveryEpisode> {
    RunView::all_episodes(&outcome.database).expect("episodes readable")
}

/// Renders a compact series `deadline → R` as one table row.
pub fn curve_row(label: &str, curve: &[ResponsivenessPoint]) -> String {
    let cells: Vec<String> = curve
        .iter()
        .map(|p| format!("{:>6.3}", p.probability))
        .collect();
    format!("{label:<28} {}", cells.join(" "))
}

/// The table header matching [`curve_row`].
pub fn curve_header() -> String {
    let cells: Vec<String> = DEADLINES_S.iter().map(|d| format!("{d:>6}")).collect();
    format!("{:<28} {}", "treatment \\ deadline_s", cells.join(" "))
}

/// Extracts `t_R` values (seconds) of successful first discoveries.
pub fn first_t_rs_s(eps: &[DiscoveryEpisode]) -> Vec<f64> {
    eps.iter()
        .filter_map(|e| e.first_t_r_ns())
        .map(|t| t as f64 / 1e9)
        .collect()
}

/// Result of one harness execution: the outcome plus the run→treatment map.
pub type ExecResult = Result<(ExperimentOutcome, HashMap<u64, String>), String>;

/// A deterministic parallel campaign over independent experiments.
///
/// Sweeps over independent descriptions are embarrassingly parallel: each
/// experiment derives all randomness from its own description seed, so
/// results depend only on the job list — never on scheduling. Jobs are
/// fanned across a bounded pool of scoped worker threads and results are
/// merged **in submission order**, making the output byte-identical to
/// running the same jobs serially (the MACI scaling model).
#[derive(Debug, Clone, Copy)]
pub struct Campaign {
    workers: usize,
}

impl Campaign {
    /// A campaign with an explicit worker count (`0` = available
    /// parallelism).
    pub fn new(workers: usize) -> Self {
        Self { workers }
    }

    /// Worker count from `EXCOVERY_WORKERS` (default: auto).
    ///
    /// # Panics
    /// Panics with a clear message when `EXCOVERY_WORKERS` is set but not
    /// a non-negative integer — a typo like `EXCOVERY_WORKERS=four` must
    /// not silently fall back to auto-sizing (same contract as
    /// [`excovery_netsim::campaign::workers_from_env`], which this
    /// delegates to).
    pub fn from_env() -> Self {
        Self::new(excovery_netsim::campaign::workers_from_env())
    }

    /// A serial campaign (one worker) — the reference execution order.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Executes all jobs, returning results in submission order. A
    /// panicking experiment yields an `Err` for its own slot only.
    pub fn run(&self, jobs: Vec<(ExperimentDescription, EngineConfig)>) -> Vec<ExecResult> {
        let count = jobs.len();
        let slots: Vec<std::sync::Mutex<Option<(ExperimentDescription, EngineConfig)>>> = jobs
            .into_iter()
            .map(|j| std::sync::Mutex::new(Some(j)))
            .collect();
        excovery_netsim::run_indexed(self.workers, count, |i| {
            let (desc, cfg) = slots[i]
                .lock()
                .expect("campaign job slot poisoned")
                .take()
                .expect("campaign job taken twice");
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_with(desc, cfg)))
                .unwrap_or_else(|_| Err("experiment thread panicked".into()))
        })
    }
}

/// Runs independent experiments in parallel across a bounded worker pool;
/// results return in input order. Convenience wrapper over [`Campaign`].
pub fn execute_parallel(jobs: Vec<(ExperimentDescription, EngineConfig)>) -> Vec<ExecResult> {
    Campaign::from_env().run(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_analysis::responsiveness::responsiveness_curve;
    use excovery_core::scenarios::loss_sweep;

    #[test]
    fn harness_executes_and_groups() {
        let desc = loss_sweep(&[0.0], 2, 1);
        let (outcome, by_run) = execute_on(desc, Topology::chain(2)).unwrap();
        assert_eq!(outcome.runs.len(), 2);
        assert_eq!(by_run.len(), 2);
        let eps = episodes(&outcome);
        assert_eq!(eps.len(), 2);
        assert_eq!(first_t_rs_s(&eps).len(), 2);
    }

    #[test]
    fn row_and_header_align() {
        let eps = vec![];
        let curve = responsiveness_curve(&eps, 1, &DEADLINES_S);
        let header = curve_header();
        let row = curve_row("x", &curve);
        // "treatment \ deadline_s" contributes three tokens, the label one.
        assert_eq!(header.split_whitespace().count() - 3, DEADLINES_S.len());
        assert_eq!(row.split_whitespace().count() - 1, DEADLINES_S.len());
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        use excovery_core::scenarios::hop_distance;
        let job = || {
            let mut cfg = EngineConfig::grid_default();
            cfg.topology = Topology::chain(2);
            (hop_distance(2, 3), cfg)
        };
        let results = execute_parallel(vec![job(), job()]);
        assert_eq!(results.len(), 2);
        let eps: Vec<Vec<_>> = results
            .into_iter()
            .map(|r| episodes(&r.expect("experiment ok").0))
            .collect();
        // Identical descriptions + seeds produce identical measurements,
        // also when executed concurrently.
        assert_eq!(eps[0], eps[1]);
        let seq = execute_with(job().0, job().1).unwrap();
        assert_eq!(episodes(&seq.0), eps[0]);
    }

    #[test]
    fn reps_default() {
        // Only checks the default path (env var not set in tests).
        if std::env::var("EXCOVERY_REPS").is_err() {
            assert_eq!(reps_from_env(), 40);
        }
    }
}
