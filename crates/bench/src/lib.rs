//! # excovery-bench
//!
//! Harnesses that regenerate every table and figure of the ExCovery paper,
//! plus the case-study experiments its evaluation infrastructure was built
//! for (see EXPERIMENTS.md at the workspace root for the full index).
//!
//! Binaries (``cargo run -p excovery-bench --release --bin <name>``):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_schema` | Table I — storage schema |
//! | `fig2_architectures` | Fig. 2 — two-party vs three-party message flows |
//! | `fig3_workflow` | Fig. 3 — concepts and experiment workflow |
//! | `fig5_plan` | Fig. 5 — factor list and treatment plan |
//! | `fig11_timeline` | Fig. 11 — one-shot discovery visualization |
//! | `fig_listings` | Figs. 4–10 — the XML description listings |
//! | `cs1_responsiveness_loss` | CS-1 — responsiveness vs message loss |
//! | `cs2_responsiveness_load` | CS-2 — responsiveness vs generated load |
//! | `cs3_responsiveness_hops` | CS-3 — responsiveness vs hop distance |
//! | `cs4_architecture_compare` | CS-4 — architectures, SCM trade-off |
//! | `cs5_ablation_backoff` | CS-5 — query backoff ablation |
//!
//! Replication counts scale with the `EXCOVERY_REPS` environment variable
//! (default 40); the paper uses 1000 per treatment.

pub mod harness;
