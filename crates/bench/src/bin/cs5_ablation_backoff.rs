//! **CS-5** — ablation of the SDP's query retransmission backoff, the
//! protocol design choice the request/response pairing of the modified
//! Avahi makes analyzable (paper §VI).
//!
//! Compares backoff multipliers under 40% injected loss: constant retry
//! (1.0) recovers fastest but floods the medium with queries; aggressive
//! backoff (3.0) is cheap but pushes recovery past short deadlines.

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_bench::harness::{curve_header, curve_row, episodes, reps_from_env, DEADLINES_S};
use excovery_core::scenarios::loss_sweep;
use excovery_core::EngineConfig;
use excovery_netsim::topology::Topology;
use excovery_sd::SdConfig;

fn main() -> Result<(), String> {
    let reps = reps_from_env();
    println!("CS-5: query-backoff ablation at 75% message loss ({reps} replications/setting)\n");
    println!("{}", curve_header());
    let mut costs = Vec::new();
    for &backoff in &[1.0f64, 1.5, 2.0, 3.0] {
        let desc = loss_sweep(&[0.75], reps, 20265);
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = Topology::chain(2);
        cfg.sd_config = Some(SdConfig {
            query_backoff: backoff,
            ..SdConfig::two_party()
        });
        let mut master = excovery_core::ExperiMaster::new(desc, cfg)?;
        let outcome = master.execute()?;
        let stats = master.simulator().lock().stats();
        let eps = episodes(&outcome);
        let curve = responsiveness_curve(&eps, 1, &DEADLINES_S);
        println!("{}", curve_row(&format!("backoff={backoff}"), &curve));
        costs.push((backoff, stats.sent as f64 / outcome.runs.len() as f64));
    }
    println!("\nnetwork cost (transmissions per run):");
    for (backoff, cost) in costs {
        println!("  backoff={backoff}: {cost:.1}");
    }
    Ok(())
}
