//! Regenerates **Fig. 3**: overview of ExCovery concepts and experiment
//! workflow — narrated over a real execution: preparation (description,
//! platform setup), execution (runs with treatments), collection &
//! conditioning, and storage.

use excovery_bench::harness::execute_with;
use excovery_core::EngineConfig;
use excovery_desc::ExperimentDescription;
use excovery_store::records::{EventRow, ExperimentInfo, RunInfoRow};

fn main() -> Result<(), String> {
    println!("Fig. 3 — ExCovery concepts and experiment workflow\n");

    // [experimenter] experiment design -> abstract description
    let desc = ExperimentDescription::paper_two_party_sd(2);
    println!("1. preparation:");
    println!(
        "   description '{}' with {} factors, {} node processes,",
        desc.name,
        desc.factors.factors.len(),
        desc.node_processes.len()
    );
    let plan = desc.plan();
    println!(
        "   treatment plan: {} runs over {} treatments",
        plan.len(),
        plan.distinct_treatments().len()
    );

    // platform setup + execution by the experiment master
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(4);
    let (outcome, _) = execute_with(desc, cfg)?;
    println!("\n2. execution (master drives nodes over XML-RPC):");
    for r in &outcome.runs {
        println!(
            "   run {:>2}  replicate {}  completed={}  events={:>3}  packets={:>4}  duration={}",
            r.run_id, r.replicate, r.completed, r.events, r.packets, r.duration
        );
    }

    println!("\n3. collection & conditioning (common time base):");
    let infos = RunInfoRow::read_all(&outcome.database).map_err(|e| e.to_string())?;
    for i in infos.iter().take(6) {
        println!(
            "   run {:>2}  node {:<8} measured clock offset {:>10} ns",
            i.run_id, i.node_id, i.time_diff_ns
        );
    }

    println!("\n4. storage (single package per experiment, Table I schema):");
    let info = ExperimentInfo::read(&outcome.database).map_err(|e| e.to_string())?;
    println!(
        "   ExperimentInfo: name='{}' version='{}'",
        info.name, info.ee_version
    );
    for t in outcome.database.table_names() {
        println!(
            "   {t:<24} {:>5} rows",
            outcome.database.table(t).unwrap().len()
        );
    }
    let total_events = EventRow::read_all(&outcome.database)
        .map_err(|e| e.to_string())?
        .len();
    println!("\n   {total_events} events conditioned and stored");
    Ok(())
}
