//! **CS-7** — ablation of known-answer suppression (RFC 6762 §7.1), the
//! cache-driven traffic-reduction mechanism the SD substrate implements
//! ("most SDPs implement also a local cache ... to reduce network load",
//! paper §III-A).
//!
//! N service users keep a continuous search running against one SM; with
//! suppression on, queries list the cached instance and the SM stays
//! silent, cutting response traffic without hurting responsiveness.

use excovery_bench::harness::reps_from_env;
use excovery_netsim::link::LinkModel;
use excovery_netsim::sim::{Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{NodeId, SimDuration};
use excovery_sd::agent::SdAgent;
use excovery_sd::{
    sd_command, Role, SdCommand, SdConfig, ServiceDescription, ServiceType, SD_PORT,
};

fn run(n_sus: u16, suppression: bool, seed: u64) -> (u64, u64, u64) {
    let cfg = SimulatorConfig {
        link_model: LinkModel {
            base_loss: 0.01,
            ..LinkModel::default()
        },
        ..SimulatorConfig::perfect_clocks(seed)
    };
    let mut sim = Simulator::new(Topology::grid((n_sus + 1).into(), 1), cfg);
    let sd_cfg = SdConfig {
        known_answer_suppression: suppression,
        ..SdConfig::two_party()
    };
    for n in 0..=n_sus {
        sim.install_agent(
            NodeId(n),
            SD_PORT,
            Box::new(SdAgent::new(sd_cfg.clone(), SD_PORT)),
        );
    }
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(
        &mut sim,
        NodeId(0),
        SdCommand::StartPublish(ServiceDescription::new(
            "sm",
            ServiceType::new("_cs7._tcp"),
            NodeId(0),
        )),
    );
    for n in 1..=n_sus {
        sd_command(&mut sim, NodeId(n), SdCommand::Init(Role::ServiceUser));
        sd_command(
            &mut sim,
            NodeId(n),
            SdCommand::StartSearch(ServiceType::new("_cs7._tcp")),
        );
    }
    // Continuous operation: maintenance queries keep firing.
    sim.run_for(SimDuration::from_secs(60));
    let stats = sim
        .with_agent_mut(NodeId(0), SD_PORT, |agent, _| {
            agent
                .as_any_mut()
                .downcast_ref::<SdAgent>()
                .unwrap()
                .stats()
        })
        .unwrap();
    let discovered = sim
        .drain_protocol_events()
        .iter()
        .filter(|e| e.name == "sd_service_add")
        .count() as u64;
    (stats.responses_sent, stats.suppressed_responses, discovered)
}

fn main() {
    let reps = (reps_from_env() / 10).max(3);
    println!("CS-7: known-answer suppression ablation ({reps} seeds, 60 s continuous search)\n");
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>12}",
        "SUs", "suppression", "responses", "suppressed", "discoveries"
    );
    for &n_sus in &[1u16, 4, 8] {
        for &supp in &[true, false] {
            let (mut resp, mut suppd, mut disc) = (0, 0, 0);
            for seed in 0..reps {
                let (r, s, d) = run(n_sus, supp, 1000 + seed);
                resp += r;
                suppd += s;
                disc += d;
            }
            println!(
                "{:<8} {:<12} {:>12.1} {:>12.1} {:>12.1}",
                n_sus,
                supp,
                resp as f64 / reps as f64,
                suppd as f64 / reps as f64,
                disc as f64 / reps as f64
            );
        }
    }
    println!("\nshape: suppression cuts the SM's response load as SUs (and their caches)");
    println!("grow, at identical discovery counts — the cache earns its keep.");
}
