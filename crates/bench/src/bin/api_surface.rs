//! Public-API surface snapshot: walks every crate's sources, extracts the
//! `pub` item declarations and diffs them against the committed
//! `API_SURFACE.txt` baseline.
//!
//! The point is to make API changes *visible in review*: any PR that adds,
//! removes or renames an exported item must also touch the baseline, so
//! accidental surface growth (or silent breakage) cannot slip through CI.
//!
//! Usage:
//!   api_surface [repo-root]        # diff against API_SURFACE.txt, exit 1 on drift
//!   EXCOVERY_BLESS=1 api_surface   # rewrite the baseline
//!
//! The extractor is a line scanner, not a parser: it records the first
//! line of every `pub` declaration (fn/struct/enum/trait/type/const/
//! static/mod/use/macro) outside `#[cfg(test)]` regions, normalized by
//! stripping trailing `{`/`;`/`(` punctuation. That is deliberately
//! simple — stable snapshots beat complete signatures.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const BASELINE: &str = "API_SURFACE.txt";

const PUB_PREFIXES: [&str; 12] = [
    "pub fn ",
    "pub async fn ",
    "pub unsafe fn ",
    "pub const fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub static ",
    "pub mod ",
    "pub use ",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts the normalized `pub` declaration lines of one source file,
/// ignoring everything from the first `#[cfg(test)]` on (test modules sit
/// at the bottom of every file in this repo).
fn pub_items(source: &str) -> Vec<String> {
    let mut items = Vec::new();
    for line in source.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let t = line.trim_start();
        if !PUB_PREFIXES.iter().any(|p| t.starts_with(p)) {
            continue;
        }
        let norm = t
            .trim_end()
            .trim_end_matches('{')
            .trim_end_matches('(')
            .trim_end_matches(';')
            .trim_end()
            .to_string();
        items.push(norm);
    }
    items
}

fn surface(root: &Path) -> String {
    let mut files = Vec::new();
    for crate_dir in ["crates", "src"] {
        rust_sources(&root.join(crate_dir), &mut files);
    }
    files.retain(|p| {
        // Only library surface: skip examples, benches, bins and tests.
        let rel = p.strip_prefix(root).unwrap_or(p);
        let parts: Vec<&str> = rel.iter().filter_map(|c| c.to_str()).collect();
        parts.contains(&"src") && !parts.contains(&"bin") && !parts.contains(&"tests")
    });
    let mut lines = Vec::new();
    for path in files {
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        for item in pub_items(&text) {
            lines.push(format!("{rel}: {item}"));
        }
    }
    lines.sort();
    let mut out = String::with_capacity(lines.len() * 64);
    for l in &lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

fn main() -> Result<(), String> {
    let root = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".into()));
    let got = surface(&root);
    let baseline_path = root.join(BASELINE);
    if std::env::var("EXCOVERY_BLESS").is_ok() {
        fs::write(&baseline_path, &got).map_err(|e| e.to_string())?;
        eprintln!(
            "blessed {} ({} items)",
            baseline_path.display(),
            got.lines().count()
        );
        return Ok(());
    }
    let want = fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "{}: {e} (run with EXCOVERY_BLESS=1 to create)",
            baseline_path.display()
        )
    })?;
    if got == want {
        eprintln!("API surface unchanged ({} items)", got.lines().count());
        return Ok(());
    }
    let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
    let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
    for item in want_set.difference(&got_set) {
        println!("- {item}");
    }
    for item in got_set.difference(&want_set) {
        println!("+ {item}");
    }
    Err(format!(
        "public API surface drifted from {BASELINE} — review the diff above and re-bless with \
         EXCOVERY_BLESS=1 if intentional"
    ))
}
