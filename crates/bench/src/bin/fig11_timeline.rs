//! Regenerates **Fig. 11**: visualization of a one-shot discovery process
//! (per-actor timelines, actions as white and events as black circles),
//! from a freshly executed run of the paper's two-party experiment.

use excovery_analysis::timeline::Timeline;
use excovery_bench::harness::execute_with;
use excovery_core::EngineConfig;
use excovery_desc::ExperimentDescription;
use excovery_store::records::EventRow;
use std::collections::BTreeMap;

fn main() -> Result<(), String> {
    let desc = ExperimentDescription::paper_two_party_sd(1);
    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(1);
    let (outcome, _) = execute_with(desc, cfg)?;
    let events = EventRow::read_run(&outcome.database, 0).map_err(|e| e.to_string())?;
    let actors = BTreeMap::from([
        ("t9-157".to_string(), "SM1".to_string()),
        ("t9-105".to_string(), "SU1".to_string()),
    ]);
    let timeline = Timeline::from_events(&events, &actors);
    println!("{}", timeline.render_ascii(100));
    let path = "target/fig11_timeline.svg";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, timeline.render_svg(900)).map_err(|e| e.to_string())?;
    println!("SVG written to {path}");
    Ok(())
}
