//! **CS-4** — two-party vs three-party vs hybrid with growing numbers of
//! SMs: where centralization pays off.
//!
//! Expected crossover: with few SMs the decentralized architecture is
//! cheaper (no registrations, no SCM adverts); as SMs grow, the directed
//! three-party discovery answers one query with all registrations, while
//! the two-party flood cost grows with responders.

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_bench::harness::{episodes, reps_from_env};
use excovery_core::scenarios::multi_sm;
use excovery_core::EngineConfig;
use excovery_netsim::topology::Topology;

fn main() -> Result<(), String> {
    let reps = (reps_from_env() / 2).max(5);
    println!("CS-4: architecture comparison ({reps} replications/cell)\n");
    println!(
        "{:<14} {:>5} {:>10} {:>12} {:>12} {:>10}",
        "architecture", "n_sm", "R(2s,k=n)", "tx/run", "relays/run", "R(30s)"
    );
    for &n_sm in &[1usize, 2, 4, 8] {
        for arch in ["two-party", "three-party", "hybrid"] {
            let with_scm = arch != "two-party";
            let desc = multi_sm(n_sm, arch, with_scm, reps, 20264);
            let mut cfg = EngineConfig::grid_default();
            cfg.topology = Topology::grid(4, 3);
            let mut master = excovery_core::ExperiMaster::new(desc, cfg)?;
            let outcome = master.execute()?;
            let stats = master.simulator().lock().stats();
            let eps = episodes(&outcome);
            let curve = responsiveness_curve(&eps, n_sm, &[2.0, 30.0]);
            let runs = outcome.runs.len() as f64;
            println!(
                "{arch:<14} {n_sm:>5} {:>10.3} {:>12.1} {:>12.1} {:>10.3}",
                curve[0].probability,
                stats.sent as f64 / runs,
                stats.forwarded as f64 / runs,
                curve[1].probability,
            );
        }
    }
    println!("\nshape: directed discovery amortizes the SCM as SMs grow; the flood cost");
    println!("of two-party grows with responders while three-party queries stay unicast.");
    Ok(())
}
