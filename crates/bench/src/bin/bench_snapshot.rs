//! Bench smoke runner: times the netsim reference workloads with plain
//! `Instant` and writes `BENCH_netsim.json`.
//!
//! Criterion runs take minutes; this finishes in seconds, which makes it
//! usable as a CI smoke check that the hot paths still execute and their
//! *deterministic* outputs (events processed, packets delivered, state
//! digests) still match the committed snapshot. Timing fields are recorded
//! for local before/after comparisons but vary by machine — only the
//! `events`, packet-counter and `digest` fields are expected to be stable
//! across environments. The `note` field carries per-row provenance (what
//! the row measures, when and why it was last re-blessed) and is not
//! compared.
//!
//! The `flood_grid100x100_1Mpkts` pair additionally exercises the sharded
//! executor: the same ~1M-packet-event flood runs with 1 and 4 spatial
//! shards, the binary asserts the two state digests are bit-identical, and
//! the sharded row records the per-shard event split plus the number of
//! cross-shard mailbox crossings as deterministic fields.
//!
//! Usage: `bench_snapshot [output-path]` (default `BENCH_netsim.json`).

use excovery_netsim::sim::{SimStats, Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{run_replications, Agent, CampaignConfig, Destination, NodeId, Payload};
use std::time::Instant;

/// A packet sink: counts as a delivery (an agent is bound at the
/// destination port) without generating any traffic of its own.
struct Sink;

impl Agent for Sink {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Deterministic outputs of one workload execution.
struct RunOut {
    events: u64,
    stats: SimStats,
    digest: u64,
    /// Per-shard event split — only recorded for explicitly sharded rows.
    shard_events: Option<Vec<u64>>,
    /// Cross-shard mailbox crossings — only for explicitly sharded rows.
    crossings: Option<u64>,
}

impl RunOut {
    fn of(sim: &Simulator, events: u64, sharded: bool) -> Self {
        Self {
            events,
            stats: sim.stats(),
            digest: sim.state_digest(),
            shard_events: sharded.then(|| sim.events_per_shard()),
            crossings: sharded.then(|| sim.mailbox_crossings()),
        }
    }
}

/// One timed workload: median wall time over `iters` runs plus the
/// deterministic outputs of a single run.
struct Sample {
    name: &'static str,
    note: &'static str,
    ns_per_iter: u128,
    out: RunOut,
}

fn measure(
    name: &'static str,
    note: &'static str,
    iters: u32,
    mut run: impl FnMut() -> RunOut,
) -> Sample {
    // Warm-up run also provides the deterministic outputs.
    let out = run();
    let mut times: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Sample {
        name,
        note,
        ns_per_iter: times[times.len() / 2],
        out,
    }
}

fn unicast_4hops_with(publish_obs: bool) -> RunOut {
    let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(1));
    sim.install_agent(NodeId(4), 9, Box::new(Sink));
    for _ in 0..1_000u64 {
        sim.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(4)),
            Payload::from("x"),
        );
    }
    let events = sim.run_until_idle(1_000_000);
    if publish_obs {
        sim.publish_obs();
    }
    RunOut::of(&sim, events, false)
}

fn unicast_4hops() -> RunOut {
    unicast_4hops_with(false)
}

fn flood_grid5x5() -> RunOut {
    let mut sim = Simulator::new(Topology::grid(5, 5), SimulatorConfig::perfect_clocks(2));
    for n in 1..25u16 {
        sim.install_agent(NodeId(n), 9, Box::new(Sink));
    }
    for _ in 0..1_000u64 {
        sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
    }
    let events = sim.run_until_idle(10_000_000);
    RunOut::of(&sim, events, false)
}

/// The sharded-executor headline workload: a 10 000-node grid flooded with
/// 50 mesh-wide multicasts ≈ one million packet events (each send reaches
/// 9 999 subscribers and is relayed once per node).
fn flood_grid100x100(shards: usize) -> RunOut {
    let mut sim = Simulator::new(
        Topology::grid(100, 100),
        SimulatorConfig::perfect_clocks(4).with_shards(shards),
    );
    for n in 1..10_000u16 {
        sim.install_agent(NodeId(n), 9, Box::new(Sink));
    }
    for _ in 0..50u64 {
        sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
    }
    let events = sim.run_until_idle(4_000_000);
    RunOut::of(&sim, events, shards > 1)
}

fn campaign(workers: usize) -> RunOut {
    let reps = run_replications(
        &CampaignConfig::builder()
            .master_seed(3)
            .replications(8)
            .workers(workers)
            .build(),
        |_rep, seed| {
            let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(seed));
            sim.install_agent(NodeId(4), 9, Box::new(Sink));
            for _ in 0..1_000u64 {
                sim.send_from(
                    NodeId(0),
                    9,
                    Destination::Unicast(NodeId(4)),
                    Payload::from("x"),
                );
            }
            let events = sim.run_until_idle(1_000_000);
            (events, sim.stats(), sim.state_digest())
        },
    );
    // Fold the per-replication digests in replication order so the
    // campaign rows also pin cross-replication determinism.
    let mut out = reps.into_iter().fold(
        RunOut {
            events: 0,
            stats: SimStats::default(),
            digest: 0xcbf2_9ce4_8422_2325,
            shard_events: None,
            crossings: None,
        },
        |mut acc, (events, stats, digest)| {
            acc.events += events;
            acc.stats.sent += stats.sent;
            acc.stats.delivered += stats.delivered;
            acc.stats.forwarded += stats.forwarded;
            acc.digest = (acc.digest ^ digest).wrapping_mul(0x0000_0100_0000_01b3);
            acc
        },
    );
    out.shard_events = None;
    out
}

fn render(samples: &[Sample]) -> String {
    // Hand-rolled JSON: every value is a number, a fixed identifier or a
    // quoted note without special characters, so no escaping is needed and
    // the snapshot stays dependency-free.
    let mut out = String::from("{\n  \"suite\": \"netsim\",\n  \"benches\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let mut extra = String::new();
        if let Some(per_shard) = &s.out.shard_events {
            let list = per_shard
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            extra.push_str(&format!(", \"shard_events\": [{list}]"));
        }
        if let Some(crossings) = s.out.crossings {
            extra.push_str(&format!(", \"mailbox_crossings\": {crossings}"));
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"events\": {}, \
             \"sent\": {}, \"delivered\": {}, \"forwarded\": {}, \
             \"digest\": \"{:#018x}\"{}, \"note\": \"{}\"}}{}\n",
            s.name,
            s.ns_per_iter,
            s.out.events,
            s.out.stats.sent,
            s.out.stats.delivered,
            s.out.stats.forwarded,
            s.out.digest,
            extra,
            s.note,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_netsim.json".into());
    let iters: u32 = std::env::var("EXCOVERY_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let samples = [
        measure(
            "unicast_4hops_1000pkts",
            "serial chain reference workload",
            iters,
            unicast_4hops,
        ),
        measure(
            "flood_grid5x5_1000pkts",
            "re-blessed 2026-08: canonical offline-stub RNG stream (see \
             crates/netsim/src/rng.rs docs); counters drifted from the \
             pre-canonical stream, invariants unchanged",
            iters,
            flood_grid5x5,
        ),
        measure(
            "campaign_unicast_8reps_serial",
            "workers=1 baseline; digest folds per-replication digests",
            iters,
            || campaign(1),
        ),
        measure(
            "campaign_unicast_8reps_parallel",
            "auto workers; deterministic fields must equal the serial row",
            iters,
            || campaign(0),
        ),
        // Observability overhead probe: the same unicast workload with the
        // obs layer enabled and the batch publish included. Its timing is
        // the overhead report; its deterministic fields must equal the
        // plain sample's (CI compares this row too).
        {
            excovery_obs::ObsConfig::on().install();
            let s = measure(
                "unicast_4hops_1000pkts_obs_on",
                "obs overhead probe; deterministic fields equal the plain row",
                iters,
                || unicast_4hops_with(true),
            );
            excovery_obs::ObsConfig::off().install();
            s
        },
        measure(
            "flood_grid100x100_1Mpkts",
            "10k-node flood, ~1M packet events, single event queue",
            iters,
            || flood_grid100x100(1),
        ),
        measure(
            "flood_grid100x100_1Mpkts_4shards",
            "same flood on 4 spatial shards with conservative lookahead; \
             timing measured on whatever cores CI offers (1-core hosts \
             show barrier overhead, not speedup) — the row exists to pin \
             shard-count invariance and the shard split",
            iters,
            || flood_grid100x100(4),
        ),
    ];
    // The sharded executor's contract, asserted on every bench run: the
    // 4-shard flood is bit-identical to the single-queue flood.
    let serial = &samples[5].out;
    let sharded = &samples[6].out;
    assert_eq!(
        serial.digest, sharded.digest,
        "sharded flood digest must equal the serial digest"
    );
    assert_eq!(serial.events, sharded.events, "event counts must match");
    if let Some(split) = &sharded.shard_events {
        assert_eq!(split.len(), 4, "one counter per shard");
        assert_eq!(
            split.iter().sum::<u64>(),
            sharded.events,
            "per-shard events must sum to the total"
        );
    }
    let json = render(&samples);
    print!("{json}");
    std::fs::write(&path, &json).map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}
