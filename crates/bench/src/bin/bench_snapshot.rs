//! Bench smoke runner: times the netsim reference workloads with plain
//! `Instant` and writes `BENCH_netsim.json`.
//!
//! Criterion runs take minutes; this finishes in seconds, which makes it
//! usable as a CI smoke check that the hot paths still execute and their
//! *deterministic* outputs (events processed, packets delivered) still
//! match the committed snapshot. Timing fields are recorded for local
//! before/after comparisons but vary by machine — only the `events` and
//! `delivered` fields are expected to be stable across environments.
//!
//! Usage: `bench_snapshot [output-path]` (default `BENCH_netsim.json`).

use excovery_netsim::sim::{SimStats, Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{run_replications, Agent, CampaignConfig, Destination, NodeId, Payload};
use std::time::Instant;

/// A packet sink: counts as a delivery (an agent is bound at the
/// destination port) without generating any traffic of its own.
struct Sink;

impl Agent for Sink {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One timed workload: median wall time over `iters` runs plus the
/// deterministic event count and stats of a single run.
struct Sample {
    name: &'static str,
    ns_per_iter: u128,
    events: u64,
    stats: SimStats,
}

fn measure(name: &'static str, iters: u32, mut run: impl FnMut() -> (u64, SimStats)) -> Sample {
    // Warm-up run also provides the deterministic outputs.
    let (events, stats) = run();
    let mut times: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Sample {
        name,
        ns_per_iter: times[times.len() / 2],
        events,
        stats,
    }
}

fn unicast_4hops_with(publish_obs: bool) -> (u64, SimStats) {
    let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(1));
    sim.install_agent(NodeId(4), 9, Box::new(Sink));
    for _ in 0..1_000u64 {
        sim.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(4)),
            Payload::from("x"),
        );
    }
    let events = sim.run_until_idle(1_000_000);
    if publish_obs {
        sim.publish_obs();
    }
    (events, sim.stats())
}

fn unicast_4hops() -> (u64, SimStats) {
    unicast_4hops_with(false)
}

fn flood_grid5x5() -> (u64, SimStats) {
    let mut sim = Simulator::new(Topology::grid(5, 5), SimulatorConfig::perfect_clocks(2));
    for n in 1..25u16 {
        sim.install_agent(NodeId(n), 9, Box::new(Sink));
    }
    for _ in 0..1_000u64 {
        sim.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("x"));
    }
    let events = sim.run_until_idle(10_000_000);
    (events, sim.stats())
}

fn campaign(workers: usize) -> (u64, SimStats) {
    let reps = run_replications(
        &CampaignConfig::builder()
            .master_seed(3)
            .replications(8)
            .workers(workers)
            .build(),
        |_rep, seed| {
            let mut sim = Simulator::new(Topology::chain(5), SimulatorConfig::perfect_clocks(seed));
            sim.install_agent(NodeId(4), 9, Box::new(Sink));
            for _ in 0..1_000u64 {
                sim.send_from(
                    NodeId(0),
                    9,
                    Destination::Unicast(NodeId(4)),
                    Payload::from("x"),
                );
            }
            let events = sim.run_until_idle(1_000_000);
            (events, sim.stats())
        },
    );
    reps.into_iter().fold(
        (0, SimStats::default()),
        |(ev, mut acc), (events, stats)| {
            acc.sent += stats.sent;
            acc.delivered += stats.delivered;
            acc.forwarded += stats.forwarded;
            (ev + events, acc)
        },
    )
}

fn render(samples: &[Sample]) -> String {
    // Hand-rolled JSON: every value is a number or a fixed identifier, so
    // no escaping is needed and the snapshot stays dependency-free.
    let mut out = String::from("{\n  \"suite\": \"netsim\",\n  \"benches\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"events\": {}, \
             \"sent\": {}, \"delivered\": {}, \"forwarded\": {}}}{}\n",
            s.name,
            s.ns_per_iter,
            s.events,
            s.stats.sent,
            s.stats.delivered,
            s.stats.forwarded,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_netsim.json".into());
    let iters: u32 = std::env::var("EXCOVERY_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let samples = [
        measure("unicast_4hops_1000pkts", iters, unicast_4hops),
        measure("flood_grid5x5_1000pkts", iters, flood_grid5x5),
        measure("campaign_unicast_8reps_serial", iters, || campaign(1)),
        measure("campaign_unicast_8reps_parallel", iters, || campaign(0)),
        // Observability overhead probe: the same unicast workload with the
        // obs layer enabled and the batch publish included. Its timing is
        // the overhead report; its deterministic fields must equal the
        // plain sample's (CI compares this row too).
        {
            excovery_obs::ObsConfig::on().install();
            let s = measure("unicast_4hops_1000pkts_obs_on", iters, || {
                unicast_4hops_with(true)
            });
            excovery_obs::ObsConfig::off().install();
            s
        },
    ];
    let json = render(&samples);
    print!("{json}");
    std::fs::write(&path, &json).map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}
