//! Regenerates **Table I**: tables and attributes of the storage concept.
//!
//! Executes a one-run experiment, reads the schema back from the produced
//! level-3 package and prints it in the paper's layout.

use excovery_bench::harness::execute_on;
use excovery_core::scenarios::loss_sweep;
use excovery_netsim::topology::Topology;
use excovery_store::schema::{render_table1, verify_schema};

fn main() -> Result<(), String> {
    println!("TABLE I.  TABLES AND ATTRIBUTES OF CURRENT STORAGE CONCEPT\n");
    println!("{}", render_table1());
    let (outcome, _) = execute_on(loss_sweep(&[0.0], 1, 1), Topology::chain(2))?;
    verify_schema(&outcome.database).map_err(|e| e.to_string())?;
    println!("verified: a freshly executed experiment package matches the schema above;");
    for name in outcome.database.table_names() {
        let table = outcome.database.table(name).map_err(|e| e.to_string())?;
        println!("  {name:<24} {:>5} rows", table.len());
    }
    Ok(())
}
