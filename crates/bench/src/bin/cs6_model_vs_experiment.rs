//! **CS-6** — analytic model vs experiment: the validation loop ExCovery
//! was built for (§VI: "originally developed to support and validate
//! research on SD responsiveness", refs. \[25\]/\[26\]).
//!
//! Runs the hop-distance scenario at several per-link loss levels and
//! overlays the measured R(d) with the closed-form model prediction.

use excovery_analysis::model::ResponsivenessModel;
use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_bench::harness::{episodes, execute_with, reps_from_env};
use excovery_core::scenarios::{chain_between_actors, hop_distance};
use excovery_core::EngineConfig;

fn main() -> Result<(), String> {
    let reps = reps_from_env();
    let deadlines = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0];
    println!("CS-6: measured responsiveness vs analytic model ({reps} replications/cell)\n");
    println!(
        "{:<20} {:>8} {}",
        "configuration",
        "",
        deadlines
            .iter()
            .map(|d| format!("{d:>7}"))
            .collect::<String>()
    );
    for &(hops, loss) in &[(1u32, 0.1f64), (1, 0.3), (3, 0.1), (3, 0.3), (5, 0.2)] {
        let desc = hop_distance(reps, 20_266 + hops as u64);
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = chain_between_actors(hops as usize);
        cfg.sim.link_model.base_loss = loss;
        // The model assumes fixed per-link loss: disable the load term's
        // influence by leaving background traffic off (scenario has none)
        // and keep jitter, which the model absorbs as mean delay.
        let (outcome, _) = execute_with(desc, cfg)?;
        let eps = episodes(&outcome);
        let measured = responsiveness_curve(&eps, 1, &deadlines);
        let model = ResponsivenessModel::new(hops, loss);
        let label = format!("h={hops} p={loss}");
        println!(
            "{label:<20} {:>8} {}",
            "meas",
            measured
                .iter()
                .map(|p| format!("{:>7.3}", p.probability))
                .collect::<String>()
        );
        println!(
            "{:<20} {:>8} {}",
            "",
            "model",
            deadlines
                .iter()
                .map(|d| format!("{:>7.3}", model.predict(*d)))
                .collect::<String>()
        );
    }
    println!("\nthe model should track the measurement within sampling error; deviations");
    println!("at mid deadlines reflect response jitter and the model's independence assumption.");
    Ok(())
}
