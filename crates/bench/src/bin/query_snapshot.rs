//! Bench smoke runner for the columnar query layer: grows a 10M-fact
//! synthetic warehouse cell **on disk** through [`SpillBuilder`] (no
//! more than one run's package is ever materialised in memory), times
//! the spilled group-mean scan against the legacy row engine, and
//! writes `BENCH_query.json`.
//!
//! Same contract as `bench_snapshot`: wall times come from plain
//! `Instant` medians and vary by machine; the *deterministic* fields
//! (`rows`, `groups`, `digest`, `fact_rows`, `partitions`) are expected
//! to be byte-stable across environments and are diffed against the
//! committed snapshot in CI. Four invariants are asserted outright, so
//! a regression fails the binary itself:
//!
//! 1. the columnar per-experiment mean is bit-identical to the legacy
//!    row-engine slice (checked on the 1M-fact calibration cell),
//! 2. `workers = 1` and `workers = 4` produce digest-equal frames over
//!    the spilled 10M-fact cell,
//! 3. the resident set stays bounded by the memory budget plus one
//!    partition, however many scans run,
//! 4. the 10M-fact group-mean scan is at least 10× faster than the row
//!    engine (measured at 1M facts and scaled linearly — both engines
//!    are O(rows) on this query, so the scaling favours the baseline:
//!    the row engine's pointer-chasing only gets worse with size).
//!
//! The memory budget honours `EXCOVERY_QUERY_MEM` (bytes) and defaults
//! to 64 MiB — far below the ~500 MB decoded warehouse, so every full
//! scan cycles partitions through the cache and eviction is exercised
//! on the hot path, not just in unit tests.
//!
//! Usage: `query_snapshot [output-path]` (default `BENCH_query.json`).

use excovery_query::{
    col, lit, Agg, Dataset, SpillBuilder, Value, MEMORY_BUDGET_ENV,
};
use excovery_store::{Aggregate, Column, ColumnType, Database, Predicate, SqlValue};
use std::collections::BTreeMap;
use std::time::Instant;

const EXPERIMENTS: usize = 5;
const RUNS_PER_EXP: usize = 40;
const FACTS_PER_RUN: usize = 50_000;
const FACT_ROWS: usize = EXPERIMENTS * RUNS_PER_EXP * FACTS_PER_RUN; // 10M
/// Calibration cell for the row-engine baseline: 4 runs per experiment.
const CALIB_RUNS_PER_EXP: usize = 4;
const CALIB_ROWS: usize = EXPERIMENTS * CALIB_RUNS_PER_EXP * FACTS_PER_RUN; // 1M
/// Response times repeat in bursts of this length (quantised sampling),
/// which the slab writer picks up as run-length encoding.
const BURST: usize = 16;

/// Splitmix-style generator: deterministic and platform-independent, so
/// the synthetic warehouse (and every digest over it) is reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }
}

fn fact_schema() -> Vec<Column> {
    use ColumnType::*;
    vec![
        Column::new("ExpKey", Integer),
        Column::new("RunKey", Integer),
        Column::new("SuNodeKey", Integer),
        Column::new("Service", Text),
        Column::new("SearchStart", Integer),
        Column::new("ResponseTimeNs", Integer),
    ]
}

/// One run's fact package, seeded only by `(exp, run_key)` so any chunk
/// can be regenerated independently and in any order.
fn run_package(exp: i64, run_key: i64) -> Database {
    let mut db = Database::new();
    db.create_table("FactDiscovery", fact_schema()).unwrap();
    let mut rng = Lcg(0x5eed_2026 ^ (run_key as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let start = (run_key as u64) * 30_000_000_000;
    let mut t_r = 0u64;
    for f in 0..FACTS_PER_RUN as i64 {
        // Response times 1 ms .. ~2 s with an experiment-dependent
        // offset so per-experiment means differ; quantised in bursts.
        if f as usize % BURST == 0 {
            t_r = 1_000_000 + (rng.next() % 2_000_000_000) / (exp as u64 + 1);
        }
        db.insert(
            "FactDiscovery",
            vec![
                SqlValue::Int(exp),
                SqlValue::Int(run_key),
                SqlValue::Int(f % 4),
                SqlValue::Text(format!("sm{}", f % 4)),
                SqlValue::Int(start as i64),
                SqlValue::Int(t_r as i64),
            ],
        )
        .unwrap();
    }
    db
}

/// The 1M-fact calibration cell as one in-memory database (run keys
/// are the *first* `CALIB_RUNS_PER_EXP` of each experiment).
fn calibration_warehouse() -> Database {
    let mut db = Database::new();
    db.create_table("FactDiscovery", fact_schema()).unwrap();
    for exp in 0..EXPERIMENTS as i64 {
        for run in 0..CALIB_RUNS_PER_EXP as i64 {
            let chunk = run_package(exp, exp * RUNS_PER_EXP as i64 + run);
            for row in chunk.table("FactDiscovery").unwrap().rows() {
                db.insert("FactDiscovery", row.clone()).unwrap();
            }
        }
    }
    db
}

/// Streams all 200 run packages through [`SpillBuilder`]: the 10M-fact
/// cell lands on disk one run at a time, never resident as a whole.
fn spill_warehouse(dir: &std::path::Path, budget: u64) -> Dataset {
    let mut b = SpillBuilder::create(dir).unwrap().partition_by("RunKey");
    for exp in 0..EXPERIMENTS as i64 {
        for run in 0..RUNS_PER_EXP as i64 {
            let chunk = run_package(exp, exp * RUNS_PER_EXP as i64 + run);
            b.add_package(&format!("exp{exp}"), &chunk).unwrap();
        }
    }
    b.finish(Some(budget))
}

/// The pre-redesign slice: the row engine answers the per-experiment mean
/// with one `distinct` pass plus one predicate scan per experiment.
fn row_engine_mean(wh: &Database) -> BTreeMap<i64, f64> {
    let facts = wh.table("FactDiscovery").unwrap();
    let mut out = BTreeMap::new();
    for exp in facts.distinct("ExpKey", &Predicate::True).unwrap() {
        let Some(key) = exp.as_int() else { continue };
        if let Some(mean) = facts
            .aggregate(
                "ResponseTimeNs",
                &Predicate::Eq("ExpKey".into(), exp.clone()),
                Aggregate::Avg,
            )
            .unwrap()
        {
            out.insert(key, mean / 1e9);
        }
    }
    out
}

fn columnar_mean(ds: &Dataset, workers: usize) -> (BTreeMap<i64, f64>, u64) {
    let frame = ds
        .scan("FactDiscovery")
        .group_by(["ExpKey"])
        .agg([Agg::mean("ResponseTimeNs").named("mean_ns")])
        .workers(workers)
        .collect()
        .unwrap();
    let digest = frame.digest();
    let mut out = BTreeMap::new();
    for row in &frame.rows {
        if let (Value::I64(key), Value::F64(mean_ns)) = (&row[0], &row[1]) {
            out.insert(*key, mean_ns / 1e9);
        }
    }
    (out, digest)
}

/// FNV-1a over the (key, mean-bits) pairs: one digest format shared by the
/// row-engine and columnar paths, so bit-identity shows up as equal
/// `digest` fields in the snapshot.
fn mean_digest(means: &BTreeMap<i64, f64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (k, v) in means {
        for byte in k.to_le_bytes().into_iter().chain(v.to_bits().to_le_bytes()) {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
    }
    h
}

struct Sample {
    name: &'static str,
    ns_per_iter: u128,
    rows: usize,
    groups: usize,
    digest: u64,
}

fn measure(name: &'static str, iters: u32, mut run: impl FnMut() -> (usize, usize, u64)) -> Sample {
    let (rows, groups, digest) = run();
    let mut times: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Sample {
        name,
        ns_per_iter: times[times.len() / 2],
        rows,
        groups,
        digest,
    }
}

fn render(
    samples: &[Sample],
    fact_rows: usize,
    partitions: usize,
    budget: u64,
    resident: u64,
    speedup: f64,
) -> String {
    // Hand-rolled JSON, like bench_snapshot: fixed identifiers and numbers
    // only, so no escaping and no serializer dependency.
    let mut out = String::from("{\n  \"suite\": \"query\",\n");
    out.push_str(&format!(
        "  \"warehouse\": {{\"experiments\": {EXPERIMENTS}, \"fact_rows\": {fact_rows}, \
         \"partitions\": {partitions}}},\n"
    ));
    out.push_str(&format!(
        "  \"memory\": {{\"budget_bytes\": {budget}, \"resident_bytes_after\": {resident}}},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_columnar_vs_row_engine\": {speedup:.2},\n  \"benches\": [\n"
    ));
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"rows\": {}, \
             \"groups\": {}, \"digest\": {}}}{}\n",
            s.name,
            s.ns_per_iter,
            s.rows,
            s.groups,
            s.digest,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_query.json".into());
    let iters: u32 = std::env::var("EXCOVERY_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let budget: u64 = std::env::var(MEMORY_BUDGET_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(64 * 1024 * 1024);

    // Invariant 1: columnar mean is bit-identical to the row-engine
    // slice, on the 1M-fact calibration cell both engines can hold.
    let calib = calibration_warehouse();
    let calib_ds = Dataset::builder()
        .partition_by("RunKey")
        .add_package("calib", &calib)
        .map_err(|e| e.to_string())?
        .build();
    let old = row_engine_mean(&calib);
    let (new_serial, _) = columnar_mean(&calib_ds, 1);
    assert_eq!(old.len(), new_serial.len(), "group count drifted");
    for (k, v) in &old {
        assert_eq!(
            v.to_bits(),
            new_serial[k].to_bits(),
            "experiment {k}: columnar mean is not bit-identical"
        );
    }

    // Grow the full 10M-fact cell on disk, one run package at a time.
    let spill_dir = std::env::temp_dir().join(format!("query-snap-{}", std::process::id()));
    eprintln!("growing {FACT_ROWS} facts into {}", spill_dir.display());
    let grow_t = Instant::now();
    let ds = spill_warehouse(&spill_dir, budget);
    eprintln!(
        "grew {} partitions in {:.1}s (budget {} MiB)",
        ds.partition_count(),
        grow_t.elapsed().as_secs_f64(),
        budget >> 20,
    );

    // Invariant 2: worker count cannot change the answer, spill or not.
    let (means_serial, digest_serial) = columnar_mean(&ds, 1);
    let (means_parallel, digest_parallel) = columnar_mean(&ds, 4);
    assert_eq!(
        digest_serial, digest_parallel,
        "workers=1 and workers=4 frames diverged over the spilled cell"
    );
    assert_eq!(mean_digest(&means_serial), mean_digest(&means_parallel));

    // Pruning sanity: the SearchStart cutoff selects exactly the first
    // experiment's runs, and min/max footer pruning must not change it.
    let cutoff = (RUNS_PER_EXP as i64) * 30_000_000_000;
    let filtered_count = || {
        let frame = ds
            .scan("FactDiscovery")
            .filter(col("SearchStart").lt(lit(cutoff)))
            .agg([Agg::count()])
            .collect()
            .unwrap();
        let Value::I64(n) = frame.rows[0][0] else {
            unreachable!()
        };
        (n as usize, frame.digest())
    };
    assert_eq!(
        filtered_count().0,
        RUNS_PER_EXP * FACTS_PER_RUN,
        "pruned filtered count is wrong"
    );

    let samples = [
        measure("row_engine_group_mean_1m", iters, || {
            let m = row_engine_mean(&calib);
            (CALIB_ROWS, m.len(), mean_digest(&m))
        }),
        measure("columnar_spilled_group_mean_10m_serial", iters, || {
            let (m, _) = columnar_mean(&ds, 1);
            (FACT_ROWS, m.len(), mean_digest(&m))
        }),
        measure("columnar_spilled_group_mean_10m_workers4", iters, || {
            let (m, _) = columnar_mean(&ds, 4);
            (FACT_ROWS, m.len(), mean_digest(&m))
        }),
        measure("columnar_filtered_count_pruned", iters, || {
            let (n, d) = filtered_count();
            (n, 1, d)
        }),
    ];

    // Invariant 3: after all of the above, the resident set is still
    // bounded by the budget plus at most one in-flight partition.
    let store = ds.spill_store().expect("warehouse is spilled");
    let largest = store
        .footers()
        .map(|f| f.decoded_bytes)
        .max()
        .unwrap_or(0);
    let resident = store.resident_bytes();
    assert!(
        resident <= budget + largest,
        "resident {resident} exceeds budget {budget} + largest partition {largest}"
    );

    // Invariant 4: ≥10× the row engine at 10M facts. The baseline is
    // measured at 1M and scaled linearly (it is a flat O(rows) scan;
    // its per-row cost only grows with the working set).
    let row_10m_ns = samples[0].ns_per_iter * (FACT_ROWS / CALIB_ROWS) as u128;
    let speedup = row_10m_ns as f64 / samples[2].ns_per_iter as f64;
    assert!(
        speedup >= 10.0,
        "spilled columnar scan is only {speedup:.2}x the row engine (need >= 10x)"
    );

    let json = render(
        &samples,
        FACT_ROWS,
        ds.partition_count(),
        budget,
        resident,
        speedup,
    );
    print!("{json}");
    std::fs::write(&path, &json).map_err(|e| format!("write {path}: {e}"))?;
    std::fs::remove_dir_all(&spill_dir).ok();
    eprintln!("wrote {path}");
    Ok(())
}
