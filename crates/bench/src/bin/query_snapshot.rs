//! Bench smoke runner for the columnar query layer: times the reference
//! warehouse scans and writes `BENCH_query.json`.
//!
//! Same contract as `bench_snapshot`: wall times come from plain `Instant`
//! medians and vary by machine; the *deterministic* fields (`rows`,
//! `groups`, `digest`) are expected to be byte-stable across environments
//! and are diffed against the committed snapshot in CI. Three invariants
//! are asserted outright, so a regression fails the binary itself:
//!
//! 1. the columnar per-experiment mean is bit-identical to the legacy
//!    row-engine slice,
//! 2. `workers = 1` and `workers = 4` produce digest-equal frames,
//! 3. the pruned filtered scan returns the same count as the unpruned one.
//!
//! Usage: `query_snapshot [output-path]` (default `BENCH_query.json`).

use excovery_query::{col, lit, Agg, Dataset, Value};
use excovery_store::{Aggregate, Column, ColumnType, Database, Predicate, SqlValue};
use std::collections::BTreeMap;
use std::time::Instant;

const EXPERIMENTS: usize = 6;
const RUNS_PER_EXP: usize = 200;
const FACTS_PER_RUN: usize = 60;

/// Splitmix-style generator: deterministic and platform-independent, so
/// the synthetic warehouse (and every digest over it) is reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 33)).wrapping_mul(0xff51afd7ed558ccd);
        z ^ (z >> 33)
    }
}

/// A synthetic star-schema warehouse shaped like `build_warehouse` output:
/// `EXPERIMENTS` experiments, a fact row per discovery episode, run keys
/// globally unique so `partition_by("RunKey")` shards the scan.
fn synthetic_warehouse() -> Database {
    use ColumnType::*;
    let mut db = Database::new();
    db.create_table(
        "FactDiscovery",
        vec![
            Column::new("ExpKey", Integer),
            Column::new("RunKey", Integer),
            Column::new("SuNodeKey", Integer),
            Column::new("Service", Text),
            Column::new("SearchStart", Integer),
            Column::new("ResponseTimeNs", Integer),
        ],
    )
    .unwrap();
    let mut rng = Lcg(0x5eed_2026);
    let mut run_key: i64 = 0;
    for exp in 0..EXPERIMENTS as i64 {
        for _ in 0..RUNS_PER_EXP {
            let start = (run_key as u64) * 30_000_000_000;
            for f in 0..FACTS_PER_RUN as i64 {
                // Response times 1 ms .. ~2 s, experiment-dependent offset so
                // the per-experiment means differ.
                let t_r = 1_000_000 + (rng.next() % 2_000_000_000) / (exp as u64 + 1);
                db.insert(
                    "FactDiscovery",
                    vec![
                        SqlValue::Int(exp),
                        SqlValue::Int(run_key),
                        SqlValue::Int(f % 4),
                        SqlValue::Text(format!("sm{}", f % 4)),
                        SqlValue::Int(start as i64),
                        SqlValue::Int(t_r as i64),
                    ],
                )
                .unwrap();
            }
            run_key += 1;
        }
    }
    db
}

/// The pre-redesign slice: the row engine answers the per-experiment mean
/// with one `distinct` pass plus one predicate scan per experiment.
fn row_engine_mean(wh: &Database) -> BTreeMap<i64, f64> {
    let facts = wh.table("FactDiscovery").unwrap();
    let mut out = BTreeMap::new();
    for exp in facts.distinct("ExpKey", &Predicate::True).unwrap() {
        let Some(key) = exp.as_int() else { continue };
        if let Some(mean) = facts
            .aggregate(
                "ResponseTimeNs",
                &Predicate::Eq("ExpKey".into(), exp.clone()),
                Aggregate::Avg,
            )
            .unwrap()
        {
            out.insert(key, mean / 1e9);
        }
    }
    out
}

fn columnar_mean(ds: &Dataset, workers: usize) -> (BTreeMap<i64, f64>, u64) {
    let frame = ds
        .scan("FactDiscovery")
        .group_by(["ExpKey"])
        .agg([Agg::mean("ResponseTimeNs").named("mean_ns")])
        .workers(workers)
        .collect()
        .unwrap();
    let digest = frame.digest();
    let mut out = BTreeMap::new();
    for row in &frame.rows {
        if let (Value::I64(key), Value::F64(mean_ns)) = (&row[0], &row[1]) {
            out.insert(*key, mean_ns / 1e9);
        }
    }
    (out, digest)
}

/// FNV-1a over the (key, mean-bits) pairs: one digest format shared by the
/// row-engine and columnar paths, so bit-identity shows up as equal
/// `digest` fields in the snapshot.
fn mean_digest(means: &BTreeMap<i64, f64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (k, v) in means {
        for byte in k.to_le_bytes().into_iter().chain(v.to_bits().to_le_bytes()) {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
    }
    h
}

struct Sample {
    name: &'static str,
    ns_per_iter: u128,
    rows: usize,
    groups: usize,
    digest: u64,
}

fn measure(name: &'static str, iters: u32, mut run: impl FnMut() -> (usize, usize, u64)) -> Sample {
    let (rows, groups, digest) = run();
    let mut times: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Sample {
        name,
        ns_per_iter: times[times.len() / 2],
        rows,
        groups,
        digest,
    }
}

fn render(samples: &[Sample], fact_rows: usize, partitions: usize, speedup: f64) -> String {
    // Hand-rolled JSON, like bench_snapshot: fixed identifiers and numbers
    // only, so no escaping and no serializer dependency.
    let mut out = String::from("{\n  \"suite\": \"query\",\n");
    out.push_str(&format!(
        "  \"warehouse\": {{\"experiments\": {EXPERIMENTS}, \"fact_rows\": {fact_rows}, \
         \"partitions\": {partitions}}},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_columnar_vs_row_engine\": {speedup:.2},\n  \"benches\": [\n"
    ));
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"rows\": {}, \
             \"groups\": {}, \"digest\": {}}}{}\n",
            s.name,
            s.ns_per_iter,
            s.rows,
            s.groups,
            s.digest,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_query.json".into());
    let iters: u32 = std::env::var("EXCOVERY_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let wh = synthetic_warehouse();
    let fact_rows = wh.table("FactDiscovery").unwrap().rows().len();
    let ds = Dataset::builder()
        .partition_by("RunKey")
        .add_package("warehouse", &wh)
        .map_err(|e| e.to_string())?
        .build();

    // Invariant 1: columnar mean is bit-identical to the row-engine slice.
    let old = row_engine_mean(&wh);
    let (new_serial, frame_digest_serial) = columnar_mean(&ds, 1);
    let (new_parallel, frame_digest_parallel) = columnar_mean(&ds, 4);
    assert_eq!(old.len(), new_serial.len(), "group count drifted");
    for (k, v) in &old {
        assert_eq!(
            v.to_bits(),
            new_serial[k].to_bits(),
            "experiment {k}: columnar mean is not bit-identical"
        );
    }
    // Invariant 2: worker count cannot change the answer.
    assert_eq!(
        frame_digest_serial, frame_digest_parallel,
        "workers=1 and workers=4 frames diverged"
    );
    assert_eq!(mean_digest(&new_serial), mean_digest(&new_parallel));

    // Invariant 3: min/max pruning must not change the count. The filter
    // selects the first experiment's run-key range via SearchStart, so most
    // partitions prune away.
    let cutoff = (RUNS_PER_EXP as i64) * 30_000_000_000;
    let pruned = ds
        .scan("FactDiscovery")
        .filter(col("SearchStart").lt(lit(cutoff)))
        .agg([Agg::count()])
        .collect()
        .map_err(|e| e.to_string())?;
    let Value::I64(pruned_count) = pruned.rows[0][0] else {
        return Err("count aggregate did not return an integer".into());
    };
    assert_eq!(
        pruned_count as usize,
        RUNS_PER_EXP * FACTS_PER_RUN,
        "pruned filtered count is wrong"
    );

    let samples = [
        measure("row_engine_group_mean", iters, || {
            let m = row_engine_mean(&wh);
            (fact_rows, m.len(), mean_digest(&m))
        }),
        measure("columnar_group_mean_serial", iters, || {
            let (m, _) = columnar_mean(&ds, 1);
            (fact_rows, m.len(), mean_digest(&m))
        }),
        measure("columnar_group_mean_workers4", iters, || {
            let (m, _) = columnar_mean(&ds, 4);
            (fact_rows, m.len(), mean_digest(&m))
        }),
        measure("columnar_filtered_count_pruned", iters, || {
            let frame = ds
                .scan("FactDiscovery")
                .filter(col("SearchStart").lt(lit(cutoff)))
                .agg([Agg::count()])
                .collect()
                .unwrap();
            let Value::I64(n) = frame.rows[0][0] else {
                unreachable!()
            };
            (n as usize, 1, frame.digest())
        }),
    ];

    let speedup = samples[0].ns_per_iter as f64 / samples[1].ns_per_iter as f64;
    let json = render(&samples, fact_rows, ds.partition_count(), speedup);
    print!("{json}");
    std::fs::write(&path, &json).map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}
