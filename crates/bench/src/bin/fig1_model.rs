//! Regenerates **Fig. 1**: the model of a generic experiment process —
//! controllable factors feeding a black-box process whose responses are
//! observed. Demonstrated on a live run: the treatment's factor levels go
//! in, the recorded events and derived metrics come out.

use excovery_bench::harness::execute_with;
use excovery_core::EngineConfig;
use excovery_desc::ExperimentDescription;
use excovery_store::records::EventRow;

fn main() -> Result<(), String> {
    println!("Fig. 1 — model of a generic experiment process\n");
    let desc = ExperimentDescription::paper_two_party_sd(1);
    let plan = desc.plan();
    let run = &plan.runs[0];

    println!("factors (controlled inputs):");
    for (id, level) in run.treatment.assignments() {
        println!("  {id:<28} = {level}");
    }
    println!(
        "  {:28} = replicate {}",
        desc.factors.replication.id, run.replicate
    );

    println!("\nprocess (black box): one-shot two-party service discovery");

    let mut cfg = EngineConfig::grid_default();
    cfg.max_runs = Some(1);
    let (outcome, _) = execute_with(desc, cfg)?;

    println!("\nresponses (observed outputs):");
    let events = EventRow::read_run(&outcome.database, 0).map_err(|e| e.to_string())?;
    let start = events.iter().find(|e| e.event_type == "sd_start_search");
    let add = events.iter().find(|e| e.event_type == "sd_service_add");
    if let (Some(s), Some(a)) = (start, add) {
        println!(
            "  t_R (response time)         = {:.3} ms",
            (a.common_time_ns - s.common_time_ns) as f64 / 1e6
        );
    }
    println!("  events recorded             = {}", events.len());
    println!(
        "  packets captured            = {}",
        outcome.runs[0].packets
    );
    println!(
        "  run duration                = {}",
        outcome.runs[0].duration
    );
    println!("\n(nuisance factors — channel noise, clock drift — are randomized");
    println!(" per replication and measured, not controlled; §II-A1)");
    Ok(())
}
