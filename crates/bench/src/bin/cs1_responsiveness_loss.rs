//! **CS-1** — responsiveness vs injected message loss (the shape of
//! Dittrich & Salfner, "Experimental responsiveness evaluation of
//! decentralized service discovery", IPDPSW 2013 — paper ref. \[25\]).
//!
//! Expected: R(d) decreases with the loss probability at every deadline,
//! and grows with the deadline as the query retransmission backoff
//! recovers lost exchanges.

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_analysis::runs::RunView;
use excovery_bench::harness::{curve_header, curve_row, execute_on, reps_from_env, DEADLINES_S};
use excovery_core::scenarios::loss_sweep;
use excovery_netsim::topology::Topology;
use std::collections::BTreeMap;

fn main() -> Result<(), String> {
    let losses = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let reps = reps_from_env();
    println!("CS-1: responsiveness vs message loss on the SM ({reps} replications/level)\n");
    let desc = loss_sweep(&losses, reps, 20261);
    let (outcome, by_run) = execute_on(desc, Topology::chain(2))?;

    // Group episodes per loss level.
    let mut grouped: BTreeMap<String, Vec<_>> = BTreeMap::new();
    for run in &outcome.runs {
        let eps = RunView::load(&outcome.database, run.run_id)
            .map_err(|e| e.to_string())?
            .episodes();
        let loss = by_run[&run.run_id]
            .split('|')
            .find(|kv| kv.starts_with("fact_loss="))
            .unwrap_or("fact_loss=?")
            .to_string();
        grouped.entry(loss).or_default().extend(eps);
    }
    println!("{}", curve_header());
    for (label, eps) in grouped {
        let curve = responsiveness_curve(&eps, 1, &DEADLINES_S);
        println!("{}", curve_row(&label, &curve));
    }
    println!("\nshape: R falls with loss; longer deadlines recover via retransmission backoff.");
    Ok(())
}
