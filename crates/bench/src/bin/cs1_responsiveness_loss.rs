//! **CS-1** — responsiveness vs injected message loss (the shape of
//! Dittrich & Salfner, "Experimental responsiveness evaluation of
//! decentralized service discovery", IPDPSW 2013 — paper ref. \[25\]).
//!
//! Expected: R(d) decreases with the loss probability at every deadline,
//! and grows with the deadline as the query retransmission backoff
//! recovers lost exchanges.
//!
//! Each loss level is an independent experiment shard; the campaign fans
//! them across worker threads and merges results in level order, so the
//! output is identical to a serial sweep (set `EXCOVERY_WORKERS=1` to
//! check).

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_bench::harness::{
    curve_header, curve_row, episodes, reps_from_env, Campaign, DEADLINES_S,
};
use excovery_core::scenarios::loss_sweep_shards;
use excovery_core::EngineConfig;
use excovery_netsim::topology::Topology;

fn main() -> Result<(), String> {
    let losses = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let reps = reps_from_env();
    println!("CS-1: responsiveness vs message loss on the SM ({reps} replications/level)\n");
    let jobs: Vec<_> = loss_sweep_shards(&losses, reps, 20261)
        .into_iter()
        .map(|desc| {
            let mut cfg = EngineConfig::grid_default();
            cfg.topology = Topology::chain(2);
            (desc, cfg)
        })
        .collect();
    let results = Campaign::from_env().run(jobs);

    println!("{}", curve_header());
    for (loss, result) in losses.iter().zip(results) {
        let (outcome, _) = result?;
        let eps = episodes(&outcome);
        let curve = responsiveness_curve(&eps, 1, &DEADLINES_S);
        println!("{}", curve_row(&format!("fact_loss={loss}"), &curve));
    }
    println!("\nshape: R falls with loss; longer deadlines recover via retransmission backoff.");
    Ok(())
}
