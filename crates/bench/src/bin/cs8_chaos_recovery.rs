//! **CS-8** — control-plane chaos and recovery cost.
//!
//! Sweeps fault rates of an eventually-clearing [`ChaosOptions`] schedule
//! against the baseline execution of the same descriptions and reports the
//! headline recovery property: the packaged results (64-bit outcome
//! digests) are *identical* with and without chaos — control-channel
//! faults are absorbed by idempotent retry, never reflected in what was
//! measured. Alongside, the actual cost: retries performed and wall time.
//!
//! The sweep runs through the shared [`execute_parallel`] campaign, so
//! `EXCOVERY_WORKERS` bounds the worker pool exactly as for the paper's
//! case studies (set `EXCOVERY_WORKERS=1` for the serial reference).

use excovery_bench::harness::execute_parallel;
use excovery_core::scenarios::loss_sweep;
use excovery_core::{EngineConfig, RetryPolicy};
use excovery_netsim::topology::Topology;
use excovery_rpc::ChaosOptions;
use std::time::Instant;

const SEEDS: [u64; 3] = [301, 1105, 1729];
const FAULT_RATES: [f64; 4] = [0.0, 0.3, 0.6, 0.9];

fn reps() -> u64 {
    std::env::var("EXCOVERY_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn config(rate: f64, seed: u64) -> EngineConfig {
    let mut cfg = EngineConfig::grid_default();
    cfg.topology = Topology::chain(2);
    if rate > 0.0 {
        let chaos = ChaosOptions::flaky(seed ^ 0xC4A0_5000, rate, 64);
        cfg.retry = RetryPolicy::for_chaos(chaos.horizon_calls);
        cfg.chaos = Some(chaos);
    }
    cfg
}

fn main() -> Result<(), String> {
    let reps = reps();
    println!("CS-8: control-plane chaos recovery ({reps} replications/cell)\n");
    println!(
        "{:<8} {:<8} {:>18} {:>9} {:>9}  equal?",
        "rate", "seed", "digest", "retries", "wall_ms"
    );

    for rate in FAULT_RATES {
        // One campaign per rate: the cells are independent experiments and
        // parallelize across EXCOVERY_WORKERS.
        let jobs = SEEDS
            .iter()
            .map(|&seed| (loss_sweep(&[0.25], reps, seed), config(rate, seed)))
            .collect();
        let started = Instant::now();
        let results = execute_parallel(jobs);
        let wall_ms = started.elapsed().as_millis() / SEEDS.len() as u128;

        for (&seed, result) in SEEDS.iter().zip(results) {
            let (outcome, _) = result?;
            let digest = outcome.digest();
            // The fault-free execution of the same seed is the reference.
            let (baseline, _) = {
                let mut m = excovery_core::ExperiMaster::new(
                    loss_sweep(&[0.25], reps, seed),
                    config(0.0, seed),
                )?;
                (m.execute()?, ())
            };
            let equal = digest == baseline.digest();
            println!(
                "{:<8} {:<8} {:>18x} {:>9} {:>9}  {}",
                rate,
                seed,
                digest,
                outcome.control_retries,
                wall_ms,
                if equal { "yes" } else { "NO — DRIFT" }
            );
            if !equal {
                return Err(format!(
                    "rate {rate}, seed {seed}: chaos changed the measured results"
                ));
            }
            if rate > 0.0 && outcome.control_retries == 0 {
                return Err(format!(
                    "rate {rate}, seed {seed}: chaos schedule was never exercised"
                ));
            }
        }
    }
    println!("\nall chaotic executions reproduced their fault-free digests");
    Ok(())
}
