//! **CS-2** — responsiveness vs generated background load: the experiment
//! the paper's Figs. 4–10 describe, with the Fig. 5 factors (node pairs ×
//! data rate) driving the Fig. 7 traffic generator.
//!
//! Expected: R at short deadlines degrades as pairs × rate grows; the
//! mean t_R rises with load (queueing + loss-induced retries).

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_analysis::runs::RunView;
use excovery_analysis::stats::Summary;
use excovery_bench::harness::{
    curve_header, curve_row, execute_on, first_t_rs_s, reps_from_env, DEADLINES_S,
};
use excovery_core::scenarios::load_sweep;
use excovery_desc::PlatformSpec;
use excovery_netsim::topology::Topology;
use std::collections::BTreeMap;

fn main() -> Result<(), String> {
    let reps = reps_from_env();
    println!("CS-2: responsiveness vs background load ({reps} replications/treatment)");
    println!("factors as in Fig. 5: pairs ∈ {{5, 20}}, rate ∈ {{10, 50, 100}} … plus a 2000 kbit/s stress level\n");
    let mut desc = load_sweep(&[5, 20], &[10, 100, 2000], reps, 20262);
    // A 6-node chain (A and B at the ends) makes the shared medium scarce,
    // as on a sparse section of the DES mesh.
    desc.platform = PlatformSpec::new()
        .with_actor_node("t9-157", "10.0.0.157", "A")
        .with_actor_node("t9-105", "10.0.0.105", "B")
        .with_env_node("t9-001", "10.0.0.1")
        .with_env_node("t9-002", "10.0.0.2")
        .with_env_node("t9-003", "10.0.0.3")
        .with_env_node("t9-004", "10.0.0.4");
    let (outcome, by_run) = execute_on(desc, Topology::chain(6))?;

    let mut grouped: BTreeMap<String, Vec<_>> = BTreeMap::new();
    for run in &outcome.runs {
        let eps = RunView::load(&outcome.database, run.run_id)
            .map_err(|e| e.to_string())?
            .episodes();
        let key: String = by_run[&run.run_id]
            .split('|')
            .filter(|kv| kv.starts_with("fact_bw=") || kv.starts_with("fact_pairs="))
            .collect::<Vec<_>>()
            .join("|");
        grouped.entry(key).or_default().extend(eps);
    }
    println!("{}", curve_header());
    for (label, eps) in &grouped {
        let curve = responsiveness_curve(eps, 1, &DEADLINES_S);
        println!("{}", curve_row(label, &curve));
    }
    println!("\nmean t_R per treatment (successful discoveries):");
    for (label, eps) in &grouped {
        let t_rs = first_t_rs_s(eps);
        match Summary::compute(&t_rs) {
            Some(s) => println!(
                "  {label:<28} n={:<4} mean={:.4}s median={:.4}s p95={:.4}s",
                s.n, s.mean, s.median, s.p95
            ),
            None => println!("  {label:<28} no successful discovery"),
        }
    }
    Ok(())
}
