//! **CS-3** — responsiveness vs hop distance (the shape of Dittrich,
//! Lichtblau, Rezende, Malek, "Modeling responsiveness of decentralized
//! service discovery in wireless mesh networks", MMB&DFT 2014 — paper
//! ref. \[26\]).
//!
//! Expected: per-hop loss compounds, so R at short deadlines and the
//! median t_R degrade with the hop count between SU and SM.

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_analysis::stats::Summary;
use excovery_bench::harness::{
    curve_header, curve_row, episodes, execute_with, first_t_rs_s, reps_from_env, DEADLINES_S,
};
use excovery_core::scenarios::{chain_between_actors, hop_distance};
use excovery_core::EngineConfig;

fn main() -> Result<(), String> {
    let reps = reps_from_env();
    println!("CS-3: responsiveness vs hop distance ({reps} replications/hop count)");
    println!("lossy mesh links: 15% base loss per hop, as on weak DES links\n");
    println!("{}", curve_header());
    let mut medians = Vec::new();
    for hops in 1..=6 {
        let desc = hop_distance(reps, 20263 + hops as u64);
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = chain_between_actors(hops);
        // Weak links: per-hop loss compounds over the path.
        cfg.sim.link_model.base_loss = 0.15;
        let (outcome, _) = execute_with(desc, cfg)?;
        let eps = episodes(&outcome);
        let curve = responsiveness_curve(&eps, 1, &DEADLINES_S);
        println!("{}", curve_row(&format!("hops={hops}"), &curve));
        let t_rs = first_t_rs_s(&eps);
        medians.push((hops, Summary::compute(&t_rs).map(|s| s.median)));
    }
    println!("\nmedian t_R by hop count:");
    for (hops, median) in medians {
        match median {
            Some(m) => println!("  {hops} hops: {m:.4} s"),
            None => println!("  {hops} hops: no discovery"),
        }
    }
    Ok(())
}
