//! **CS-3** — responsiveness vs hop distance (the shape of Dittrich,
//! Lichtblau, Rezende, Malek, "Modeling responsiveness of decentralized
//! service discovery in wireless mesh networks", MMB&DFT 2014 — paper
//! ref. \[26\]).
//!
//! Expected: per-hop loss compounds, so R at short deadlines and the
//! median t_R degrade with the hop count between SU and SM.
//!
//! The six hop counts are independent experiments; the campaign executes
//! them in parallel and reports them in hop order.

use excovery_analysis::responsiveness::responsiveness_curve;
use excovery_analysis::stats::Summary;
use excovery_bench::harness::{
    curve_header, curve_row, episodes, first_t_rs_s, reps_from_env, Campaign, DEADLINES_S,
};
use excovery_core::scenarios::{chain_between_actors, hop_distance_shards};
use excovery_core::EngineConfig;

fn main() -> Result<(), String> {
    let reps = reps_from_env();
    println!("CS-3: responsiveness vs hop distance ({reps} replications/hop count)");
    println!("lossy mesh links: 15% base loss per hop, as on weak DES links\n");
    let shards = hop_distance_shards(1..=6, reps, 20263);
    let hops_order: Vec<usize> = shards.iter().map(|(h, _)| *h).collect();
    let jobs: Vec<_> = shards
        .into_iter()
        .map(|(hops, desc)| {
            let mut cfg = EngineConfig::grid_default();
            cfg.topology = chain_between_actors(hops);
            // Weak links: per-hop loss compounds over the path.
            cfg.sim.link_model.base_loss = 0.15;
            (desc, cfg)
        })
        .collect();
    let results = Campaign::from_env().run(jobs);

    println!("{}", curve_header());
    let mut medians = Vec::new();
    for (hops, result) in hops_order.into_iter().zip(results) {
        let (outcome, _) = result?;
        let eps = episodes(&outcome);
        let curve = responsiveness_curve(&eps, 1, &DEADLINES_S);
        println!("{}", curve_row(&format!("hops={hops}"), &curve));
        let t_rs = first_t_rs_s(&eps);
        medians.push((hops, Summary::compute(&t_rs).map(|s| s.median)));
    }
    println!("\nmedian t_R by hop count:");
    for (hops, median) in medians {
        match median {
            Some(m) => println!("  {hops} hops: {m:.4} s"),
            None => println!("  {hops} hops: no discovery"),
        }
    }
    Ok(())
}
