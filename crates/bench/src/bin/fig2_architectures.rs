//! Regenerates **Fig. 2**: the two-party and three-party discovery
//! architectures — as observed message flows of one discovery each, read
//! from the packet captures of executed experiments.

use excovery_bench::harness::execute_on;
use excovery_core::scenarios::multi_sm;
use excovery_netsim::topology::Topology;
use excovery_sd::SdMessage;
use excovery_store::records::PacketRow;

fn flow(architecture: &str, with_scm: bool) -> Result<(), String> {
    let desc = multi_sm(1, architecture, with_scm, 1, 5);
    let (outcome, _) = execute_on(desc, Topology::grid(2, 2))?;
    let packets = PacketRow::read_run(&outcome.database, 0).map_err(|e| e.to_string())?;
    println!("--- {architecture} ---");
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for p in &packets {
        // Only source-side captures: each transmission once.
        if p.node_id != p.src_node_id {
            continue;
        }
        let Some((_tag, payload)) = excovery_analysis::packetstats::split_tag(&p.data) else {
            continue;
        };
        let Some(msg) = SdMessage::decode(payload) else {
            continue;
        };
        let kind = match msg {
            SdMessage::Query { .. } => "multicast query (SU -> *)",
            SdMessage::Response { .. } => "response",
            SdMessage::Announce { .. } => "announcement (SM -> *)",
            SdMessage::ScmAdvert { .. } => "SCM advert (SCM -> *)",
            SdMessage::Register { .. } => "registration (SM -> SCM)",
            SdMessage::RegisterAck { .. } => "registration ack (SCM -> SM)",
            SdMessage::Deregister { .. } => "deregistration (SM -> SCM)",
            SdMessage::DirectedQuery { .. } => "directed query (SU -> SCM)",
        };
        *counts.entry(kind).or_default() += 1;
    }
    for (kind, n) in counts {
        println!("  {n:>3} × {kind}");
    }
    println!();
    Ok(())
}

fn main() -> Result<(), String> {
    println!("Fig. 2 — SD architectures as observed message flows\n");
    flow("two-party", false)?;
    flow("three-party", true)?;
    flow("hybrid", true)?;
    println!("two-party: SUs and SMs communicate directly (multicast);");
    println!("three-party: registrations and directed queries via the SCM.");
    Ok(())
}
