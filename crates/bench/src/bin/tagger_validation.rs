//! Validation of the packet-tagger measurement chain (paper §VI-A).
//!
//! Injects CBR background flows through the Fig. 7 traffic process with
//! known per-link loss configured in the platform, then reconstructs the
//! loss from tag gaps in the stored `Packets` table. Estimated ≈ configured
//! validates the tagging, capture, conditioning and storage pipeline end
//! to end.

use excovery_analysis::packetstats::best_stream_loss_per_source;
use excovery_core::scenarios::load_sweep;
use excovery_core::{EngineConfig, ExperiMaster};
use excovery_desc::process::{ProcessAction, ValueRef};
use excovery_netsim::topology::Topology;
use excovery_netsim::NodeId;
use excovery_store::{Predicate, SqlValue};

fn main() -> Result<(), String> {
    println!("packet-tagger validation: configured vs tag-gap-estimated loss\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "base_loss", "expected", "estimated", "sources"
    );
    for &loss in &[0.0f64, 0.1, 0.2, 0.3, 0.4] {
        let mut desc = load_sweep(&[2], &[200], 1, 4242);
        for env in &mut desc.env_processes {
            for action in &mut env.actions {
                if let ProcessAction::Invoke { name, params } = action {
                    if name == "env_traffic_start" {
                        params.push(("inject".to_string(), ValueRef::int(1)));
                        params.push(("packet_size".to_string(), ValueRef::int(400)));
                    }
                }
            }
        }
        // Probe the mid-chain link load while traffic is active, through
        // the plugin + ExtraRunMeasurements pipeline (§IV-B).
        for env in &mut desc.env_processes {
            let pos = env
                .actions
                .iter()
                .position(|a| a.name() == "env_traffic_start")
                .map(|i| i + 1)
                .unwrap_or(env.actions.len());
            env.actions
                .insert(pos, ProcessAction::invoke("probe_link_load"));
        }
        // Extend the run: hold the SU open for 30 s after discovery so the
        // CBR flows produce a long tag stream.
        let su = desc
            .node_processes
            .iter_mut()
            .find(|p| p.actor_id == "actor1")
            .unwrap();
        let done_pos = su
            .actions
            .iter()
            .position(|a| matches!(a, ProcessAction::EventFlag { .. }))
            .unwrap();
        su.actions.insert(
            done_pos,
            ProcessAction::WaitForTime {
                seconds: ValueRef::int(30),
            },
        );
        let mut cfg = EngineConfig::grid_default();
        cfg.topology = Topology::chain(6);
        cfg.sim.link_model.base_loss = loss;
        cfg.run_timeout = excovery_netsim::SimDuration::from_secs(90);
        let model_k = cfg.sim.link_model.load_loss_factor;
        let model_cap = cfg.sim.link_model.capacity_kbps;
        let mut master = ExperiMaster::new(desc, cfg)?;
        master.register_plugin(
            "probe_link_load",
            Box::new(|_params, ctx| {
                let load = ctx.sim.link_load(NodeId(2), NodeId(3));
                ctx.record_measurement("master", "load_2_3", load.to_string().into_bytes());
                Ok(())
            }),
        );
        let outcome = master.execute()?;
        // The true per-link loss combines the configured base loss with the
        // load-induced component of the link model (the CBR flows offer
        // real load): p = 1 - (1-p0) * exp(-k*u), with u probed mid-run by
        // the plugin above and stored in ExtraRunMeasurements.
        let probed_load: f64 = outcome
            .database
            .table("ExtraRunMeasurements")
            .map_err(|e| e.to_string())?
            .select(
                &Predicate::Eq("Name".into(), SqlValue::from("load_2_3")),
                None,
            )
            .map_err(|e| e.to_string())?
            .first()
            .and_then(|row| row[3].as_blob())
            .and_then(|b| std::str::from_utf8(b).ok())
            .and_then(|t| t.parse().ok())
            .unwrap_or(0.0);
        let expected = 1.0 - (1.0 - loss) * (-model_k * (probed_load / model_cap).min(0.95)).exp();
        let best = best_stream_loss_per_source(&outcome.database, outcome.runs[0].run_id, 50)
            .map_err(|e| e.to_string())?;
        // Mean of the per-source best estimates (one-hop observers).
        let estimated = if best.is_empty() {
            f64::NAN
        } else {
            best.values().sum::<f64>() / best.len() as f64
        };
        println!(
            "{loss:<14} {expected:>12.4} {estimated:>12.4} {:>10}",
            best.len()
        );
    }
    println!("\nthe estimate tracks the configured base loss one-for-one (constant slope);");
    println!("the remaining offset is path loss: tag gaps measure the whole source→observer");
    println!("path (>= 1 hop, under heterogeneous per-link load), not a single link.");
    Ok(())
}
