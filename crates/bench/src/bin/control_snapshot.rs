//! Bench smoke runner for the control plane: times one lifecycle
//! fan-out over a 1,000-NodeManager fleet on the thread-per-node path
//! versus the multiplexed reactor — flat and through sub-master relays —
//! and writes `BENCH_control.json`.
//!
//! Same contract as `bench_snapshot` and `query_snapshot`: wall times
//! come from plain `Instant` medians and vary by machine; the
//! *deterministic* fields (`nodes`, `relays`, `wire_ops`, `digest`,
//! `engine_digest`) are byte-stable across environments and are diffed
//! against the committed snapshot in CI. Three invariants are asserted
//! outright, so a regression fails the binary itself:
//!
//! 1. all three dispatch paths return bit-identical per-node results
//!    (one shared result digest),
//! 2. the reactor's per-phase dispatch latency is at least 5× better
//!    than the threaded path at 1,000 nodes,
//! 3. a full experiment produces digest-equal [`ExperimentOutcome`]s on
//!    the threaded, reactor and fan-out-tree dispatchers (the seed-1
//!    `grid_default` cell of the golden table, so drift is also caught
//!    against `golden_outcomes`).
//!
//! Usage: `control_snapshot [output-path]` (default `BENCH_control.json`).
//!
//! [`ExperimentOutcome`]: excovery_core::ExperimentOutcome

use excovery_core::{DispatcherKind, EngineConfig, ExperiMaster};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::ExperimentDescription;
use excovery_rpc::{
    relay_registry, Channel, NodeCall, NodeProxy, Reactor, ReactorEndpoint, RetryConfig,
    ServerRegistry, Value,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fleet size of the headline benchmark.
const NODES: usize = 1000;
/// Members per sub-master relay; 1000 / 32 gives 31 full relays plus one
/// ragged group of 8, so the tree path exercises both shapes.
const RELAY_WIDTH: usize = 32;

/// Fresh idempotency keys per fan-out: the registries' dedup caches must
/// never replay across iterations, or the bench would time cache hits.
static SEQ: AtomicU64 = AtomicU64::new(0);

fn key() -> String {
    format!("bench:0:{}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// One NodeManager stand-in per fleet member: a `run_init` handler that
/// reads its parameter and answers with a node-dependent value, so the
/// result digest proves every node executed and answered in order.
fn node_registry(index: usize) -> ServerRegistry {
    let mut reg = ServerRegistry::new();
    reg.register("run_init", move |params| {
        let run = match params.first() {
            Some(Value::Int(r)) => i64::from(*r),
            _ => 0,
        };
        Ok(Value::Int((run + index as i64) as i32))
    });
    reg
}

fn node_id(index: usize) -> String {
    format!("n{index:04}")
}

/// FNV-1a over the per-node answers in fleet order: one digest format
/// shared by all three dispatch paths, so bit-identity shows up as equal
/// `digest` fields in the snapshot.
fn values_digest(values: &[Value]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        let Value::Int(n) = v else {
            panic!("run_init answered a non-integer: {v:?}")
        };
        for byte in n.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The threaded dispatcher's shape: one scoped thread per node, each
/// pushing one idempotent frame through the full in-memory channel
/// (XML encode, dispatch, XML decode — the same cost the engine pays).
fn threaded_phase(proxies: &[NodeProxy]) -> u64 {
    let keys: Vec<String> = proxies.iter().map(|_| key()).collect();
    let values = std::thread::scope(|scope| {
        let handles: Vec<_> = proxies
            .iter()
            .zip(&keys)
            .map(|(proxy, key)| {
                scope.spawn(move || {
                    proxy
                        .call_idempotent("run_init", vec![Value::Int(0)], key)
                        .expect("threaded run_init failed")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatch thread panicked"))
            .collect::<Vec<_>>()
    });
    values_digest(&values)
}

/// One reactor sweep over the whole fleet: a single `dispatch` of 1,000
/// calls, multiplexed on this thread.
fn reactor_phase(reactor: &mut Reactor) -> u64 {
    let calls: Vec<NodeCall> = (0..NODES)
        .map(|i| NodeCall {
            node_id: node_id(i),
            method: "run_init".into(),
            params: vec![Value::Int(0)],
            idem_key: key(),
        })
        .collect();
    let values: Vec<Value> = reactor
        .dispatch(calls, &RetryConfig::none())
        .into_iter()
        .map(|o| o.result.expect("reactor run_init failed"))
        .collect();
    values_digest(&values)
}

fn flat_reactor() -> Reactor {
    let mut reactor = Reactor::new();
    for i in 0..NODES {
        let reg = Arc::new(Mutex::new(node_registry(i)));
        reactor.add_node(node_id(i), ReactorEndpoint::Memory(reg), None);
    }
    reactor
}

/// The fan-out tree: `RELAY_WIDTH`-member sub-master relays, so a phase
/// costs one batched frame per relay instead of one frame per node.
fn relay_reactor() -> (Reactor, usize) {
    let mut reactor = Reactor::new();
    let fleet: Vec<(String, Arc<Mutex<ServerRegistry>>)> = (0..NODES)
        .map(|i| (node_id(i), Arc::new(Mutex::new(node_registry(i)))))
        .collect();
    let mut relays = 0;
    for group in fleet.chunks(RELAY_WIDTH) {
        let relay = Arc::new(Mutex::new(relay_registry(group.to_vec())));
        let members = group.iter().map(|(id, _)| (id.clone(), None)).collect();
        reactor.add_relay(ReactorEndpoint::Memory(relay), members);
        relays += 1;
    }
    (reactor, relays)
}

/// The golden suite's trimmed two-party SD experiment, reused verbatim so
/// the engine-parity digest below is the pinned seed-1 `grid_default`
/// cell of the golden table.
fn golden_desc(seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(2);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn engine_digest(dispatcher: DispatcherKind, fanout: Option<usize>) -> u64 {
    let mut cfg = EngineConfig::grid_default();
    cfg.dispatcher = dispatcher;
    cfg.fanout_tree = fanout;
    let mut master = ExperiMaster::new(golden_desc(1), cfg).expect("engine config rejected");
    master.execute().expect("experiment failed").digest()
}

struct Sample {
    name: &'static str,
    ns_per_iter: u128,
    nodes: usize,
    wire_ops: usize,
    digest: u64,
}

fn measure(
    name: &'static str,
    iters: u32,
    nodes: usize,
    wire_ops: usize,
    mut run: impl FnMut() -> u64,
) -> Sample {
    let digest = run();
    let mut times: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    Sample {
        name,
        ns_per_iter: times[times.len() / 2],
        nodes,
        wire_ops,
        digest,
    }
}

fn render(samples: &[Sample], relays: usize, speedup: f64, engine: u64) -> String {
    // Hand-rolled JSON, like the other snapshot binaries: fixed
    // identifiers and numbers only, so no escaping and no serializer
    // dependency.
    let mut out = String::from("{\n  \"suite\": \"control\",\n");
    out.push_str(&format!(
        "  \"fleet\": {{\"nodes\": {NODES}, \"relays\": {relays}, \
         \"relay_width\": {RELAY_WIDTH}}},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_reactor_vs_threaded\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"engine\": {{\"preset\": \"grid_default\", \"seed\": 1, \
         \"engine_digest\": {engine}}},\n  \"benches\": [\n"
    ));
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"nodes\": {}, \
             \"wire_ops\": {}, \"digest\": {}}}{}\n",
            s.name,
            s.ns_per_iter,
            s.nodes,
            s.wire_ops,
            s.digest,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> Result<(), String> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_control.json".into());
    let iters: u32 = std::env::var("EXCOVERY_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let proxies: Vec<NodeProxy> = (0..NODES)
        .map(|i| NodeProxy::new(node_id(i), Channel::new(node_registry(i))))
        .collect();
    let mut flat = flat_reactor();
    let (mut tree, relays) = relay_reactor();

    let samples = [
        measure("threaded_phase_1000", iters, NODES, NODES, || {
            threaded_phase(&proxies)
        }),
        measure("reactor_phase_1000", iters, NODES, NODES, || {
            reactor_phase(&mut flat)
        }),
        measure("reactor_relay_phase_1000", iters, NODES, relays, || {
            reactor_phase(&mut tree)
        }),
    ];

    // Invariant 1: every dispatch path collected the same per-node
    // answers in the same fleet order.
    assert_eq!(
        samples[0].digest, samples[1].digest,
        "threaded and reactor fan-outs returned different results"
    );
    assert_eq!(
        samples[0].digest, samples[2].digest,
        "the relay tree returned different results"
    );

    // Invariant 2: the acceptance bar — multiplexing 1,000 lifecycle
    // calls on one thread beats 1,000 thread spawns plus per-node XML
    // round-trips by at least 5×.
    assert!(
        samples[1].ns_per_iter.saturating_mul(5) <= samples[0].ns_per_iter,
        "reactor dispatch is not ≥5× faster: threaded {} ns, reactor {} ns",
        samples[0].ns_per_iter,
        samples[1].ns_per_iter,
    );

    // Invariant 3: dispatcher choice is invisible to a real experiment.
    let threaded_engine = engine_digest(DispatcherKind::Threaded, None);
    let reactor_engine = engine_digest(DispatcherKind::Reactor, None);
    let tree_engine = engine_digest(DispatcherKind::Reactor, Some(2));
    assert_eq!(
        threaded_engine, reactor_engine,
        "reactor dispatcher changed the experiment outcome"
    );
    assert_eq!(
        threaded_engine, tree_engine,
        "fan-out tree changed the experiment outcome"
    );

    let speedup = samples[0].ns_per_iter as f64 / samples[1].ns_per_iter as f64;
    let json = render(&samples, relays, speedup, threaded_engine);
    print!("{json}");
    std::fs::write(&path, &json).map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}
