//! Regenerates the XML listings of **Figs. 4–10** from the typed model:
//! the informative parameters, the factor list, the process templates, the
//! traffic process, the platform specification and the SM/SU role
//! processes, exactly as the built-in paper description carries them.

use excovery_desc::xmlio::{
    action_element, experiment_element, factorlist_element, platform_element,
};
use excovery_desc::ExperimentDescription;
use excovery_xml::writer::{write_element_string, WriteOptions};

fn show(title: &str, xml: &str) {
    println!("===== {title} =====");
    println!("{xml}\n");
}

fn main() {
    let d = ExperimentDescription::paper_two_party_sd(1000);
    let opts = WriteOptions::default();

    // Fig. 4: nodes + informative parameters (subset of the full document).
    let full = experiment_element(&d);
    show(
        "Fig. 4 — abstract nodes",
        &write_element_string(full.find("nodes").unwrap(), &opts),
    );
    show(
        "Fig. 4 — informative parameters",
        &write_element_string(full.find("params").unwrap(), &opts),
    );
    // Fig. 5: factor list.
    show(
        "Fig. 5 — factor list",
        &write_element_string(&factorlist_element(&d.factors), &opts),
    );
    // Fig. 6/9: SM role process.
    show(
        "Fig. 9 — SM role process",
        &write_element_string(
            full.find("node_processes/actor[@id=actor0]").unwrap(),
            &opts,
        ),
    );
    // Fig. 10: SU role process.
    show(
        "Fig. 10 — SU role process",
        &write_element_string(
            full.find("node_processes/actor[@id=actor1]").unwrap(),
            &opts,
        ),
    );
    // Fig. 7: environment traffic process.
    show(
        "Fig. 7 — environment traffic process",
        &write_element_string(full.find("env_process").unwrap(), &opts),
    );
    // Fig. 8: platform specification.
    show(
        "Fig. 8 — platform",
        &write_element_string(&platform_element(&d.platform), &opts),
    );
    // Bonus: a single action element, as embedded in the listings.
    let wait = &d.node_processes[1].actions[5];
    show(
        "Fig. 10 — wait_for_event detail",
        &write_element_string(&action_element(wait), &opts),
    );
}
