//! Regenerates **Fig. 5**: the factor list and the treatment plan ExCovery
//! expands from it (6 treatments × 1000 replications, OFAT order).

use excovery_desc::plan::{Design, PlanOptions, TreatmentPlan};
use excovery_desc::FactorList;

fn main() {
    let factors = FactorList::paper_fig5();
    println!("factor list of Fig. 5:");
    for f in &factors.factors {
        println!(
            "  {:<12} usage={:<10} type={:<16} levels={}",
            f.id,
            f.usage.as_str(),
            f.level_type,
            f.levels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "  replication: {} per treatment\n",
        factors.replication.count
    );

    let plan = TreatmentPlan::generate(
        &factors,
        &PlanOptions {
            design: Design::Ofat,
            seed: 0,
        },
    );
    println!(
        "expanded plan: {} runs, {} distinct treatments (OFAT: first factor varies least)",
        plan.len(),
        plan.distinct_treatments().len()
    );
    println!("\nfirst runs of each treatment block:");
    let mut last_key = String::new();
    for run in &plan.runs {
        let key = run.treatment.key();
        if key != last_key {
            println!("  run {:>5}: {}", run.run_id, key);
            last_key = key;
        }
    }
    println!("\nrandomized variant (seed 1) first 6 run treatments:");
    let crd = TreatmentPlan::generate(
        &factors,
        &PlanOptions {
            design: Design::CompletelyRandomized,
            seed: 1,
        },
    );
    for run in crd.runs.iter().take(6) {
        println!(
            "  run {:>5}: replicate {:>4} of {}",
            run.run_id,
            run.replicate,
            run.treatment.key()
        );
    }
}
