//! Property tests for the simulator substrate: determinism over random
//! workloads, topology invariants, tagger stream reconstruction, and the
//! event queue's ordering contract against a `BTreeMap` model.

use excovery_netsim::event::EventQueue;
use excovery_netsim::sim::{SimStats, Simulator, SimulatorConfig};
use excovery_netsim::tagger::{analyze_stream, Tagger};
use excovery_netsim::time::SimTime;
use excovery_netsim::topology::Topology;
use excovery_netsim::{Destination, NodeId, Payload};
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Reference model: a `BTreeMap` keyed `(time, key)` pops in exactly the
/// order the queue promises (same checker as the in-crate LCG test).
fn check_queue_against_model(pairs: &[(u64, u64)], pop_every: usize) {
    let mut q = EventQueue::new();
    let mut model: BTreeMap<(SimTime, u64), usize> = BTreeMap::new();
    for (i, &(t, k)) in pairs.iter().enumerate() {
        let due = SimTime::from_nanos(t);
        q.schedule_with_key(due, k, i);
        model.insert((due, k), i);
        if pop_every > 0 && i % pop_every == 0 {
            if let Some((due, payload)) = q.pop() {
                let (&mk, &mv) = model.iter().next().expect("model empty but queue popped");
                model.remove(&mk);
                assert_eq!((due, payload), (mk.0, mv));
            }
        }
    }
    while let Some((due, payload)) = q.pop() {
        let (&mk, &mv) = model.iter().next().expect("model empty but queue popped");
        model.remove(&mk);
        assert_eq!((due, payload), (mk.0, mv));
    }
    assert!(model.is_empty(), "queue drained before the model");
}

fn run_workload(seed: u64, sends: &[(u16, u8)], nodes: u16) -> (SimStats, Vec<(u64, String)>) {
    let topo = Topology::grid(nodes as usize, 2);
    let n = topo.len() as u16;
    let mut sim = Simulator::new(topo, SimulatorConfig::default().with_seed(seed));
    for (i, &(src, kind)) in sends.iter().enumerate() {
        let src = NodeId(src % n);
        let dst = match kind % 3 {
            0 => Destination::Multicast,
            1 => Destination::Broadcast,
            _ => Destination::Unicast(NodeId((src.0 + 1) % n)),
        };
        sim.send_from(src, 9, dst, Payload::from(format!("m{i}").as_str()));
    }
    sim.run_until_idle(1_000_000);
    let caps: Vec<(u64, String)> = (0..n)
        .flat_map(|node| {
            sim.captures(NodeId(node))
                .iter()
                .map(|c| (c.local_time.as_nanos(), format!("{:?}@{node}", c.kind)))
                .collect::<Vec<_>>()
        })
        .collect();
    (sim.stats(), caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The event queue's pop order equals the `BTreeMap` model for random
    /// `(time, key)` workloads with heavy time collisions.
    #[test]
    fn push_pop_order_equals_btreemap_model(
        times in prop::collection::vec(0u64..32, 1..256),
        pop_every in 0usize..5,
    ) {
        // Unique keys derived from the index keep the order total.
        let pairs: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        check_queue_against_model(&pairs, pop_every);
    }

    /// Identical seeds and workloads produce bit-identical stats and
    /// capture streams; this is the platform property ExCovery's
    /// repeatability rests on.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        sends in prop::collection::vec((any::<u16>(), any::<u8>()), 1..30),
        nodes in 2u16..5,
    ) {
        let a = run_workload(seed, &sends, nodes);
        let b = run_workload(seed, &sends, nodes);
        prop_assert_eq!(a, b);
    }

    /// Conservation: every transmission is eventually delivered, dropped
    /// by loss/filters, suppressed as duplicate, or unroutable — the queue
    /// always drains.
    #[test]
    fn queue_always_drains(
        seed in any::<u64>(),
        sends in prop::collection::vec((any::<u16>(), any::<u8>()), 1..30),
    ) {
        let topo = Topology::grid(3, 3);
        let mut sim = Simulator::new(topo, SimulatorConfig::default().with_seed(seed));
        for &(src, kind) in &sends {
            let src = NodeId(src % 9);
            let dst = if kind % 2 == 0 {
                Destination::Multicast
            } else {
                Destination::Unicast(NodeId((src.0 + 3) % 9))
            };
            sim.send_from(src, 9, dst, Payload::from("x"));
        }
        sim.run_until_idle(2_000_000);
        prop_assert_eq!(sim.pending_events(), 0, "event queue must drain");
        prop_assert_eq!(sim.stats().sent as usize, sends.len());
    }

    /// Random geometric topologies are symmetric and hop counts obey the
    /// triangle inequality.
    #[test]
    fn topology_metric_properties(seed in any::<u64>(), n in 3usize..12) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Topology::random_geometric(n, 3.0, 1.2, &mut rng);
        for a in t.nodes() {
            for b in t.nodes() {
                prop_assert_eq!(t.hop_count(a, b), t.hop_count(b, a));
                if a == b {
                    prop_assert_eq!(t.hop_count(a, b), Some(0));
                }
            }
        }
        // Triangle inequality where all three legs exist.
        for a in t.nodes() {
            for b in t.nodes() {
                for c in t.nodes() {
                    if let (Some(ab), Some(bc), Some(ac)) =
                        (t.hop_count(a, b), t.hop_count(b, c), t.hop_count(a, c))
                    {
                        prop_assert!(ac <= ab + bc, "{a}->{c} vs {a}->{b}->{c}");
                    }
                }
            }
        }
    }

    /// Tagger analysis reconstructs exactly the induced losses for any
    /// subset of a tag stream delivered in order.
    #[test]
    fn tagger_reconstructs_losses(
        start in any::<u16>(),
        total in 1usize..300,
        keep_mask in prop::collection::vec(any::<bool>(), 300),
    ) {
        let mut tagger = Tagger::starting_at(start);
        let all: Vec<u16> = (0..total).map(|_| tagger.stamp()).collect();
        let kept: Vec<u16> = all
            .iter()
            .zip(&keep_mask)
            .filter(|(_, &k)| k)
            .map(|(t, _)| *t)
            .collect();
        if kept.is_empty() {
            return Ok(());
        }
        let stats = analyze_stream(kept.iter().copied());
        prop_assert_eq!(stats.received as usize, kept.len());
        prop_assert_eq!(stats.duplicates, 0);
        prop_assert_eq!(stats.reordered, 0);
        // Losses counted = drops strictly between first and last kept tag.
        let first_idx = all.iter().position(|t| *t == kept[0]).unwrap();
        let last_idx = all.iter().position(|t| *t == *kept.last().unwrap()).unwrap();
        let expected_lost = (last_idx - first_idx + 1) - kept.len();
        prop_assert_eq!(stats.lost as usize, expected_lost);
    }
}
