//! Serial vs parallel campaign determinism.
//!
//! The parallel campaign runner must be an execution-order optimization
//! only: fanning replications across worker threads may never change a
//! single measured bit. These tests run a non-trivial workload — unicast
//! ping-pong, multicast beacons, timers and agent RNG draws over a lossy
//! grid — and compare full fingerprints (stats, per-node capture
//! sequences, protocol-event order) between serial and parallel
//! execution across several master seeds and worker counts.

use excovery_netsim::sim::{ProtocolEvent, SimStats, Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{
    run_replications, run_replications_serial, Agent, AgentCtx, CampaignConfig, Destination,
    EventParams, NodeId, Packet, Port, SimDuration,
};
use rand::Rng;
use std::hash::{DefaultHasher, Hash, Hasher};

const PORT: Port = 7;

/// Ping-pong agent exercising every nondeterminism-prone code path:
/// unicast routing, flooding, timers, and the per-agent RNG stream.
struct PingPong {
    peer: NodeId,
    remaining: u32,
}

impl Agent for PingPong {
    fn on_start(&mut self, ctx: &mut AgentCtx) {
        ctx.emit("pp_start", [("peer", self.peer.0.to_string())]);
        ctx.send(Destination::Unicast(self.peer), PORT, "ping");
        ctx.set_timer(SimDuration::from_millis(40), 1);
    }

    fn on_packet(&mut self, ctx: &mut AgentCtx, pkt: &Packet) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let jitter: u64 = ctx.rng().gen_range(0..1_000);
        ctx.emit(
            "pp_reply",
            [
                ("from", pkt.src.0.to_string()),
                ("jitter", jitter.to_string()),
            ],
        );
        ctx.send(Destination::Unicast(pkt.src), PORT, "pong");
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx, _token: u64) {
        ctx.emit("pp_beacon", EventParams::new());
        ctx.send(Destination::Multicast, PORT, "beacon");
        if self.remaining > 0 {
            ctx.set_timer(SimDuration::from_millis(40), 1);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One replication: a 3×3 lossy grid with ping-pong agents in opposite
/// corners. Returns the stats plus one hash covering every capture record
/// and every protocol event in emission order.
fn run_replication(seed: u64) -> (SimStats, u64, usize, usize) {
    let topo = Topology::grid(3, 3);
    let mut cfg = SimulatorConfig::default().with_seed(seed);
    cfg.link_model.base_loss = 0.10;
    let mut sim = Simulator::new(topo, cfg);
    sim.install_agent(
        NodeId(0),
        PORT,
        Box::new(PingPong {
            peer: NodeId(8),
            remaining: 12,
        }),
    );
    sim.install_agent(
        NodeId(8),
        PORT,
        Box::new(PingPong {
            peer: NodeId(0),
            remaining: 12,
        }),
    );
    sim.run_until_idle(200_000);

    let mut h = DefaultHasher::new();
    let mut n_caps = 0;
    for node in 0..sim.node_count() {
        for c in sim.captures(NodeId(node as u16)) {
            c.node.0.hash(&mut h);
            c.local_time.as_nanos().hash(&mut h);
            c.packet_id.0.hash(&mut h);
            c.tag.hash(&mut h);
            c.src.0.hash(&mut h);
            format!("{:?}", c.dst).hash(&mut h);
            c.port.hash(&mut h);
            c.payload.as_bytes().hash(&mut h);
            format!("{:?}", c.kind).hash(&mut h);
            n_caps += 1;
        }
    }
    let events: Vec<ProtocolEvent> = sim.drain_protocol_events();
    for e in &events {
        e.node.0.hash(&mut h);
        e.local_time.as_nanos().hash(&mut h);
        e.name.as_str().hash(&mut h);
        for (k, v) in e.params.iter() {
            k.as_str().hash(&mut h);
            v.as_str().hash(&mut h);
        }
    }
    (sim.stats(), h.finish(), n_caps, events.len())
}

#[test]
fn parallel_campaign_is_bit_identical_to_serial() {
    for master_seed in [11, 4242, 990_001] {
        let cfg = CampaignConfig::builder()
            .master_seed(master_seed)
            .replications(6)
            .build();
        let serial = run_replications_serial(&cfg, |_rep, seed| run_replication(seed));
        for workers in [2, 4] {
            let par = run_replications(&cfg.with_workers(workers), |_rep, seed| {
                run_replication(seed)
            });
            assert_eq!(
                serial, par,
                "parallel campaign (seed {master_seed}, {workers} workers) \
                 diverged from serial execution"
            );
        }
    }
}

#[test]
fn workload_is_nontrivial_and_seeds_differ() {
    let cfg = CampaignConfig::builder()
        .master_seed(7)
        .replications(4)
        .build();
    let results = run_replications_serial(&cfg, |_rep, seed| run_replication(seed));
    for (stats, _, n_caps, n_events) in &results {
        assert!(
            stats.sent > 0 && stats.delivered > 0,
            "workload idle: {stats:?}"
        );
        assert!(*n_caps > 0, "no captures recorded");
        assert!(*n_events > 0, "no protocol events emitted");
    }
    // Distinct per-replication seeds must produce distinct measurements;
    // a collision here would mean the campaign reuses RNG streams.
    let hashes: std::collections::HashSet<u64> = results.iter().map(|r| r.1).collect();
    assert_eq!(
        hashes.len(),
        results.len(),
        "replication fingerprints collided"
    );
}

#[test]
fn same_master_seed_reproduces_across_campaigns() {
    let cfg = CampaignConfig::builder()
        .master_seed(31_337)
        .replications(3)
        .build();
    let a = run_replications(&cfg, |_rep, seed| run_replication(seed));
    let b = run_replications(&cfg, |_rep, seed| run_replication(seed));
    assert_eq!(a, b);
}
