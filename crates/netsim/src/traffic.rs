//! Background traffic generation — the paper's *traffic generator*
//! environment manipulation (§IV-D2, Figs. 5 and 7).
//!
//! "Creates network load between a given number of node pairs. Each pair
//! bidirectionally communicates at a given data rate. Pairs can be randomly
//! chosen from the acting nodes, non-acting nodes or all nodes. They vary
//! from run to run as determined by a switch amount parameter."
//!
//! The generator applies offered load onto every link along each pair's
//! shortest path; the [`crate::link::LinkModel`] turns that load into
//! increased loss probability and queueing delay for the experiment
//! traffic — the observable effect a real CBR flow has on a shared wireless
//! medium. Pair selection and per-run switching are fully seeded
//! (`random_switch_seed`, `random_seed` in the description, Fig. 7).

use crate::rng::derive_rng_indexed;
use crate::sim::{NodeId, Simulator};
use rand::seq::SliceRandom;
use rand::Rng;

/// From which population the traffic pairs are drawn (Fig. 7 `choice`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairChoice {
    /// All nodes of the platform (`choice = 0` in the paper's listing).
    AllNodes,
    /// Only nodes acting in the experiment process.
    ActingNodes,
    /// Only environment (non-acting) nodes.
    NonActingNodes,
}

/// Configuration of a traffic generation phase.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Number of node pairs exchanging data.
    pub pairs: usize,
    /// Data rate per pair, kilobits per second, each direction.
    pub rate_kbps: f64,
    /// Population pairs are drawn from.
    pub choice: PairChoice,
    /// How many pairs are re-drawn on each run switch.
    pub switch_amount: usize,
    /// Seed for the initial pair selection (`random_seed`).
    pub seed: u64,
    /// Seed stream for per-run switching (`random_switch_seed`).
    pub switch_seed: u64,
}

impl TrafficSpec {
    /// Spec drawing `pairs` pairs from all nodes at `rate_kbps`, switching
    /// one pair per run — the configuration of the paper's Fig. 7.
    pub fn paper_default(pairs: usize, rate_kbps: f64, seed: u64) -> Self {
        Self {
            pairs,
            rate_kbps,
            choice: PairChoice::AllNodes,
            switch_amount: 1,
            seed,
            switch_seed: seed,
        }
    }
}

/// An active traffic generator bound to a simulator.
#[derive(Debug)]
pub struct TrafficGenerator {
    spec: TrafficSpec,
    acting: Vec<NodeId>,
    pairs: Vec<(NodeId, NodeId)>,
    applied: Vec<(NodeId, NodeId, f64)>,
    active: bool,
}

impl TrafficGenerator {
    /// Creates a generator; `acting` lists the experiment's actor nodes
    /// (used by [`PairChoice::ActingNodes`]/[`PairChoice::NonActingNodes`]).
    /// The initial pair set is drawn immediately from `spec.seed`.
    pub fn new(spec: TrafficSpec, sim: &Simulator, acting: Vec<NodeId>) -> Self {
        let mut gen = Self {
            spec,
            acting,
            pairs: Vec::new(),
            applied: Vec::new(),
            active: false,
        };
        let mut rng = derive_rng_indexed(gen.spec.seed, "traffic_pairs", 0);
        gen.pairs = gen.draw_pairs(sim, gen.spec.pairs, &mut rng);
        gen
    }

    /// The candidate population for the configured choice.
    fn candidates(&self, sim: &Simulator) -> Vec<NodeId> {
        match self.spec.choice {
            PairChoice::AllNodes => sim.topology().nodes().collect(),
            PairChoice::ActingNodes => self.acting.clone(),
            PairChoice::NonActingNodes => sim
                .topology()
                .nodes()
                .filter(|n| !self.acting.contains(n))
                .collect(),
        }
    }

    fn draw_pairs(
        &self,
        sim: &Simulator,
        count: usize,
        rng: &mut impl Rng,
    ) -> Vec<(NodeId, NodeId)> {
        let cand = self.candidates(sim);
        let mut pairs = Vec::with_capacity(count);
        if cand.len() < 2 {
            return pairs;
        }
        for _ in 0..count {
            // Draw two distinct endpoints; duplicates across pairs are
            // allowed (several flows may share endpoints, as in iperf runs).
            let picks: Vec<NodeId> = cand.choose_multiple(rng, 2).copied().collect();
            pairs.push((picks[0], picks[1]));
        }
        pairs
    }

    /// Current pair set.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// True while load is applied.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Applies the load of all pairs onto the simulator's links
    /// (`env_traffic_start`).
    pub fn start(&mut self, sim: &mut Simulator) {
        if self.active {
            return;
        }
        // Bidirectional CBR on an undirected link model: 2× rate offered.
        let per_link = 2.0 * self.spec.rate_kbps;
        for &(a, b) in &self.pairs {
            // Cached route from the routing table — identical to a fresh
            // BFS, without the per-start path computation.
            let Some(path) = sim.routing().path(a, b).cloned() else {
                continue;
            };
            for w in path.windows(2) {
                sim.add_link_load(w[0], w[1], per_link);
                self.applied.push((w[0], w[1], per_link));
            }
        }
        self.active = true;
    }

    /// Removes all applied load (`env_traffic_stop`).
    pub fn stop(&mut self, sim: &mut Simulator) {
        for (a, b, kbps) in self.applied.drain(..) {
            sim.remove_link_load(a, b, kbps);
        }
        self.active = false;
    }

    /// Re-draws `switch_amount` pairs for run number `run_idx`
    /// (deterministic in `switch_seed` and `run_idx`). Must be called while
    /// stopped; typically between `run_exit` and the next `run_init`.
    pub fn switch_pairs(&mut self, sim: &Simulator, run_idx: u64) {
        assert!(!self.active, "switch_pairs while traffic is active");
        let n = self.spec.switch_amount.min(self.pairs.len());
        if n == 0 {
            return;
        }
        let mut rng = derive_rng_indexed(self.spec.switch_seed, "traffic_switch", run_idx);
        // Choose which pair slots to replace, then redraw them.
        let mut slots: Vec<usize> = (0..self.pairs.len()).collect();
        slots.shuffle(&mut rng);
        let fresh = self.draw_pairs(sim, n, &mut rng);
        for (slot, pair) in slots.into_iter().take(n).zip(fresh) {
            self.pairs[slot] = pair;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimulatorConfig;
    use crate::topology::Topology;

    fn sim() -> Simulator {
        Simulator::new(Topology::grid(4, 4), SimulatorConfig::perfect_clocks(5))
    }

    fn spec(pairs: usize) -> TrafficSpec {
        TrafficSpec::paper_default(pairs, 100.0, 99)
    }

    #[test]
    fn start_applies_load_and_stop_removes_it() {
        let mut s = sim();
        let mut g = TrafficGenerator::new(spec(5), &s, vec![]);
        assert_eq!(g.pairs().len(), 5);
        g.start(&mut s);
        assert!(g.is_active());
        let total: f64 = {
            // Sum over all edges.
            s.topology()
                .edges()
                .iter()
                .map(|&(a, b)| s.link_load(a, b))
                .sum()
        };
        assert!(total > 0.0, "load applied");
        g.stop(&mut s);
        let total_after: f64 = s
            .topology()
            .edges()
            .iter()
            .map(|&(a, b)| s.link_load(a, b))
            .sum();
        assert_eq!(total_after, 0.0);
    }

    #[test]
    fn start_is_idempotent() {
        let mut s = sim();
        let mut g = TrafficGenerator::new(spec(2), &s, vec![]);
        g.start(&mut s);
        let t1: f64 = s
            .topology()
            .edges()
            .iter()
            .map(|&(a, b)| s.link_load(a, b))
            .sum();
        g.start(&mut s);
        let t2: f64 = s
            .topology()
            .edges()
            .iter()
            .map(|&(a, b)| s.link_load(a, b))
            .sum();
        assert_eq!(t1, t2);
    }

    #[test]
    fn pair_selection_is_seeded() {
        let s = sim();
        let g1 = TrafficGenerator::new(spec(4), &s, vec![]);
        let g2 = TrafficGenerator::new(spec(4), &s, vec![]);
        assert_eq!(g1.pairs(), g2.pairs());
        let other = TrafficGenerator::new(
            TrafficSpec {
                seed: 100,
                ..spec(4)
            },
            &s,
            vec![],
        );
        assert_ne!(g1.pairs(), other.pairs());
    }

    #[test]
    fn pairs_have_distinct_endpoints() {
        let s = sim();
        let g = TrafficGenerator::new(spec(50), &s, vec![]);
        for (a, b) in g.pairs() {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn switch_replaces_exactly_switch_amount() {
        let s = sim();
        let mut g = TrafficGenerator::new(spec(5), &s, vec![]);
        let before = g.pairs().to_vec();
        g.switch_pairs(&s, 1);
        let after = g.pairs().to_vec();
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        // switch_amount = 1; the redraw could coincide with the old pair,
        // so at most 1 changes.
        assert!(changed <= 1, "{changed} pairs changed");
        // Deterministic per run index:
        let mut g2 = TrafficGenerator::new(spec(5), &s, vec![]);
        g2.switch_pairs(&s, 1);
        assert_eq!(g.pairs(), g2.pairs());
    }

    #[test]
    fn identical_replication_uses_same_switch_sequence() {
        // The paper's Fig. 7 comment: binding the switch seed to the
        // replication factor "causes identical randomization in
        // replications" — same run index ⇒ same pair set.
        let s = sim();
        let mut g1 = TrafficGenerator::new(spec(3), &s, vec![]);
        let mut g2 = TrafficGenerator::new(spec(3), &s, vec![]);
        for run in 0..10 {
            g1.switch_pairs(&s, run);
            g2.switch_pairs(&s, run);
            assert_eq!(g1.pairs(), g2.pairs(), "run {run}");
        }
    }

    #[test]
    fn acting_choice_restricts_population() {
        let s = sim();
        let acting = vec![NodeId(0), NodeId(1), NodeId(2)];
        let g = TrafficGenerator::new(
            TrafficSpec {
                choice: PairChoice::ActingNodes,
                ..spec(10)
            },
            &s,
            acting.clone(),
        );
        for (a, b) in g.pairs() {
            assert!(acting.contains(a) && acting.contains(b));
        }
        let g2 = TrafficGenerator::new(
            TrafficSpec {
                choice: PairChoice::NonActingNodes,
                ..spec(10)
            },
            &s,
            acting.clone(),
        );
        for (a, b) in g2.pairs() {
            assert!(!acting.contains(a) && !acting.contains(b));
        }
    }

    #[test]
    fn too_small_population_yields_no_pairs() {
        let s = sim();
        let g = TrafficGenerator::new(
            TrafficSpec {
                choice: PairChoice::ActingNodes,
                ..spec(3)
            },
            &s,
            vec![NodeId(0)],
        );
        assert!(g.pairs().is_empty());
    }

    #[test]
    #[should_panic(expected = "switch_pairs while traffic is active")]
    fn switching_while_active_panics() {
        let mut s = sim();
        let mut g = TrafficGenerator::new(spec(2), &s, vec![]);
        g.start(&mut s);
        g.switch_pairs(&s, 0);
    }
}
