//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The standard library's default hasher is SipHash with a per-process
//! random key — robust against adversarial keys, but measurably slow on
//! the packet hot path (one hash per link crossing for load lookup, per
//! flood duplicate check, per agent dispatch) and randomly seeded, so map
//! iteration order varies between processes. Simulator keys are small
//! trusted integers (node ids, ports, packet ids), so we use a
//! multiply-rotate hash instead: a few cycles per key, and fully
//! deterministic, which keeps any future map iteration reproducible — the
//! platform property ExCovery requires (§IV-C1).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// Multiply-rotate hasher (the FxHash construction) over 64-bit words.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

/// Odd multiplier close to 2^64 / φ, spreading entropy across all bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(v: impl std::hash::Hash) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of((7u64, 3u16)), hash_of((7u64, 3u16)));
    }

    #[test]
    fn spreads_small_keys() {
        // Ports and node ids are tiny sequential integers; the hash must
        // not collide them onto the same buckets wholesale.
        let hashes: HashSet<u64> = (0u16..1000).map(hash_of).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        assert_eq!(hash_of("hello world"), hash_of("hello world"));
        assert_ne!(hash_of("hello world"), hash_of("hello worlc"));
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FastHashMap<(u64, u16), u32> = FastHashMap::default();
        for i in 0..100u64 {
            m.insert((i, i as u16), i as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42, 42)), Some(&42));
        let mut s: FastHashSet<u64> = FastHashSet::default();
        assert!(s.insert(1));
        assert!(!s.insert(1));
    }
}
