//! Constant-bit-rate (CBR) traffic agents.
//!
//! The load-based [`crate::traffic::TrafficGenerator`] models the *effect*
//! of background flows on the channel; this module additionally puts real
//! packets on the simulated medium, as the prototype's traffic generator
//! does between its node pairs (§IV-D2). Because every transmission is
//! stamped by the sending node's 16-bit tagger, the resulting captures let
//! the analysis reconstruct per-path loss from tag gaps — the purpose of
//! the packet tagger (§VI-A).

use crate::packet::{Destination, Payload, Port};
use crate::sim::{Agent, AgentCtx, NodeId, Simulator};
use crate::time::SimDuration;

/// Well-known base port of CBR flows (one port per flow).
pub const CBR_BASE_PORT: Port = 40_000;

/// A unidirectional CBR sender: `size_bytes` to `peer` every `interval`.
pub struct CbrSender {
    peer: NodeId,
    port: Port,
    interval: SimDuration,
    payload: Vec<u8>,
    seq: u32,
    running: bool,
}

const TIMER_TICK: u64 = 1;

impl CbrSender {
    /// Creates a sender for one flow.
    pub fn new(peer: NodeId, port: Port, rate_kbps: f64, size_bytes: usize) -> Self {
        let bits_per_packet = (size_bytes.max(1) * 8) as f64;
        let packets_per_sec = (rate_kbps * 1_000.0 / bits_per_packet).max(0.1);
        Self {
            peer,
            port,
            interval: SimDuration::from_secs_f64(1.0 / packets_per_sec),
            payload: vec![0xCB; size_bytes.max(1)],
            seq: 0,
            running: true,
        }
    }

    fn send_one(&mut self, ctx: &mut AgentCtx) {
        // A sequence number in the payload keeps packets distinct so
        // payload-matching analyses can pair send/receive observations.
        let mut data = self.payload.clone();
        let seq = self.seq.to_be_bytes();
        let n = 4.min(data.len());
        data[..n].copy_from_slice(&seq[..n]);
        self.seq = self.seq.wrapping_add(1);
        ctx.send(
            Destination::Unicast(self.peer),
            self.port,
            Payload::new(data),
        );
        ctx.set_timer(self.interval, TIMER_TICK);
    }
}

impl Agent for CbrSender {
    fn on_start(&mut self, ctx: &mut AgentCtx) {
        self.send_one(ctx);
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx, token: u64) {
        if token == TIMER_TICK && self.running {
            self.send_one(ctx);
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A sink agent that accepts CBR packets (so deliveries count and the
/// receiving node records `Received` captures rather than `Forwarded`).
pub struct CbrSink;

impl Agent for CbrSink {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Installs bidirectional CBR flows for the given pairs. Flow `i` uses
/// ports `CBR_BASE_PORT + 2i` (a→b) and `CBR_BASE_PORT + 2i + 1` (b→a).
/// Returns the ports used (for later removal).
pub fn install_cbr_flows(
    sim: &mut Simulator,
    pairs: &[(NodeId, NodeId)],
    rate_kbps: f64,
    size_bytes: usize,
) -> Vec<(NodeId, Port)> {
    let mut installed = Vec::new();
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let port_ab = CBR_BASE_PORT + (2 * i) as u16;
        let port_ba = port_ab + 1;
        sim.install_agent(b, port_ab, Box::new(CbrSink));
        sim.install_agent(a, port_ba, Box::new(CbrSink));
        sim.install_agent(
            a,
            port_ab,
            Box::new(CbrSender::new(b, port_ab, rate_kbps, size_bytes)),
        );
        sim.install_agent(
            b,
            port_ba,
            Box::new(CbrSender::new(a, port_ba, rate_kbps, size_bytes)),
        );
        installed.extend([(a, port_ab), (b, port_ab), (a, port_ba), (b, port_ba)]);
    }
    installed
}

/// Removes previously installed CBR agents (pending sends drain naturally).
pub fn remove_cbr_flows(sim: &mut Simulator, installed: &[(NodeId, Port)]) {
    for &(node, port) in installed {
        sim.remove_agent(node, port);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureKind;
    use crate::link::LinkModel;
    use crate::sim::SimulatorConfig;
    use crate::tagger::analyze_stream;
    use crate::topology::Topology;

    fn sim(loss: f64, seed: u64) -> Simulator {
        let cfg = SimulatorConfig {
            link_model: LinkModel {
                base_loss: loss,
                ..LinkModel::default()
            },
            ..SimulatorConfig::perfect_clocks(seed)
        };
        Simulator::new(Topology::chain(2), cfg)
    }

    #[test]
    fn cbr_rate_matches_configuration() {
        let mut s = sim(0.0, 1);
        // 80 kbit/s at 1000-byte packets = 10 packets/s.
        install_cbr_flows(&mut s, &[(NodeId(0), NodeId(1))], 80.0, 1_000);
        s.run_for(SimDuration::from_secs(10));
        let sent_a = s
            .captures(NodeId(0))
            .iter()
            .filter(|c| c.kind == CaptureKind::Sent)
            .count();
        assert!(
            (95..=105).contains(&sent_a),
            "≈100 packets in 10 s, got {sent_a}"
        );
    }

    #[test]
    fn flows_are_bidirectional_and_received() {
        let mut s = sim(0.0, 2);
        install_cbr_flows(&mut s, &[(NodeId(0), NodeId(1))], 100.0, 500);
        s.run_for(SimDuration::from_secs(2));
        for n in [0u16, 1] {
            let received = s
                .captures(NodeId(n))
                .iter()
                .filter(|c| c.kind == CaptureKind::Received)
                .count();
            assert!(received > 10, "node {n} received {received}");
        }
        assert!(s.stats().delivered > 20);
    }

    #[test]
    fn tag_gaps_reconstruct_injected_loss() {
        let mut s = sim(0.3, 3);
        install_cbr_flows(&mut s, &[(NodeId(0), NodeId(1))], 400.0, 500);
        s.run_for(SimDuration::from_secs(30));
        // Observed tags at the receiver, one stream per direction; node 0's
        // tagger stamps both its flows, so collect only port-ab packets.
        let tags: Vec<u16> = s
            .captures(NodeId(1))
            .iter()
            .filter(|c| c.kind == CaptureKind::Received && c.src == NodeId(0))
            .map(|c| c.tag)
            .collect();
        assert!(tags.len() > 100, "need a long stream, got {}", tags.len());
        let stats = analyze_stream(tags.iter().copied());
        let loss = stats.loss_ratio();
        assert!(
            (0.2..0.4).contains(&loss),
            "tag-gap loss estimate {loss} should be near the injected 0.3"
        );
    }

    #[test]
    fn removal_stops_the_flows() {
        let mut s = sim(0.0, 4);
        let installed = install_cbr_flows(&mut s, &[(NodeId(0), NodeId(1))], 100.0, 500);
        s.run_for(SimDuration::from_secs(1));
        remove_cbr_flows(&mut s, &installed);
        s.run_until_idle(100_000);
        let before = s.stats().sent;
        s.run_for(SimDuration::from_secs(2));
        assert_eq!(s.stats().sent, before, "no sends after removal");
    }
}
