//! Cross-shard event mailboxes.
//!
//! Every event that one shard schedules onto a node owned by another shard
//! travels through a per-(source-shard, destination-shard) mailbox instead
//! of touching the foreign event queue directly. Mailboxes are drained at
//! window barriers (parallel execution) or immediately after each event
//! (serial merged execution); either way the carried `(time, key)` pair —
//! the same global ordering key used inside every
//! [`crate::event::EventQueue`] — fully determines where the event sorts,
//! so delivery *batching* never changes delivery *order*.
//!
//! The grid is a flat `shards × shards` matrix of mutex-protected vectors.
//! During a parallel window each cell has exactly one writer (the source
//! shard) and is drained by exactly one reader (the destination shard)
//! strictly after the barrier, so the mutexes are uncontended by
//! construction; they exist to make the sharing safe, not to arbitrate it.

use crate::time::SimTime;
use std::sync::Mutex;

/// One event in flight between shards, carrying its global ordering key.
#[derive(Debug)]
pub(crate) struct Outbound<T> {
    /// Absolute due time in the destination queue.
    pub due: SimTime,
    /// Global `(origin_node << 48) | origin_seq` ordering key.
    pub key: u64,
    /// The simulator event itself.
    pub payload: T,
}

/// A `shards × shards` matrix of cross-shard mailboxes.
#[derive(Debug)]
pub(crate) struct MailboxGrid<T> {
    shards: usize,
    /// Row-major: `cells[src * shards + dst]`.
    cells: Vec<Mutex<Vec<Outbound<T>>>>,
}

impl<T> MailboxGrid<T> {
    /// Creates an empty grid for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            cells: (0..shards * shards).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Enqueues an event from `src` shard for `dst` shard.
    #[inline]
    pub fn push(&self, src: usize, dst: usize, due: SimTime, key: u64, payload: T) {
        self.cells[src * self.shards + dst]
            .lock()
            .expect("mailbox poisoned")
            .push(Outbound { due, key, payload });
    }

    /// Drains every mailbox destined for `dst`, invoking `f` per event, and
    /// returns the largest single-cell depth observed (for the mailbox
    /// depth histogram). Source cells are visited in shard order, but the
    /// caller re-sorts by `(due, key)` inside its event queue, so the visit
    /// order carries no semantic weight.
    pub fn drain_to(&self, dst: usize, mut f: impl FnMut(Outbound<T>)) -> usize {
        let mut max_depth = 0;
        for src in 0..self.shards {
            let mut cell = self.cells[src * self.shards + dst]
                .lock()
                .expect("mailbox poisoned");
            max_depth = max_depth.max(cell.len());
            for out in cell.drain(..) {
                f(out);
            }
        }
        max_depth
    }

    /// Number of events currently in flight between shards (diagnostics).
    pub fn pending(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.lock().expect("mailbox poisoned").len())
            .sum()
    }

    /// True if no event is in flight anywhere.
    pub fn is_empty(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.lock().expect("mailbox poisoned").is_empty())
    }

    /// Drops all in-flight events and releases their storage (run reset).
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            let v = cell.get_mut().expect("mailbox poisoned");
            v.clear();
            v.shrink_to_fit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_by_destination() {
        let grid: MailboxGrid<&str> = MailboxGrid::new(3);
        grid.push(0, 2, SimTime::from_nanos(5), 1, "a");
        grid.push(1, 2, SimTime::from_nanos(3), 2, "b");
        grid.push(0, 1, SimTime::from_nanos(1), 3, "c");
        let mut seen = Vec::new();
        let depth = grid.drain_to(2, |o| seen.push((o.due.as_nanos(), o.payload)));
        assert_eq!(depth, 1);
        seen.sort();
        assert_eq!(seen, vec![(3, "b"), (5, "a")]);
        // Cell (0,1) is untouched by draining dst 2.
        assert!(!grid.is_empty());
        grid.drain_to(1, |_| {});
        assert!(grid.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut grid: MailboxGrid<u32> = MailboxGrid::new(2);
        grid.push(0, 0, SimTime::ZERO, 0, 7);
        grid.push(1, 0, SimTime::ZERO, 1, 8);
        grid.clear();
        assert!(grid.is_empty());
    }
}
