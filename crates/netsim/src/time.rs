//! Simulated time.
//!
//! [`SimTime`] is an absolute instant on the simulator's reference clock,
//! [`SimDuration`] a span between instants. Both count whole nanoseconds in
//! a `u64`, giving deterministic integer arithmetic (no float drift) and a
//! range of ~584 years, far beyond any experiment series.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Absolute instant of the simulation reference clock, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// Span between two [`SimTime`]s, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The experiment epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference in nanoseconds (`self - other`).
    pub fn signed_delta_nanos(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return Self(0);
        }
        Self((s * 1e9).round() as u64)
    }

    /// Nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by a non-negative float (saturating).
    pub fn mul_f64(self, k: f64) -> Self {
        if k <= 0.0 || !k.is_finite() {
            return Self(0);
        }
        Self((self.0 as f64 * k).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> Self {
        Self(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, SimDuration::from_nanos(3_000));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn signed_delta() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(25);
        assert_eq!(a.signed_delta_nanos(b), -15);
        assert_eq!(b.signed_delta_nanos(a), 15);
    }

    #[test]
    fn mul_f64_saturates_on_bad_input() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(0.25).as_millis(), 250);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.0us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.00ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        let mut v = [
            SimTime::from_nanos(30),
            SimTime::from_nanos(10),
            SimTime::from_nanos(20),
        ];
        v.sort();
        assert_eq!(v[0].as_nanos(), 10);
        assert_eq!(v[2].as_nanos(), 30);
    }
}
