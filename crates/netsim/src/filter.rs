//! Packet filter rules — the mechanism behind ExCovery's communication
//! fault injections (§IV-D1).
//!
//! Rules are attached to a node and consulted on every packet crossing that
//! node's interface, in the given [`Direction`]. The rule set covers exactly
//! the paper's fault list: interface fault, message loss, message delay, and
//! the path-selective variants of loss and delay.

use crate::sim::NodeId;
use crate::time::SimDuration;
use rand::Rng;

/// Traffic direction a rule applies to, relative to the filtered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Only packets being received.
    Receive,
    /// Only packets being transmitted.
    Transmit,
    /// Both directions.
    Both,
}

impl Direction {
    /// True if a rule with this direction applies to traffic flowing in
    /// `actual` (which is never `Both`).
    pub fn matches(self, actual: Direction) -> bool {
        self == Direction::Both || self == actual
    }
}

/// Identifier of an installed rule, used to remove it when the fault stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u64);

/// A communication fault rule (paper §IV-D1).
#[derive(Debug, Clone, PartialEq)]
pub enum FilterRule {
    /// **Interface fault**: no messages pass in the given direction.
    InterfaceDown {
        /// Affected direction.
        direction: Direction,
    },
    /// **Message loss**: each packet is dropped with `probability`.
    MessageLoss {
        /// Drop probability in `[0, 1]`.
        probability: f64,
        /// Affected direction.
        direction: Direction,
    },
    /// **Message delay**: every packet is delayed by a constant amount.
    MessageDelay {
        /// Added delay.
        delay: SimDuration,
        /// Affected direction.
        direction: Direction,
    },
    /// **Path loss**: message loss affecting only traffic with `peer`.
    PathLoss {
        /// The second node of the affected path.
        peer: NodeId,
        /// Drop probability in `[0, 1]`.
        probability: f64,
        /// Affected direction.
        direction: Direction,
    },
    /// **Path delay**: message delay affecting only traffic with `peer`.
    PathDelay {
        /// The second node of the affected path.
        peer: NodeId,
        /// Added delay.
        delay: SimDuration,
        /// Affected direction.
        direction: Direction,
    },
}

impl FilterRule {
    fn direction(&self) -> Direction {
        match self {
            FilterRule::InterfaceDown { direction }
            | FilterRule::MessageLoss { direction, .. }
            | FilterRule::MessageDelay { direction, .. }
            | FilterRule::PathLoss { direction, .. }
            | FilterRule::PathDelay { direction, .. } => *direction,
        }
    }
}

/// Result of passing a packet through a rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver, possibly after an additional delay.
    Pass {
        /// Extra delay accumulated from delay rules.
        extra_delay: SimDuration,
    },
    /// Drop the packet.
    Drop,
}

/// An ordered set of filter rules installed on one node.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    rules: Vec<(RuleId, FilterRule)>,
    next_id: u64,
}

impl FilterSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a rule, returning its id for later removal.
    pub fn install(&mut self, rule: FilterRule) -> RuleId {
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.push((id, rule));
        id
    }

    /// Removes a rule; returns true if it was present.
    pub fn remove(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|(rid, _)| *rid != id);
        self.rules.len() != before
    }

    /// Removes all rules (end-of-run clean-up).
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates the rule set for a packet travelling in `direction`
    /// between the filtered node and `peer` (the other endpoint; for
    /// multicast, the relevant neighbour). Probabilistic rules draw from
    /// `rng` — callers pass a seeded stream so verdicts are reproducible.
    pub fn evaluate(
        &self,
        direction: Direction,
        peer: Option<NodeId>,
        rng: &mut impl Rng,
    ) -> Verdict {
        let mut extra_delay = SimDuration::ZERO;
        for (_, rule) in &self.rules {
            if !rule.direction().matches(direction) {
                continue;
            }
            match rule {
                FilterRule::InterfaceDown { .. } => return Verdict::Drop,
                FilterRule::MessageLoss { probability, .. } => {
                    if rng.gen::<f64>() < *probability {
                        return Verdict::Drop;
                    }
                }
                FilterRule::MessageDelay { delay, .. } => extra_delay += *delay,
                FilterRule::PathLoss {
                    peer: p,
                    probability,
                    ..
                } => {
                    if peer == Some(*p) && rng.gen::<f64>() < *probability {
                        return Verdict::Drop;
                    }
                }
                FilterRule::PathDelay { peer: p, delay, .. } => {
                    if peer == Some(*p) {
                        extra_delay += *delay;
                    }
                }
            }
        }
        Verdict::Pass { extra_delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn empty_set_passes_everything() {
        let f = FilterSet::new();
        assert_eq!(
            f.evaluate(Direction::Receive, None, &mut rng()),
            Verdict::Pass {
                extra_delay: SimDuration::ZERO
            }
        );
    }

    #[test]
    fn interface_down_blocks_matching_direction_only() {
        let mut f = FilterSet::new();
        f.install(FilterRule::InterfaceDown {
            direction: Direction::Transmit,
        });
        assert_eq!(
            f.evaluate(Direction::Transmit, None, &mut rng()),
            Verdict::Drop
        );
        assert!(matches!(
            f.evaluate(Direction::Receive, None, &mut rng()),
            Verdict::Pass { .. }
        ));
    }

    #[test]
    fn both_direction_matches_either() {
        let mut f = FilterSet::new();
        f.install(FilterRule::InterfaceDown {
            direction: Direction::Both,
        });
        assert_eq!(
            f.evaluate(Direction::Transmit, None, &mut rng()),
            Verdict::Drop
        );
        assert_eq!(
            f.evaluate(Direction::Receive, None, &mut rng()),
            Verdict::Drop
        );
    }

    #[test]
    fn message_loss_is_probabilistic() {
        let mut f = FilterSet::new();
        f.install(FilterRule::MessageLoss {
            probability: 0.5,
            direction: Direction::Both,
        });
        let mut r = rng();
        let drops = (0..10_000)
            .filter(|_| f.evaluate(Direction::Receive, None, &mut r) == Verdict::Drop)
            .count();
        assert!((4_500..5_500).contains(&drops), "drops={drops}");
    }

    #[test]
    fn loss_probability_zero_and_one() {
        let mut f = FilterSet::new();
        let id = f.install(FilterRule::MessageLoss {
            probability: 0.0,
            direction: Direction::Both,
        });
        let mut r = rng();
        assert!(matches!(
            f.evaluate(Direction::Receive, None, &mut r),
            Verdict::Pass { .. }
        ));
        f.remove(id);
        f.install(FilterRule::MessageLoss {
            probability: 1.0,
            direction: Direction::Both,
        });
        assert_eq!(f.evaluate(Direction::Receive, None, &mut r), Verdict::Drop);
    }

    #[test]
    fn delays_accumulate() {
        let mut f = FilterSet::new();
        f.install(FilterRule::MessageDelay {
            delay: SimDuration::from_millis(10),
            direction: Direction::Both,
        });
        f.install(FilterRule::MessageDelay {
            delay: SimDuration::from_millis(5),
            direction: Direction::Both,
        });
        assert_eq!(
            f.evaluate(Direction::Transmit, None, &mut rng()),
            Verdict::Pass {
                extra_delay: SimDuration::from_millis(15)
            }
        );
    }

    #[test]
    fn path_rules_only_affect_named_peer() {
        let mut f = FilterSet::new();
        f.install(FilterRule::PathLoss {
            peer: NodeId(3),
            probability: 1.0,
            direction: Direction::Both,
        });
        f.install(FilterRule::PathDelay {
            peer: NodeId(4),
            delay: SimDuration::from_millis(7),
            direction: Direction::Both,
        });
        let mut r = rng();
        assert_eq!(
            f.evaluate(Direction::Transmit, Some(NodeId(3)), &mut r),
            Verdict::Drop
        );
        assert_eq!(
            f.evaluate(Direction::Transmit, Some(NodeId(4)), &mut r),
            Verdict::Pass {
                extra_delay: SimDuration::from_millis(7)
            }
        );
        assert_eq!(
            f.evaluate(Direction::Transmit, Some(NodeId(9)), &mut r),
            Verdict::Pass {
                extra_delay: SimDuration::ZERO
            }
        );
    }

    #[test]
    fn remove_and_clear() {
        let mut f = FilterSet::new();
        let a = f.install(FilterRule::InterfaceDown {
            direction: Direction::Both,
        });
        assert_eq!(f.len(), 1);
        assert!(f.remove(a));
        assert!(!f.remove(a), "second removal must report absence");
        f.install(FilterRule::InterfaceDown {
            direction: Direction::Both,
        });
        f.install(FilterRule::InterfaceDown {
            direction: Direction::Both,
        });
        f.clear();
        assert!(f.is_empty());
    }
}
