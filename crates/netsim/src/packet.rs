//! Packets exchanged on the simulated experiment network.

use crate::sim::NodeId;
use crate::time::SimTime;

/// UDP-style port multiplexing protocols on a node.
///
/// The service-discovery substrate uses well-known ports mirroring reality:
/// 5353 for the mDNS-like SDP, 427 for the directory (SLP-like) SDP.
pub type Port = u16;

/// Globally unique identifier of a packet *transmission*.
///
/// Distinct from the 16-bit tagger id (see [`crate::tagger`]): retransmitted
/// protocol messages get fresh `PacketId`s, mirroring how distinct frames
/// appear on a real medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// Where a packet is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Routed hop-by-hop along a shortest path to a single node.
    Unicast(NodeId),
    /// Flooded to all reachable nodes subscribed to the port (mDNS-style
    /// mesh-wide multicast, the common SD case in the paper's prototype).
    Multicast,
    /// Flooded to all reachable nodes regardless of subscription.
    Broadcast,
}

/// Opaque application payload.
///
/// Protocol crates serialize their messages into bytes; the simulator never
/// interprets them, matching the paper's requirement that captures contain
/// the "complete and unaltered content" (§IV-A3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Payload(pub Vec<u8>);

impl Payload {
    /// Creates a payload from bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Self(bytes.into())
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Self {
        Payload(s.as_bytes().to_vec())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(v)
    }
}

/// A packet in flight on the experiment network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique transmission identifier.
    pub id: PacketId,
    /// 16-bit tagger identifier stamped by the sending node (wraps).
    pub tag: u16,
    /// Originating node.
    pub src: NodeId,
    /// Addressing.
    pub dst: Destination,
    /// Destination port (protocol demultiplexer).
    pub port: Port,
    /// Application payload.
    pub payload: Payload,
    /// Total on-air size in bytes (payload + header overhead).
    pub size_bytes: u32,
    /// Reference-clock instant the packet was handed to the network.
    pub sent_at: SimTime,
}

/// Fixed per-packet header overhead (IP + UDP + tag option), in bytes.
pub const HEADER_OVERHEAD_BYTES: u32 = 32;

impl Packet {
    /// On-air size derived from a payload.
    pub fn wire_size(payload: &Payload) -> u32 {
        payload.len() as u32 + HEADER_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_adds_header() {
        assert_eq!(
            Packet::wire_size(&Payload::from("abcd")),
            4 + HEADER_OVERHEAD_BYTES
        );
        assert_eq!(
            Packet::wire_size(&Payload::default()),
            HEADER_OVERHEAD_BYTES
        );
    }

    #[test]
    fn payload_conversions() {
        let p: Payload = "hello".into();
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        let q: Payload = vec![1u8, 2, 3].into();
        assert_eq!(q.0, vec![1, 2, 3]);
    }

    #[test]
    fn destination_equality() {
        assert_eq!(Destination::Multicast, Destination::Multicast);
        assert_ne!(
            Destination::Unicast(NodeId(1)),
            Destination::Unicast(NodeId(2))
        );
    }
}
