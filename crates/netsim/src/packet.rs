//! Packets exchanged on the simulated experiment network.

use crate::sim::NodeId;
use crate::time::SimTime;
use std::sync::Arc;

/// UDP-style port multiplexing protocols on a node.
///
/// The service-discovery substrate uses well-known ports mirroring reality:
/// 5353 for the mDNS-like SDP, 427 for the directory (SLP-like) SDP.
pub type Port = u16;

/// Globally unique identifier of a packet *transmission*.
///
/// Distinct from the 16-bit tagger id (see [`crate::tagger`]): retransmitted
/// protocol messages get fresh `PacketId`s, mirroring how distinct frames
/// appear on a real medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// Where a packet is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Routed hop-by-hop along a shortest path to a single node.
    Unicast(NodeId),
    /// Flooded to all reachable nodes subscribed to the port (mDNS-style
    /// mesh-wide multicast, the common SD case in the paper's prototype).
    Multicast,
    /// Flooded to all reachable nodes regardless of subscription.
    Broadcast,
}

/// Opaque application payload.
///
/// Protocol crates serialize their messages into bytes; the simulator never
/// interprets them, matching the paper's requirement that captures contain
/// the "complete and unaltered content" (§IV-A3).
///
/// Backed by an `Arc<[u8]>`: a payload is written once when the protocol
/// serializes its message and then shared immutably by every in-flight copy
/// of the packet (per-hop relays, flood fan-out, capture records). Cloning
/// is a reference-count bump, so the simulator's forwarding path never
/// copies message bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Creates a payload from bytes.
    pub fn new(bytes: impl Into<Payload>) -> Self {
        bytes.into()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes into an owned `Vec` (for storage serialization).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload(Arc::from([] as [u8; 0]))
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&str> for Payload {
    fn from(s: &str) -> Self {
        Payload(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Payload {
    fn from(s: String) -> Self {
        Payload(Arc::from(s.into_bytes()))
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Self {
        Payload(Arc::from(b))
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload(Arc::from(v))
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(a: Arc<[u8]>) -> Self {
        Payload(a)
    }
}

/// A packet in flight on the experiment network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique transmission identifier.
    pub id: PacketId,
    /// 16-bit tagger identifier stamped by the sending node (wraps).
    pub tag: u16,
    /// Originating node.
    pub src: NodeId,
    /// Addressing.
    pub dst: Destination,
    /// Destination port (protocol demultiplexer).
    pub port: Port,
    /// Application payload.
    pub payload: Payload,
    /// Total on-air size in bytes (payload + header overhead).
    pub size_bytes: u32,
    /// Reference-clock instant the packet was handed to the network.
    pub sent_at: SimTime,
}

/// Fixed per-packet header overhead (IP + UDP + tag option), in bytes.
pub const HEADER_OVERHEAD_BYTES: u32 = 32;

impl Packet {
    /// On-air size derived from a payload.
    pub fn wire_size(payload: &Payload) -> u32 {
        payload.len() as u32 + HEADER_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_adds_header() {
        assert_eq!(
            Packet::wire_size(&Payload::from("abcd")),
            4 + HEADER_OVERHEAD_BYTES
        );
        assert_eq!(
            Packet::wire_size(&Payload::default()),
            HEADER_OVERHEAD_BYTES
        );
    }

    #[test]
    fn payload_conversions() {
        let p: Payload = "hello".into();
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        let q: Payload = vec![1u8, 2, 3].into();
        assert_eq!(q.as_bytes(), &[1, 2, 3]);
    }

    #[test]
    fn payload_clone_shares_storage() {
        let p: Payload = vec![9u8; 64].into();
        let q = p.clone();
        // Both clones view the same allocation: identical pointers.
        assert!(std::ptr::eq(p.as_bytes(), q.as_bytes()));
        assert_eq!(p, q);
    }

    #[test]
    fn destination_equality() {
        assert_eq!(Destination::Multicast, Destination::Multicast);
        assert_ne!(
            Destination::Unicast(NodeId(1)),
            Destination::Unicast(NodeId(2))
        );
    }
}
